"""The live telemetry plane: run status board + flight recorder.

Long streaming runs used to be black boxes: the metrics registry fills
up, but nothing reads it until the process exits and writes a manifest.
This module is the in-flight half of ``repro.obs``:

- :class:`RunStatus` -- a thread-safe board of *current* run state
  (phase, per-shard progress heartbeats, checkpoint provenance) that the
  engines update as they go and the HTTP ``/status`` endpoint and the
  flight recorder read.  All timing is monotonic-clock based so ages
  survive wall-clock jumps.
- :class:`FlightRecorder` -- a daemon sampling thread that periodically
  projects the :class:`~repro.obs.metrics.MetricsRegistry`, process
  stats (RSS, CPU) and the status board into one schema-versioned JSON
  sample.  Samples land in a bounded ring buffer and, when an output
  path is attached, stream to a JSONL file one line per sample -- the
  file ``python -m repro.obs.top --follow`` tails.  :meth:`~FlightRecorder.stop`
  and :meth:`~FlightRecorder.dump` append a final sample, so a
  SIGTERM'd or crashed run still leaves a fresh post-mortem trail.
- :func:`refresh_derived_gauges` -- re-derives age gauges (checkpoint
  age, per-shard heartbeat age, phase age) from the status board into
  the registry, so scrapes and samples expose them as plain numbers.

Everything here is stdlib-only and imports nothing outside ``repro.obs``.
"""

from __future__ import annotations

import collections
import json
import os
import resource
import threading
import time
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger

__all__ = [
    "LIVE_SCHEMA",
    "RunStatus",
    "FlightRecorder",
    "fork_guard",
    "get_status",
    "process_stats",
    "refresh_derived_gauges",
]

LIVE_SCHEMA = 1
"""Bump when the JSONL sample layout changes shape."""

_LOG = get_logger("repro.obs.live")

_PAGE_SIZE = resource.getpagesize()

# The rest of the pipeline forks worker processes (dataset builders,
# stream shards) while telemetry threads are live.  A child forked while
# the sampler or an HTTP handler holds the registry/status lock inherits
# that lock forever -- so every telemetry thread wraps its registry work
# in this guard, and fork itself takes the guard around the clone.
_fork_lock = threading.Lock()


def fork_guard() -> threading.Lock:
    """Lock that serializes telemetry threads against ``os.fork``.

    Any background thread about to read the metrics registry or the
    status board must hold this for the whole operation (``with
    fork_guard():``); :func:`os.register_at_fork` acquires it before
    every fork so children never inherit telemetry locks mid-flight.
    """
    return _fork_lock


def _fork_acquire() -> None:
    """Quiesce telemetry locks before a fork, in a fixed order.

    ``fork_guard`` first (parks the sampler and HTTP handler threads),
    then the default registry's instrument lock (an application thread
    -- e.g. a campaign executor -- may be mid-increment), then the
    status board's.  One ordered hook instead of several independent
    ones: ``os.register_at_fork`` runs ``before`` callbacks in reverse
    registration order, so split hooks could invert this order against
    the sampler (which nests fork-guard around registry reads) and
    deadlock.
    """
    _fork_lock.acquire()
    obs_metrics.registry_lock().acquire()
    _STATUS._lock.acquire()


def _fork_release() -> None:
    for lock in (_STATUS._lock, obs_metrics.registry_lock(), _fork_lock):
        try:
            lock.release()
        except RuntimeError:  # pragma: no cover - already free
            pass


os.register_at_fork(
    before=_fork_acquire,
    after_in_parent=_fork_release,
    after_in_child=_fork_release,
)


def process_stats() -> Dict[str, float]:
    """Current process stats: RSS (MB), CPU seconds, thread count.

    RSS is the *current* resident set from ``/proc/self/statm`` where
    available; platforms without procfs fall back to the peak RSS that
    ``getrusage`` reports (documented by the ``rss_peak`` flag).
    """
    usage = resource.getrusage(resource.RUSAGE_SELF)
    stats: Dict[str, float] = {
        "cpu_user_s": round(usage.ru_utime, 3),
        "cpu_system_s": round(usage.ru_stime, 3),
        "threads": float(threading.active_count()),
    }
    try:
        with open("/proc/self/statm") as handle:
            resident_pages = int(handle.read().split()[1])
        stats["rss_mb"] = round(resident_pages * _PAGE_SIZE / 2**20, 2)
        stats["rss_peak"] = 0.0
    except (OSError, IndexError, ValueError):
        # ru_maxrss is KiB on Linux, bytes on macOS; both are peaks.
        scale = 2**10 if os.uname().sysname == "Darwin" else 1
        stats["rss_mb"] = round(usage.ru_maxrss * scale / 2**10, 2)
        stats["rss_peak"] = 1.0
    return stats


class RunStatus:
    """Thread-safe board of what the run is doing *right now*.

    The engines write (cheap, lock-guarded assignments); the exposition
    endpoint, the flight recorder and :func:`refresh_derived_gauges`
    read.  ``as_dict()`` is JSON-ready and converts every stored
    monotonic timestamp into an age relative to "now".
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._run: Dict[str, object] = {}
        self._phase: Optional[str] = None
        self._phase_mono: Optional[float] = None
        self._shards: Dict[int, Dict[str, float]] = {}
        self._checkpoint: Dict[str, object] = {}
        self._campaigns: Dict[str, Dict[str, object]] = {}
        self._started_mono: Optional[float] = None

    def reset(self) -> None:
        """Back to a blank board (tests and per-run isolation)."""
        with self._lock:
            self._run = {}
            self._phase = None
            self._phase_mono = None
            self._shards = {}
            self._checkpoint = {}
            self._campaigns = {}
            self._started_mono = None

    def begin_run(self, **fields: object) -> None:
        """Record the run's identity (scenario, seed, mode, ...)."""
        with self._lock:
            self._run = dict(fields)
            self._started_mono = time.monotonic()

    def set_phase(self, name: str) -> None:
        """Mark ``name`` as the active pipeline phase/stage."""
        with self._lock:
            self._phase = name
            self._phase_mono = time.monotonic()

    def set_shards(self, count: int) -> None:
        """(Re)initialize the shard table for a fan-out of ``count``."""
        with self._lock:
            self._shards = {
                shard: {
                    "units": 0.0,
                    "last_unit_mono": time.monotonic(),
                    "state": "ok",
                    "restarts": 0.0,
                }
                for shard in range(int(count))
            }

    def shard_unit(self, shard: int, units: int = 1) -> None:
        """Credit ``units`` received from ``shard`` (its heartbeat)."""
        with self._lock:
            entry = self._shards.setdefault(
                int(shard),
                {"units": 0.0, "last_unit_mono": 0.0,
                 "state": "ok", "restarts": 0.0},
            )
            entry["units"] += units
            entry["last_unit_mono"] = time.monotonic()

    def shard_state(
        self, shard: int, state: str, restarts: Optional[int] = None
    ) -> None:
        """Record a shard's supervision state (ok/restarting/quarantined)."""
        with self._lock:
            entry = self._shards.setdefault(
                int(shard),
                {"units": 0.0, "last_unit_mono": 0.0,
                 "state": "ok", "restarts": 0.0},
            )
            entry["state"] = str(state)
            if restarts is not None:
                entry["restarts"] = float(restarts)

    def set_checkpoint(self, **fields: object) -> None:
        """Record the latest checkpoint save (fingerprint, units_done, ...)."""
        with self._lock:
            self._checkpoint.update(fields)
            self._checkpoint["saved_mono"] = time.monotonic()

    def set_campaign(self, name: str, **fields: object) -> None:
        """Merge ``fields`` into campaign ``name``'s board row.

        The campaign supervisor writes one row per named campaign
        (phase, cycle, units, next-fire countdown, checkpoint
        fingerprint); ``as_dict`` exposes the table to ``/status``,
        ``/campaigns`` and the dashboard with an ``updated_age_s``
        freshness stamp per row.
        """
        with self._lock:
            entry = self._campaigns.setdefault(str(name), {})
            entry.update(fields)
            entry["updated_mono"] = time.monotonic()

    def drop_campaign(self, name: str) -> None:
        """Remove campaign ``name``'s row (a campaign that finished)."""
        with self._lock:
            self._campaigns.pop(str(name), None)

    def shard_count(self) -> int:
        """Rows currently in the shard table."""
        with self._lock:
            return len(self._shards)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot; monotonic stamps become ``*_age_s`` fields."""
        now = time.monotonic()
        with self._lock:
            shards: List[Dict[str, object]] = [
                {
                    "shard": shard,
                    "units": int(entry["units"]),
                    "heartbeat_age_s": round(now - entry["last_unit_mono"], 3),
                    "state": entry.get("state", "ok"),
                    "restarts": int(entry.get("restarts", 0)),
                }
                for shard, entry in sorted(self._shards.items())
            ]
            checkpoint = {
                key: value
                for key, value in self._checkpoint.items()
                if key != "saved_mono"
            }
            saved_mono = self._checkpoint.get("saved_mono")
            if saved_mono is not None:
                checkpoint["age_s"] = round(now - float(saved_mono), 3)
            campaigns: List[Dict[str, object]] = []
            for name in sorted(self._campaigns):
                row = {
                    key: value
                    for key, value in self._campaigns[name].items()
                    if key != "updated_mono"
                }
                row["name"] = name
                updated = self._campaigns[name].get("updated_mono")
                if updated is not None:
                    row["updated_age_s"] = round(now - float(updated), 3)
                campaigns.append(row)
            return {
                "run": dict(self._run),
                "phase": self._phase,
                "phase_age_s": (
                    round(now - self._phase_mono, 3)
                    if self._phase_mono is not None
                    else None
                ),
                "elapsed_s": (
                    round(now - self._started_mono, 3)
                    if self._started_mono is not None
                    else None
                ),
                "stream": {"shards": shards},
                "checkpoint": checkpoint,
                "campaigns": campaigns,
            }


_STATUS = RunStatus()


def get_status() -> RunStatus:
    """The process-wide status board."""
    return _STATUS


def refresh_derived_gauges(
    registry: Optional[obs_metrics.MetricsRegistry] = None,
    status: Optional[RunStatus] = None,
) -> None:
    """Project the status board's ages into registry gauges.

    Run before every scrape/sample so ``/metrics`` and flight-recorder
    samples carry live ``live.checkpoint_age_seconds``,
    ``live.phase_age_seconds`` and per-shard
    ``live.shard_heartbeat_age_seconds{shard=N}`` values.
    """
    registry = registry if registry is not None else obs_metrics.get_registry()
    status = status if status is not None else get_status()
    board = status.as_dict()
    if board["phase_age_s"] is not None:
        registry.gauge("live.phase_age_seconds").set(board["phase_age_s"])
    age = board["checkpoint"].get("age_s")
    if age is not None:
        registry.gauge("live.checkpoint_age_seconds").set(age)
    for entry in board["stream"]["shards"]:
        registry.gauge(
            f'live.shard_heartbeat_age_seconds{{shard={entry["shard"]}}}'
        ).set(entry["heartbeat_age_s"])
    for row in board["campaigns"]:
        age = row.get("updated_age_s")
        if age is not None:
            registry.gauge(
                f'live.campaign_update_age_seconds{{campaign={row["name"]}}}'
            ).set(age)


class FlightRecorder:
    """A low-overhead sampling thread over registry + process + status.

    Samples are dicts shaped::

        {"schema": 1, "seq": 7, "unix": ..., "mono": ...,
         "process": {"rss_mb": ..., "cpu_user_s": ..., ...},
         "counters": {...}, "gauges": {...},
         "histograms": {name: {"count": ..., "sum": ...}},
         "status": <RunStatus.as_dict()>}

    The newest ``capacity`` samples stay in a ring buffer; with an
    ``out_path`` attached every sample also streams to disk as one JSONL
    line the moment it is taken, so a kill -9 loses at most one
    sampling interval.  ``stop()``/``dump()`` append a last sample
    tagged ``"final": true`` with the stop reason.
    """

    def __init__(
        self,
        registry: Optional[obs_metrics.MetricsRegistry] = None,
        status: Optional[RunStatus] = None,
        interval_seconds: float = 1.0,
        capacity: int = 720,
        out_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.registry = registry if registry is not None else obs_metrics.get_registry()
        self.status = status if status is not None else get_status()
        self.interval_seconds = float(interval_seconds)
        self.out_path = Path(out_path) if out_path is not None else None
        self._ring: Deque[Dict[str, object]] = collections.deque(maxlen=capacity)
        self._seq = 0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._handle = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, final: bool = False, reason: Optional[str] = None) -> Dict[str, object]:
        """Take one sample now; ring-buffer it and stream it if attached."""
        with _fork_lock:
            return self._sample_locked(final=final, reason=reason)

    def _sample_locked(self, final: bool, reason: Optional[str]) -> Dict[str, object]:
        refresh_derived_gauges(self.registry, self.status)
        snapshot = self.registry.snapshot()
        with self._lock:
            record: Dict[str, object] = {
                "schema": LIVE_SCHEMA,
                "seq": self._seq,
                "unix": round(time.time(), 3),
                "mono": round(time.monotonic(), 3),
                "process": process_stats(),
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"],
                "histograms": {
                    name: {"count": stats["count"], "sum": round(stats["sum"], 6)}
                    for name, stats in snapshot["histograms"].items()
                },
                "status": self.status.as_dict(),
            }
            if final:
                record["final"] = True
                record["reason"] = reason or "stop"
            self._seq += 1
            self._ring.append(record)
            self._write(record)
        return record

    def _write(self, record: Dict[str, object]) -> None:
        if self.out_path is None:
            return
        if self._handle is None:
            if self._stopped:
                return  # never truncate a finished live file post-stop
            if self.out_path.parent != Path(""):
                self.out_path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.out_path, "w")
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()

    def samples(self) -> List[Dict[str, object]]:
        """The ring buffer's contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def latest(self) -> Optional[Dict[str, object]]:
        """The newest sample, or ``None`` before the first one."""
        with self._lock:
            return self._ring[-1] if self._ring else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "FlightRecorder":
        """Begin sampling on a daemon thread (one sample immediately)."""
        if self._thread is not None:
            raise RuntimeError("flight recorder already started")
        self.sample()
        self._thread = threading.Thread(
            target=self._loop, name="repro-flight-recorder", daemon=True
        )
        self._thread.start()
        _LOG.info(
            "live.recorder.started",
            interval_s=self.interval_seconds,
            out=str(self.out_path) if self.out_path else None,
        )
        return self

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval_seconds):
            try:
                self.sample()
            except Exception:  # sampling must never kill the run
                _LOG.warning("live.recorder.sample_failed")

    def stop(self, reason: str = "stop") -> Optional[Dict[str, object]]:
        """Stop the thread and append a final sample; idempotent."""
        if self._stopped:
            return self.latest()
        self._stopped = True
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=2 * self.interval_seconds + 1.0)
            self._thread = None
        final = self.sample(final=True, reason=reason)
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
        _LOG.info("live.recorder.stopped", reason=reason, samples=self._seq)
        return final

    def dump(self, path: Union[str, Path], reason: str = "dump") -> Path:
        """Write the whole ring (plus one final sample) to ``path``.

        The post-mortem entry point: unlike the streaming ``out_path``
        (already on disk), this rewrites everything the ring still
        holds -- crash handlers call it when no live file was attached.
        """
        self.sample(final=True, reason=reason)
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            body = "".join(
                json.dumps(record, default=str) + "\n" for record in self._ring
            )
        target.write_text(body)
        _LOG.info("live.recorder.dumped", path=str(target), reason=reason)
        return target
