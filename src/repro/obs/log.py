"""Structured logging for the pipeline.

Built on the stdlib :mod:`logging` machinery under the ``repro`` logger
namespace, with two render modes:

- *human* (default): ``HH:MM:SS LEVEL logger: event key=value ...``
- *JSON-lines*: one JSON object per line with ``ts``/``level``/``logger``/
  ``event`` plus every structured field -- machine-parseable run logs.

Configuration comes from :func:`configure` (the CLI wires ``--log-level``
and ``--log-json`` through it) or the ``REPRO_LOG_LEVEL`` /
``REPRO_LOG_JSON`` environment variables.  Until :func:`configure` runs,
loggers fall back to stdlib defaults (warnings and errors to stderr).

Log lines always go to *stderr* so report output on stdout stays clean
and pipeable.  :class:`Progress` emits rate-limited progress lines for
long loops -- at most one per interval, however hot the loop.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import IO, Optional, Union

__all__ = [
    "LEVEL_ENV",
    "JSON_ENV",
    "configure",
    "reset",
    "get_logger",
    "StructuredLogger",
    "Progress",
    "HumanFormatter",
    "JsonLinesFormatter",
]

LEVEL_ENV = "REPRO_LOG_LEVEL"
JSON_ENV = "REPRO_LOG_JSON"

_ROOT_NAME = "repro"
_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_handler: Optional[logging.Handler] = None


def _render_value(value: object) -> str:
    """A compact single-token rendering of one structured field value."""
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (dict, list, tuple)):
        return json.dumps(value, default=str, separators=(",", ":"))
    return str(value)


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger: event key=value ...``"""

    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, "fields", None) or {}
        suffix = "".join(
            f" {key}={_render_value(value)}" for key, value in fields.items()
        )
        stamp = self.formatTime(record, "%H:%M:%S")
        return (
            f"{stamp} {record.levelname:<7} {record.name}: "
            f"{record.getMessage()}{suffix}"
        )


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per line: ``ts``/``level``/``logger``/``event`` + fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        return json.dumps(payload, default=str)


def _resolve_level(level: Union[str, int, None]) -> int:
    if level is None:
        level = os.environ.get(LEVEL_ENV) or "warning"
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[str(level).lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; valid: {sorted(_LEVELS)}"
        ) from None


def _truthy(value: Optional[str]) -> bool:
    return str(value or "").strip().lower() in ("1", "true", "yes", "on")


def configure(
    level: Union[str, int, None] = None,
    json_mode: Optional[bool] = None,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install (or replace) the pipeline log handler.

    Args:
        level: ``"debug"``/``"info"``/``"warning"``/``"error"`` or a
            stdlib numeric level; ``None`` reads ``REPRO_LOG_LEVEL``
            (default ``warning``).
        json_mode: JSON-lines output when true, human-readable otherwise;
            ``None`` reads ``REPRO_LOG_JSON``.
        stream: Destination (default: current ``sys.stderr``).

    Returns:
        The configured ``repro`` root logger.  Safe to call repeatedly --
        each call replaces the previous handler, never stacks a second.
    """
    global _handler
    if json_mode is None:
        json_mode = _truthy(os.environ.get(JSON_ENV))
    root = logging.getLogger(_ROOT_NAME)
    if _handler is not None:
        root.removeHandler(_handler)
    _handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    _handler.setFormatter(JsonLinesFormatter() if json_mode else HumanFormatter())
    root.addHandler(_handler)
    root.setLevel(_resolve_level(level))
    root.propagate = False
    return root


def reset() -> None:
    """Remove the installed handler, returning to stdlib default behavior."""
    global _handler
    root = logging.getLogger(_ROOT_NAME)
    if _handler is not None:
        root.removeHandler(_handler)
        _handler = None
    root.setLevel(logging.NOTSET)
    root.propagate = True


class StructuredLogger:
    """A thin wrapper adding keyword *fields* to stdlib logging calls.

    ``log.info("cache.hit", kind="platform", seconds=0.21)`` renders as
    one human line or one JSON object depending on :func:`configure`.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        """The underlying stdlib logger name."""
        return self._logger.name

    def is_enabled_for(self, level: int) -> bool:
        """Whether a record at ``level`` would be emitted."""
        return self._logger.isEnabledFor(level)

    def log(self, level: int, event: str, **fields: object) -> None:
        """Emit ``event`` with structured ``fields`` at ``level``."""
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields: object) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log(logging.WARNING, event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log(logging.ERROR, event, **fields)


def get_logger(name: str) -> StructuredLogger:
    """A structured logger under the ``repro`` namespace."""
    if name != _ROOT_NAME and not name.startswith(_ROOT_NAME + "."):
        name = f"{_ROOT_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name))


class Progress:
    """Rate-limited progress reporting for long loops.

    ``update()`` is cheap enough to call per item: it emits at most one
    INFO line per ``interval_seconds``, so a build that finishes inside
    the interval logs nothing and a ten-minute build logs steadily.
    """

    def __init__(
        self,
        logger: StructuredLogger,
        event: str,
        total: Optional[int] = None,
        interval_seconds: float = 5.0,
        **fields: object,
    ) -> None:
        self._logger = logger
        self._event = event
        self._fields = fields
        self.total = total
        self.done = 0
        self._interval = interval_seconds
        self._started = time.monotonic()
        self._last_emit = self._started

    def update(self, step: int = 1) -> None:
        """Advance by ``step`` items, emitting if the interval elapsed."""
        self.done += step
        now = time.monotonic()
        if now - self._last_emit >= self._interval:
            self._last_emit = now
            self._logger.info(
                self._event,
                done=self.done,
                total=self.total,
                elapsed_s=round(now - self._started, 3),
                **self._fields,
            )

    def finish(self) -> None:
        """Emit a final (debug-level) completion line."""
        self._logger.debug(
            self._event,
            done=self.done,
            total=self.total,
            elapsed_s=round(time.monotonic() - self._started, 3),
            finished=True,
            **self._fields,
        )
