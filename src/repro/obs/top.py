"""``python -m repro.obs.top`` -- a terminal top for streaming runs.

Renders a refreshing one-screen dashboard of a live ``reproduce`` run:
active phase, process RSS/CPU, total units/records throughput with
sparkline history, and a per-shard table (units, units/sec, queue
depth, heartbeat age).  Two data sources, same sample schema
(:data:`repro.obs.live.LIVE_SCHEMA`):

- ``--follow run.jsonl`` tails the flight recorder's ``--live-out``
  file, picking up new samples as the run appends them;
- ``--url http://127.0.0.1:9309`` polls a ``--serve-metrics`` run's
  ``/status`` endpoint, whose ``sample`` field is the same document.

``--once`` renders a single frame and exits (scripts, docs, tests);
``--frames N`` stops after N refreshes.  Plain ``print`` is fine here:
this module *is* a terminal UI, stdout is its product.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "sparkline",
    "shard_rows",
    "campaign_rows",
    "render_frame",
    "iter_follow_samples",
    "poll_status_sample",
    "main",
]

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

_CLEAR = "\x1b[2J\x1b[H"

_HISTORY = 64
"""Samples of history kept for rates and sparklines."""


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """The last ``width`` values as a unicode block sparkline."""
    tail = [max(0.0, float(value)) for value in values][-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _SPARK_GLYPHS[0] * len(tail)
    scale = len(_SPARK_GLYPHS) - 1
    return "".join(
        _SPARK_GLYPHS[min(scale, int(round(value / top * scale)))]
        for value in tail
    )


def _rate(
    samples: Sequence[Dict[str, object]], pick, newer: int = -1, older: int = -2
) -> Optional[float]:
    """Per-second rate of ``pick(sample)`` between two samples."""
    if len(samples) < 2:
        return None
    try:
        dt = float(samples[newer]["mono"]) - float(samples[older]["mono"])
        dv = float(pick(samples[newer]) or 0) - float(pick(samples[older]) or 0)
    except (KeyError, TypeError, ValueError):
        return None
    if dt <= 0:
        return None
    return dv / dt


def _counter(sample: Dict[str, object], name: str) -> float:
    return float(sample.get("counters", {}).get(name, 0) or 0)


def _gauge(sample: Dict[str, object], name: str) -> Optional[float]:
    value = sample.get("gauges", {}).get(name)
    return None if value is None else float(value)


def _fmt(value: Optional[float], suffix: str = "", precision: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value:.{precision}f}{suffix}"


def shard_rows(
    samples: Sequence[Dict[str, object]],
) -> List[
    Tuple[int, int, Optional[float], Optional[float], Optional[float], str]
]:
    """Per-shard ``(shard, units, units_per_s, queue_depth,
    heartbeat_age_s, state)``.

    Units and supervision state come from the status board's shard
    table; rates from the per-shard receive counters across the sample
    history.  ``state`` folds the restart count in
    (``restarting*2`` after the second restart) so the dashboard shows
    flapping shards at a glance.
    """
    if not samples:
        return []
    latest = samples[-1]
    table = latest.get("status", {}).get("stream", {}).get("shards", [])
    rows = []
    for entry in table:
        shard = int(entry["shard"])
        rate = _rate(
            samples, lambda s, n=shard: _counter(s, f"stream.shard_units{{shard={n}}}")
        )
        state = str(entry.get("state", "ok"))
        restarts = int(entry.get("restarts", 0) or 0)
        if restarts and state != "quarantined":
            state = f"{state}*{restarts}"
        rows.append(
            (
                shard,
                int(entry.get("units", 0)),
                rate,
                _gauge(latest, f"stream.queue_depth{{shard={shard}}}"),
                entry.get("heartbeat_age_s"),
                state,
            )
        )
    return rows


def campaign_rows(
    samples: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """The latest sample's campaign board rows (sorted by name already).

    Each row is the service's :meth:`RunStatus.set_campaign` payload:
    name, state, cycle, units done/total for the running cycle,
    next-fire countdown and checkpoint fingerprint.
    """
    if not samples:
        return []
    rows = samples[-1].get("status", {}).get("campaigns", [])
    return [row for row in rows if isinstance(row, dict)]


def render_frame(samples: Sequence[Dict[str, object]], width: int = 78) -> str:
    """One dashboard frame from the sample history (newest last)."""
    if not samples:
        return "repro.obs.top -- waiting for samples...\n"
    latest = samples[-1]
    status = latest.get("status", {})
    run = status.get("run", {})
    process = latest.get("process", {})
    lines: List[str] = []

    title = "repro live telemetry"
    scenario = run.get("scenario")
    if scenario is not None:
        title += f" -- scenario {scenario} (seed {run.get('seed')})"
    lines.append(title[:width])
    lines.append("=" * min(width, len(lines[0])))

    phase = status.get("phase") or "-"
    lines.append(
        f"phase    {phase}  (for {_fmt(status.get('phase_age_s'), 's')}; "
        f"run {_fmt(status.get('elapsed_s'), 's')})"
    )
    lines.append(
        f"process  rss {_fmt(process.get('rss_mb'), ' MB')}   "
        f"cpu {_fmt(process.get('cpu_user_s'), 's user')} "
        f"+ {_fmt(process.get('cpu_system_s'), 's sys')}"
    )

    unit_rates = [
        rate
        for rate in (
            _rate(samples, lambda s: _counter(s, "stream.units"), i, i - 1)
            for i in range(-len(samples) + 1, 0)
        )
        if rate is not None
    ]
    lines.append(
        f"stream   units {int(_counter(latest, 'stream.units'))}  "
        f"records {int(_counter(latest, 'stream.records'))}  "
        f"units/s {_fmt(unit_rates[-1] if unit_rates else None)}  "
        f"{sparkline(unit_rates)}"
    )
    checkpoint = status.get("checkpoint", {})
    if checkpoint:
        lines.append(
            f"ckpt     age {_fmt(checkpoint.get('age_s'), 's')}  "
            f"units_done {checkpoint.get('units_done', '-')}  "
            f"fingerprint {str(checkpoint.get('fingerprint', '-'))[:16]}"
        )

    campaigns = campaign_rows(samples)
    if campaigns:
        lines.append("")
        lines.append(
            f"{'campaign':<18} {'state':<9} {'cycle':>5} {'units':>11} "
            f"{'next fire':>9} {'ckpt':<12}"
        )
        for row in campaigns:
            units_done = row.get("units_done")
            units_total = row.get("units_total")
            units = (
                f"{units_done}/{units_total}"
                if units_done is not None and units_total is not None
                else "-"
            )
            next_fire = row.get("next_fire_s")
            fingerprint = str(row.get("fingerprint", "-"))[:12]
            coverage = row.get("coverage")
            extra = ""
            if coverage is not None:
                extra = (
                    f"  cov {float(coverage) * 100:.1f}%"
                    f" (-{row.get('units_missing', '?')})"
                )
            if row.get("reason"):
                extra += f"  {row['reason']}"
            lines.append(
                f"{str(row.get('name', '-'))[:18]:<18} "
                f"{str(row.get('state', '-'))[:9]:<9} "
                f"{row.get('cycle', '-'):>5} {units:>11} "
                f"{_fmt(next_fire, 's'):>9} {fingerprint:<12}"
                f"{extra}"
            )

    rows = shard_rows(samples)
    if rows:
        lines.append("")
        lines.append(f"{'shard':>5} {'units':>8} {'units/s':>9} "
                     f"{'queue':>6} {'hb age':>8} {'state':<14}")
        for shard, units, rate, depth, age, state in rows:
            lines.append(
                f"{shard:>5} {units:>8} {_fmt(rate):>9} "
                f"{_fmt(depth, precision=0):>6} {_fmt(age, 's'):>8} "
                f"{state:<14}"
            )

    final = latest.get("final")
    if final:
        lines.append("")
        lines.append(f"run ended ({latest.get('reason', 'stop')})")
    return "\n".join(lines) + "\n"


def iter_follow_samples(path: Path, poll_seconds: float = 0.2) -> Iterator[Optional[dict]]:
    """Tail a live JSONL file forever, yielding parsed samples.

    Yields ``None`` whenever a poll finds no new complete line, so the
    caller owns the refresh cadence; a partially-written trailing line
    is left in the buffer until its newline arrives.
    """
    position = 0
    buffer = ""
    while True:
        if path.exists():
            with open(path) as handle:
                handle.seek(position)
                chunk = handle.read()
                position = handle.tell()
            buffer += chunk
            emitted = False
            while "\n" in buffer:
                line, _, buffer = buffer.partition("\n")
                if not line.strip():
                    continue
                try:
                    yield json.loads(line)
                    emitted = True
                except ValueError:
                    continue
            if emitted:
                continue
        yield None
        time.sleep(poll_seconds)


def poll_status_sample(url: str, timeout: float = 2.0) -> Optional[dict]:
    """The ``sample`` document from a ``/status`` endpoint, or ``None``."""
    target = url.rstrip("/") + "/status"
    try:
        with urllib.request.urlopen(target, timeout=timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None
    sample = payload.get("sample")
    if isinstance(sample, dict):
        return sample
    return None


def build_parser() -> argparse.ArgumentParser:
    """The dashboard's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.top",
        description="terminal dashboard for a live reproduce run",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--follow", metavar="FILE",
        help="tail a flight-recorder JSONL file (reproduce --live-out)",
    )
    source.add_argument(
        "--url", metavar="URL",
        help="poll a --serve-metrics endpoint (e.g. http://127.0.0.1:9309)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh interval in seconds (default: 1.0)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit",
    )
    parser.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="exit after N rendered frames",
    )
    parser.add_argument(
        "--no-clear", action="store_true",
        help="print frames sequentially instead of clearing the screen",
    )
    return parser


def _run_follow(args: argparse.Namespace, frames_left: Optional[int]) -> int:
    path = Path(args.follow)
    samples: List[dict] = []
    last_render = 0.0
    for sample in iter_follow_samples(path, poll_seconds=min(0.2, args.interval)):
        if sample is not None:
            samples.append(sample)
            samples[:] = samples[-_HISTORY:]
            if args.once:
                continue  # drain everything already on disk first
        elif args.once:
            _emit(render_frame(samples), args)
            return 0
        now = time.monotonic()
        if samples and now - last_render >= args.interval:
            last_render = now
            _emit(render_frame(samples), args)
            if frames_left is not None:
                frames_left -= 1
                if frames_left <= 0:
                    return 0
        if samples and samples[-1].get("final") and sample is None:
            _emit(render_frame(samples), args)
            return 0
    return 0


def _run_poll(args: argparse.Namespace, frames_left: Optional[int]) -> int:
    samples: List[dict] = []
    misses = 0
    while True:
        sample = poll_status_sample(args.url)
        if sample is not None:
            misses = 0
            if not samples or sample.get("seq") != samples[-1].get("seq"):
                samples.append(sample)
                samples[:] = samples[-_HISTORY:]
        else:
            misses += 1
            if samples and misses >= 3:
                # The endpoint went away: the run finished.
                _emit(render_frame(samples), args)
                return 0
            if not samples and misses >= 10:
                print(f"repro.obs.top: no response from {args.url}",
                      file=sys.stderr)
                return 1
        if samples:
            _emit(render_frame(samples), args)
            if args.once:
                return 0
            if frames_left is not None:
                frames_left -= 1
                if frames_left <= 0:
                    return 0
        time.sleep(args.interval)


def _emit(frame: str, args: argparse.Namespace) -> None:
    if not args.no_clear and not args.once:
        sys.stdout.write(_CLEAR)
    sys.stdout.write(frame)
    sys.stdout.flush()


def main(argv: Optional[List[str]] = None) -> int:
    """Dashboard entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    frames_left = args.frames
    try:
        if args.follow:
            return _run_follow(args, frames_left)
        return _run_poll(args, frames_left)
    except KeyboardInterrupt:
        print()
        return 0


if __name__ == "__main__":
    sys.exit(main())
