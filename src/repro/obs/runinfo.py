"""Run manifests: everything needed to audit or re-run a pipeline pass.

A manifest answers, in one JSON document, the questions a measurement
campaign gets asked months later: which scenario/seed/config produced
this artifact (config *fingerprints*, the same ones that key the artifact
cache), on what software (package/python/platform versions), what the
cache did (metric snapshot with hit/miss counts), and where the time went
(per-stage span summary plus trace coverage).

``python -m repro reproduce --run-report out.json`` writes one per run.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["MANIFEST_SCHEMA", "build_manifest", "write_run_report"]

MANIFEST_SCHEMA = 1

_ConfigParts = Union[object, Tuple[object, ...]]


def build_manifest(
    scenario: Optional[str] = None,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    experiments: Optional[Iterable[str]] = None,
    configs: Optional[Dict[str, _ConfigParts]] = None,
    registry: Optional[obs_metrics.MetricsRegistry] = None,
    tracer: Optional[obs_trace.Tracer] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble a run manifest as a JSON-ready dict.

    Args:
        scenario / seed / jobs / experiments: What the run computed.
        configs: Name -> config object (or tuple of config objects) to
            fingerprint; keys/parts should mirror the artifact cache's
            (``{"platform": cfg, "longterm": (platform_cfg, lt_cfg)}``)
            so manifest fingerprints equal cache-entry fingerprints.
        registry: Metrics to snapshot (default registry otherwise).
        tracer: Span source (current tracer otherwise).
        extra: Free-form additions, stored under ``"extra"``.
    """
    # Imported lazily: the harness imports repro.obs, so a module-level
    # import here would be circular.
    from repro.harness.engine import config_fingerprint
    import repro

    registry = registry if registry is not None else obs_metrics.get_registry()
    tracer = tracer if tracer is not None else obs_trace.get_tracer()

    fingerprints = {}
    for name, parts in (configs or {}).items():
        if not isinstance(parts, tuple):
            parts = (parts,)
        fingerprints[name] = config_fingerprint(name, *parts)

    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": round(time.time(), 3),
        "argv": list(sys.argv),
        "run": {
            "scenario": scenario,
            "seed": seed,
            "jobs": jobs,
            "experiments": list(experiments) if experiments is not None else [],
        },
        "environment": {
            "package_version": getattr(repro, "__version__", "0"),
            "python": _platform.python_version(),
            "platform": _platform.platform(),
            "cpu_count": os.cpu_count(),
            "pid": os.getpid(),
        },
        "config_fingerprints": fingerprints,
        "metrics": registry.snapshot(),
        "spans": {
            "total_seconds": round(tracer.total_seconds(), 6),
            "coverage": tracer.coverage(),
            "summary": tracer.summary(),
        },
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_run_report(path: Union[str, Path], manifest: Dict[str, object]) -> Path:
    """Write a manifest as indented JSON; returns the resolved path."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, default=str) + "\n")
    return target
