"""Hierarchical wall-time spans with Chrome trace-event export.

Spans generalize the flat ``Timings`` table of PR 1: each span has an id,
a parent (the span open when it started), attributes and a wall time, so
a run decomposes as a tree::

    reproduce
    ├── topology … congestion     (platform build stages)
    ├── longterm-build
    │   └── fork_map:longterm     (items / jobs / worker seconds in attrs)
    └── experiment:table1 …

A :class:`Tracer` collects spans; the module keeps one *current* tracer
(swap it with :func:`use_tracer` for an isolated run).  Export formats:

- :meth:`Tracer.to_chrome_trace` -- the Chrome trace-event JSON the CLI
  writes for ``--trace-out``; drop the file on https://ui.perfetto.dev
  (or ``chrome://tracing``) for a flame view.
- :meth:`Tracer.summary` -- per-name aggregates for the run manifest.

Tracing is in-process: spans opened inside forked dataset workers stay in
the worker.  ``fork_map`` instead reports aggregate worker wall time as
attributes on its own span in the parent, so worker cost still shows up
in the parent trace.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs.log import get_logger

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "span",
    "stage",
]

_LOG = get_logger("repro.obs.trace")


@dataclass
class Span:
    """One timed region of the pipeline."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    """``time.perf_counter()`` at open."""
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        """Wall time of the span (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)


class Tracer:
    """Collects a tree of spans for one run."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a span for the ``with`` block; nests under the current span."""
        opened = self._open(name, attrs)
        try:
            yield opened
        finally:
            self._close(opened)

    def _open(self, name: str, attrs: Dict[str, object]) -> Span:
        with self._lock:
            parent = self._stack[-1].span_id if self._stack else None
            opened = Span(
                name=name,
                span_id=self._next_id,
                parent_id=parent,
                start=time.perf_counter(),
                attrs=dict(attrs),
            )
            self._next_id += 1
            self.spans.append(opened)
            self._stack.append(opened)
        return opened

    def _close(self, opened: Span) -> None:
        with self._lock:
            opened.end = time.perf_counter()
            if opened in self._stack:
                self._stack.remove(opened)
        _LOG.debug(
            "span", name=opened.name,
            seconds=round(opened.duration_seconds, 6), **opened.attrs
        )

    def record_span(self, name: str, seconds: float, **attrs: object) -> Span:
        """Append an already-measured span (ends now, started ``seconds`` ago)."""
        now = time.perf_counter()
        with self._lock:
            parent = self._stack[-1].span_id if self._stack else None
            recorded = Span(
                name=name,
                span_id=self._next_id,
                parent_id=parent,
                start=now - float(seconds),
                end=now,
                attrs=dict(attrs),
            )
            self._next_id += 1
            self.spans.append(recorded)
        return recorded

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        with self._lock:
            return self._stack[-1] if self._stack else None

    def roots(self) -> List[Span]:
        """Spans with no parent, in open order."""
        return [item for item in self.spans if item.parent_id is None]

    def total_seconds(self) -> float:
        """Combined wall time of all root spans."""
        return sum(item.duration_seconds for item in self.roots())

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregates: ``{name: {"count": n, "seconds": total}}``.

        Ordered by first appearance, so manifests read in pipeline order.
        """
        merged: Dict[str, Dict[str, float]] = {}
        for item in self.spans:
            entry = merged.setdefault(item.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += item.duration_seconds
        for entry in merged.values():
            entry["seconds"] = round(entry["seconds"], 6)
        return merged

    def coverage(self) -> Optional[float]:
        """Fraction of root wall time covered by the roots' direct children.

        The acceptance bar for an instrumented pipeline: close to 1.0
        means almost no un-attributed time under the run's root span.
        ``None`` when there are no closed root spans.
        """
        root_ids = {item.span_id for item in self.roots()}
        total = self.total_seconds()
        if not root_ids or total <= 0.0:
            return None
        covered = sum(
            item.duration_seconds
            for item in self.spans
            if item.parent_id in root_ids
        )
        return min(1.0, covered / total)

    def to_chrome_trace(self) -> Dict[str, object]:
        """The span tree as Chrome trace-event JSON (perfetto-compatible).

        Complete events (``ph: "X"``) with microsecond timestamps relative
        to the earliest span; nesting is positional (same pid/tid,
        contained intervals), exactly how trace viewers expect it.
        """
        epoch = min((item.start for item in self.spans), default=0.0)
        pid = os.getpid()
        events = []
        for item in self.spans:
            args: Dict[str, object] = {"span_id": item.span_id}
            if item.parent_id is not None:
                args["parent_id"] = item.parent_id
            args.update(item.attrs)
            events.append(
                {
                    "name": item.name,
                    "cat": "repro",
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": round((item.start - epoch) * 1e6, 3),
                    "dur": round(item.duration_seconds * 1e6, 3),
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The current tracer (a fresh process-wide default until swapped)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> None:
    """Replace the current tracer."""
    global _TRACER
    _TRACER = tracer


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` current for the ``with`` block, then restore."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs: object):
    """A span on the current tracer (convenience for instrumentation)."""
    return get_tracer().span(name, **attrs)


def stage(name: str, timings: Optional[object] = None):
    """A pipeline-stage context: span *and* legacy timings in one call.

    When ``timings`` (any object with a ``stage(name)`` context manager,
    i.e. :class:`repro.harness.engine.Timings`) is given, delegate to it --
    the shim opens the span itself, so the stage is recorded exactly once
    in both systems.  Otherwise open a bare span on the current tracer.
    """
    if timings is not None:
        return timings.stage(name)
    return get_tracer().span(name)
