"""Process-local metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` owns named instruments; creation is
get-or-create, so any module can do ``metrics.counter("cache.hit").inc()``
without wiring a registry through every call chain.  ``snapshot()``
projects the whole registry into a JSON-ready dict for run manifests.

The dataset builders run their hot loops in *forked* worker processes,
where increments would land in a copy of the registry and vanish.
:meth:`MetricsRegistry.delta_since` / :meth:`MetricsRegistry.merge` close
that gap: a worker snapshots before an item, computes the delta after,
and ships the (small, picklable) delta back with the result;
``fork_map`` merges it into the parent registry.  Counter and histogram
deltas are exact under this scheme; gauges are last-write instruments and
are deliberately not merged across processes.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "registry_lock",
    "counter",
    "gauge",
    "histogram",
]

Number = Union[int, float]

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)
"""Upper bounds (exclusive of the implicit +inf overflow bucket); chosen
to span microsecond-scale items through multi-minute stages."""


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.value: float = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    kind = "gauge"

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.value: float = 0

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """A bucketed distribution with count/sum/min/max."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self._lock = lock
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        # One slot per bound plus the +inf overflow bucket.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.counts[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def stats(self) -> Dict[str, object]:
        """JSON-ready stats: count, sum, min, max and bucket counts."""
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "bounds": list(self.bounds),
                "counts": list(self.counts),
            }


class MetricsRegistry:
    """Named instruments with JSON snapshots and fork-delta merging."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type, **kwargs: object):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create a histogram (``buckets`` applies on creation only)."""
        if buckets is None:
            return self._get(name, Histogram)
        return self._get(name, Histogram, buckets=buckets)

    def reset(self) -> None:
        """Drop every instrument (tests and per-run isolation)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The registry as JSON-ready nested dicts.

        ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: stats}}`` -- stable input to run manifests
        and to :meth:`delta_since`.
        """
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.value
            elif isinstance(metric, Histogram):
                histograms[metric.name] = metric.stats()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def delta_since(self, baseline: Dict[str, Dict[str, object]]) -> Dict[str, Dict[str, object]]:
        """What changed since ``baseline`` (a prior :meth:`snapshot`).

        Returns only non-zero counter increments and histograms with new
        observations, so worker→parent deltas stay tiny.  Histogram
        ``min``/``max`` carry the *current* extremes -- merging extremes
        is idempotent, so inherited pre-fork history cannot skew them.
        """
        current = self.snapshot()
        base_counters = baseline.get("counters", {})
        counters = {
            name: value - base_counters.get(name, 0)
            for name, value in current["counters"].items()
            if value != base_counters.get(name, 0)
        }
        base_histograms = baseline.get("histograms", {})
        histograms: Dict[str, object] = {}
        for name, stats in current["histograms"].items():
            base = base_histograms.get(
                name, {"count": 0, "sum": 0.0, "counts": [0] * len(stats["counts"])}
            )
            if stats["count"] == base["count"]:
                continue
            histograms[name] = {
                "count": stats["count"] - base["count"],
                "sum": stats["sum"] - base["sum"],
                "min": stats["min"],
                "max": stats["max"],
                "bounds": stats["bounds"],
                "counts": [
                    now - before
                    for now, before in zip(stats["counts"], base["counts"])
                ],
            }
        return {"counters": counters, "histograms": histograms}

    def merge(self, delta: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`delta_since` result into this registry."""
        for name, increment in delta.get("counters", {}).items():
            self.counter(name).inc(increment)
        for name, stats in delta.get("histograms", {}).items():
            hist = self.histogram(name, buckets=stats["bounds"])
            with self._lock:
                if tuple(stats["bounds"]) != hist.bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds changed across processes"
                    )
                for index, count in enumerate(stats["counts"]):
                    hist.counts[index] += count
                hist.count += stats["count"]
                hist.sum += stats["sum"]
                if stats["min"] is not None:
                    hist.min = (
                        stats["min"] if hist.min is None
                        else min(hist.min, stats["min"])
                    )
                if stats["max"] is not None:
                    hist.max = (
                        stats["max"] if hist.max is None
                        else max(hist.max, stats["max"])
                    )


_REGISTRY = MetricsRegistry()


def registry_lock() -> "threading.Lock":
    """The default registry's instrument lock, for at-fork serialization.

    Any application thread (a campaign executor, a request handler) may
    be mid-increment at the instant another thread forks a worker pool;
    the at-fork hook in :mod:`repro.obs.live` acquires this lock (after
    the fork guard) around the clone so children never inherit it held.
    The lock object is stable for the life of the process --
    :meth:`MetricsRegistry.reset` clears instruments, not the lock.
    """
    return _REGISTRY._lock


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """A counter in the default registry."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """A gauge in the default registry."""
    return _REGISTRY.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
    """A histogram in the default registry."""
    return _REGISTRY.histogram(name, buckets=buckets)
