"""Observability layer: structured logging, metrics, tracing, run manifests.

The pipeline is a long-running measurement campaign -- 485 simulated days,
thousands of server pairs -- and this package is its flight recorder:

- :mod:`repro.obs.log` -- structured logging (human-readable or JSON-lines)
  with rate-limited progress reporting for long builds.
- :mod:`repro.obs.metrics` -- a process-local registry of counters, gauges
  and histograms with a JSON ``snapshot()`` and fork-safe delta merging.
- :mod:`repro.obs.trace` -- hierarchical wall-time spans, exportable as
  Chrome trace-event JSON (open in https://ui.perfetto.dev).
- :mod:`repro.obs.runinfo` -- the run manifest: scenario, seed, config
  fingerprints, versions, metric snapshot and span summary in one JSON
  document (``reproduce --run-report``).
- :mod:`repro.obs.live` -- the live telemetry plane: a thread-safe
  :class:`~repro.obs.live.RunStatus` board and the sampling
  :class:`~repro.obs.live.FlightRecorder` (ring buffer + JSONL stream +
  crash dump) behind ``reproduce --live-out``.
- :mod:`repro.obs.expo` -- HTTP exposition of the live plane:
  Prometheus-text ``/metrics``, JSON ``/status`` and ``/health`` behind
  ``reproduce --serve-metrics``.
- :mod:`repro.obs.top` -- a terminal dashboard that tails the live
  JSONL or polls the endpoint (``python -m repro.obs.top``).

``repro.obs`` sits below every other layer and imports nothing from the
rest of the package at module scope, so any module may instrument itself
freely.
"""

from repro.obs import expo, live, log, metrics, runinfo, trace
from repro.obs.expo import MetricsServer, prometheus_text
from repro.obs.live import FlightRecorder, RunStatus, get_status
from repro.obs.log import Progress, StructuredLogger, configure, get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Span, Tracer, get_tracer, set_tracer, use_tracer

__all__ = [
    "log",
    "metrics",
    "trace",
    "runinfo",
    "live",
    "expo",
    "FlightRecorder",
    "RunStatus",
    "get_status",
    "MetricsServer",
    "prometheus_text",
    "configure",
    "get_logger",
    "Progress",
    "StructuredLogger",
    "MetricsRegistry",
    "get_registry",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
