"""Observability layer: structured logging, metrics, tracing, run manifests.

The pipeline is a long-running measurement campaign -- 485 simulated days,
thousands of server pairs -- and this package is its flight recorder:

- :mod:`repro.obs.log` -- structured logging (human-readable or JSON-lines)
  with rate-limited progress reporting for long builds.
- :mod:`repro.obs.metrics` -- a process-local registry of counters, gauges
  and histograms with a JSON ``snapshot()`` and fork-safe delta merging.
- :mod:`repro.obs.trace` -- hierarchical wall-time spans, exportable as
  Chrome trace-event JSON (open in https://ui.perfetto.dev).
- :mod:`repro.obs.runinfo` -- the run manifest: scenario, seed, config
  fingerprints, versions, metric snapshot and span summary in one JSON
  document (``reproduce --run-report``).

``repro.obs`` sits below every other layer and imports nothing from the
rest of the package at module scope, so any module may instrument itself
freely.
"""

from repro.obs import log, metrics, runinfo, trace
from repro.obs.log import Progress, StructuredLogger, configure, get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Span, Tracer, get_tracer, set_tracer, use_tracer

__all__ = [
    "log",
    "metrics",
    "trace",
    "runinfo",
    "configure",
    "get_logger",
    "Progress",
    "StructuredLogger",
    "MetricsRegistry",
    "get_registry",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
