"""HTTP exposition of the live telemetry plane (stdlib-only).

Serves three endpoints from a daemon thread, enabled by
``reproduce --serve-metrics [PORT]``:

- ``/metrics`` -- the full :class:`~repro.obs.metrics.MetricsRegistry`
  in Prometheus text format (version 0.0.4), with derived age gauges
  refreshed at scrape time.
- ``/status`` -- the :class:`~repro.obs.live.RunStatus` board as JSON
  (run identity, active phase, shard table, checkpoint provenance) plus
  the flight recorder's newest sample when one is attached.
- ``/health`` -- ``200 ok`` while the process serves.

Metric naming: registry names are dotted (``stream.units``); exposition
rewrites them to ``repro_stream_units``.  A registry name may carry
labels in curly-brace form -- ``stream.queue_depth{shard=3}`` -- which
render as proper Prometheus labels with full value escaping.  Counters
gain the conventional ``_total`` suffix; histograms expand into
cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.live import (
    FlightRecorder,
    RunStatus,
    fork_guard,
    get_status,
    refresh_derived_gauges,
)
from repro.obs.log import get_logger

__all__ = [
    "DEFAULT_METRICS_PORT",
    "CONTENT_TYPE_METRICS",
    "LIVE_STATUS_SCHEMA",
    "parse_metric_name",
    "escape_label_value",
    "prometheus_text",
    "MetricsServer",
]

DEFAULT_METRICS_PORT = 9309
"""Default ``--serve-metrics`` port (the 9xxx exporter convention)."""

CONTENT_TYPE_METRICS = "text/plain; version=0.0.4; charset=utf-8"

LIVE_STATUS_SCHEMA = 2
"""Bump when the ``/status`` JSON document changes shape.

Version history: 1 run/phase/stream/checkpoint + sample; 2 adds the
``campaigns`` table (the service's per-campaign board rows).
"""

_LOG = get_logger("repro.obs.expo")

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def parse_metric_name(name: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry name into (bare name, labels).

    ``"stream.queue_depth{shard=3}"`` -> ``("stream.queue_depth",
    {"shard": "3"})``.  Names without a ``{`` carry no labels; a
    malformed label block is kept verbatim in the name rather than
    guessed at.
    """
    if "{" not in name:
        return name, {}
    if not name.endswith("}"):
        return name, {}
    bare, _, block = name.partition("{")
    labels: Dict[str, str] = {}
    for part in block[:-1].split(","):
        key, eq, value = part.partition("=")
        if not eq or not key.strip():
            return name, {}
        labels[key.strip()] = value.strip()
    return bare, labels


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double-quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _metric_name(name: str) -> str:
    sanitized = _NAME_SANITIZE.sub("_", name)
    if not sanitized.startswith("repro_"):
        sanitized = f"repro_{sanitized}"
    return sanitized


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_LABEL_SANITIZE.sub("_", key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: object) -> str:
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 2**53:
        return str(int(number))
    return repr(number)


def prometheus_text(snapshot: Dict[str, Dict[str, object]]) -> str:
    """A registry snapshot as Prometheus exposition text.

    One ``# TYPE`` line per metric family (emitted once even when many
    labeled series share the family), families in sorted order so the
    output is diff-stable across scrapes.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family(name: str, kind: str) -> Dict[str, object]:
        entry = families.setdefault(name, {"kind": kind, "lines": []})
        if entry["kind"] != kind:
            raise ValueError(
                f"metric family {name!r} exposed as both "
                f"{entry['kind']} and {kind}"
            )
        return entry

    for name, value in snapshot.get("counters", {}).items():
        bare, labels = parse_metric_name(name)
        metric = _metric_name(bare) + "_total"
        family(metric, "counter")["lines"].append(
            f"{metric}{_render_labels(labels)} {_format_value(value)}"
        )
    for name, value in snapshot.get("gauges", {}).items():
        bare, labels = parse_metric_name(name)
        metric = _metric_name(bare)
        family(metric, "gauge")["lines"].append(
            f"{metric}{_render_labels(labels)} {_format_value(value)}"
        )
    for name, stats in snapshot.get("histograms", {}).items():
        bare, labels = parse_metric_name(name)
        metric = _metric_name(bare)
        lines = family(metric, "histogram")["lines"]
        cumulative = 0
        for bound, count in zip(stats["bounds"], stats["counts"]):
            cumulative += count
            le_labels = dict(labels)
            le_labels["le"] = _format_value(bound)
            lines.append(
                f"{metric}_bucket{_render_labels(le_labels)} {cumulative}"
            )
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(
            f"{metric}_bucket{_render_labels(inf_labels)} {stats['count']}"
        )
        lines.append(
            f"{metric}_sum{_render_labels(labels)} {_format_value(stats['sum'])}"
        )
        lines.append(
            f"{metric}_count{_render_labels(labels)} {stats['count']}"
        )

    out: List[str] = []
    for metric in sorted(families):
        entry = families[metric]
        out.append(f"# TYPE {metric} {entry['kind']}")
        out.extend(entry["lines"])
    return "\n".join(out) + "\n" if out else "\n"


class MetricsServer:
    """``/metrics`` + ``/status`` + ``/health`` on a daemon thread.

    Binds at construction (so ``port=0`` resolves to a real ephemeral
    port immediately); ``start()`` begins serving, ``close()`` shuts the
    listener down.  The built-in routes only ever *read* the registry/
    status/recorder, so serving never perturbs the run it is observing;
    the campaign service registers additional control routes (pause/
    resume/drain and ``/campaigns``) through :meth:`add_route`.
    """

    def __init__(
        self,
        registry: Optional[obs_metrics.MetricsRegistry] = None,
        status: Optional[RunStatus] = None,
        recorder: Optional[FlightRecorder] = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_METRICS_PORT,
    ) -> None:
        self.registry = registry if registry is not None else obs_metrics.get_registry()
        self.status = status if status is not None else get_status()
        self.recorder = recorder
        self._routes: Dict[Tuple[str, str], Callable[[], Tuple[int, str, str]]] = {}
        self.add_route("GET", "/metrics", self._route_metrics)
        self.add_route("GET", "/status", self._route_status)
        self.add_route("GET", "/health", self._route_health)
        server = self

        class Handler(BaseHTTPRequestHandler):
            def _dispatch(self, method: str) -> None:
                path = self.path.split("?", 1)[0]
                route = server._routes.get((method, path))
                if route is None:
                    self._reply(404, "text/plain; charset=utf-8", "not found\n")
                    return
                try:
                    code, content_type, body = route()
                except Exception:  # a broken route must not kill the server
                    _LOG.warning("expo.route_failed", method=method, path=path)
                    self._reply(
                        500, "text/plain; charset=utf-8", "internal error\n"
                    )
                    return
                self._reply(code, content_type, body)

            def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
                self._dispatch("GET")

            def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
                self._dispatch("POST")

            def _reply(self, code: int, content_type: str, body: str) -> None:
                data = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, format: str, *args: object) -> None:
                _LOG.debug("expo.request", line=format % args)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.host, self.port = self._server.server_address[:2]

    def add_route(
        self,
        method: str,
        path: str,
        handler: Callable[[], Tuple[int, str, str]],
    ) -> None:
        """Mount ``handler`` at ``(method, path)``.

        Handlers return ``(code, content_type, body)`` and run on the
        server's pool threads -- anything touching the registry or the
        status board must hold :func:`~repro.obs.live.fork_guard` for
        the read, exactly like the built-in routes.  Registering a path
        again replaces the previous handler (the service re-mounts its
        campaign routes on restart).
        """
        self._routes[(method.upper(), path)] = handler

    # ------------------------------------------------------------------
    # Built-in routes
    # ------------------------------------------------------------------

    def _route_metrics(self) -> Tuple[int, str, str]:
        # handlers run on pool threads while the pipeline may fork
        # workers: hold the fork guard across registry use
        with fork_guard():
            refresh_derived_gauges(self.registry, self.status)
            body = prometheus_text(self.registry.snapshot())
        return 200, CONTENT_TYPE_METRICS, body

    def _route_status(self) -> Tuple[int, str, str]:
        with fork_guard():
            payload = self.status_payload()
        body = json.dumps(payload, indent=2, default=str) + "\n"
        return 200, "application/json", body

    def _route_health(self) -> Tuple[int, str, str]:
        return 200, "text/plain; charset=utf-8", "ok\n"

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    def status_payload(self) -> Dict[str, object]:
        """The ``/status`` document (board + newest recorder sample)."""
        payload = self.status.as_dict()
        payload["schema"] = LIVE_STATUS_SCHEMA
        if self.recorder is not None:
            payload["sample"] = self.recorder.latest()
        return payload

    def start(self) -> "MetricsServer":
        """Serve until :meth:`close` on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("expo.serving", url=self.url)
        return self

    def close(self) -> None:
        """Stop serving and release the port; idempotent.

        ``shutdown()`` blocks until the serve loop acknowledges it, so
        it only runs while the serving thread is actually alive -- a
        forked child inherits the thread *object* but not the thread.
        """
        if self._thread is not None:
            if self._thread.is_alive():
                self._server.shutdown()
                self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()
