"""Per-file analysis context: AST, import aliases, and noqa suppressions.

Every rule receives one :class:`FileContext` per file.  The context does
the shared work once: parse the source, build an import-alias map so
rules can resolve ``np.random.default_rng`` and ``from numpy.random
import default_rng`` to the same canonical dotted name, and collect
``# repro: noqa[RULE]`` suppression comments.

Suppression grammar (rule codes are mandatory -- there is no bare noqa):

- line-scoped:  ``some_call()  # repro: noqa[DET001] -- reason``
- file-scoped:  ``# repro: noqa-file[DET002,OBS001] -- reason``
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["FileContext", "SuppressionComment", "dotted_parts"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<scope>-file)?\[(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
)


@dataclass(frozen=True)
class SuppressionComment:
    """One parsed noqa comment."""

    line: int
    rules: Tuple[str, ...]
    file_scoped: bool


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` attribute chains as ``["a", "b", "c"]``; None otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _parse_suppressions(source: str) -> List[SuppressionComment]:
    comments: List[SuppressionComment] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Un-tokenizable source still parses noqa comments line-by-line so
        # suppression behavior does not depend on unrelated syntax trouble.
        tokens = [
            tokenize.TokenInfo(tokenize.COMMENT, line, (number, 0), (number, len(line)), line)
            for number, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        rules = tuple(code.strip() for code in match.group("rules").split(","))
        comments.append(
            SuppressionComment(
                line=token.start[0],
                rules=rules,
                file_scoped=match.group("scope") is not None,
            )
        )
    return comments


def _module_name(path: Path) -> str:
    """Dotted module path, anchored at the last ``repro`` path component."""
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return ".".join(parts[-1:])


class FileContext:
    """Shared per-file state handed to every rule."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.module = _module_name(path)
        self.module_parts: Tuple[str, ...] = tuple(self.module.split("."))
        self.is_package = path.stem == "__init__"
        self.aliases = self._import_aliases(self.tree)
        self.suppressions = _parse_suppressions(source)
        self._line_rules: Dict[int, Set[str]] = {}
        self._file_rules: Set[str] = set()
        for comment in self.suppressions:
            if comment.file_scoped:
                self._file_rules.update(comment.rules)
            else:
                self._line_rules.setdefault(comment.line, set()).update(comment.rules)

    # -- scope helpers ---------------------------------------------------

    def in_packages(self, *packages: str) -> bool:
        """Whether this module lives under ``repro.<one of packages>``."""
        return (
            len(self.module_parts) >= 2
            and self.module_parts[0] == "repro"
            and self.module_parts[1] in packages
        )

    @property
    def is_main_module(self) -> bool:
        return self.path.name == "__main__.py"

    # -- import resolution ----------------------------------------------

    def _import_aliases(self, tree: ast.Module) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: anchor at this module's package.  A
                    # package's own name is already its level-1 anchor
                    # (module_parts has no ``__init__`` component to strip),
                    # so drop one component fewer there.
                    drop = node.level - 1 if self.is_package else node.level
                    keep = len(self.module_parts) - drop
                    package = list(self.module_parts[:keep]) if keep > 0 else []
                    base = ".".join(package + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    origin = f"{base}.{alias.name}" if base else alias.name
                    aliases[alias.asname or alias.name] = origin
        return aliases

    def resolve_imported(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain rooted at an import.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when
        ``import numpy as np`` is in scope; ``None`` when the chain's base
        name was never imported (a local variable, a builtin, ...).
        """
        parts = dotted_parts(node)
        if not parts or parts[0] not in self.aliases:
            return None
        return ".".join([self.aliases[parts[0]]] + parts[1:])

    # -- suppressions ----------------------------------------------------

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self._file_rules:
            return True
        return rule in self._line_rules.get(line, ())

    def suppression_comments(self) -> Sequence[SuppressionComment]:
        return tuple(self.suppressions)
