"""Content-fingerprint cache for per-file lint results.

Same discipline as :class:`repro.harness.engine.ArtifactCache` -- keys
are stable fingerprints of everything that can change the answer,
entries are written atomically (temp file + rename), corruption is a
miss -- but reimplemented here because the harness engine sits on the
numpy import chain and ``python -m repro.lint`` must run in
environments (CI lint job, pre-commit) where numpy does not exist.

A cache entry holds everything the runner needs to skip a file whose
bytes have not changed: its post-suppression findings, its suppression
table (the project phase consults it for noqa on DET010/FRK010/SCH010
findings), and its :func:`repro.lint.analysis.summary.build_summary`
dict, from which the whole-program view is reassembled every run.

The key folds in the engine version, every enabled rule's
``(code, version)`` pair, the suppression allowlist, and the file's
bytes -- so bumping a rule's ``version`` or editing the allowlist
invalidates exactly the entries those could have influenced.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["LINT_CACHE_SCHEMA", "LintCache", "default_lint_cache_dir", "entry_key"]

LINT_CACHE_SCHEMA = 1
"""Bump when the entry layout changes shape."""

_CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_lint_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``, plus the lint namespace."""
    root = os.environ.get(_CACHE_DIR_ENV)
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / "lint" / f"v{LINT_CACHE_SCHEMA}"


def entry_key(
    engine_version: int,
    rule_versions: Sequence[Tuple[str, int]],
    allowlist_repr: str,
    enforce_allowlist: bool,
    path: str,
    source: bytes,
) -> str:
    """Stable fingerprint of one file's full lint configuration + content."""
    digest = hashlib.blake2b(digest_size=16)
    preamble = repr(
        (
            LINT_CACHE_SCHEMA,
            engine_version,
            tuple(rule_versions),
            allowlist_repr,
            enforce_allowlist,
            path,
        )
    )
    digest.update(preamble.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source)
    return digest.hexdigest()


class LintCache:
    """Keyed JSON entries with atomic writes; any corruption is a miss."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = root if root is not None else default_lint_cache_dir()
        self.hits = 0
        self.misses = 0

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, object]]:
        path = self._entry_path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            if path.exists():
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._entry_path(key)
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            temp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            os.replace(temp, path)
        except OSError:
            try:
                temp.unlink()
            except OSError:
                pass

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
