"""The lint driver: discover files, run rules, apply suppression policy.

Two phases per run:

1. **Per-file** (expensive, cacheable): parse, run every file-scoped
   rule, apply noqa suppressions, audit them against the allowlist, and
   build the module's whole-program summary.  Results are cached under a
   content fingerprint (:mod:`repro.lint.cache`) keyed by the file's
   bytes plus everything that can change the answer -- engine version,
   enabled rules' ``(code, version)`` pairs, the allowlist -- and can
   run in parallel via ``fork_map`` (``jobs``).  A file that cannot be
   read, decoded, or parsed produces one structured LNT001 finding and
   the run continues; a rule that crashes on a file produces LNT002.
2. **Project** (cheap, always recomputed): the summaries are assembled
   into a :class:`repro.lint.analysis.project.Project` and the
   project-scoped rules (DET010/FRK010/SCH010) run over it.  Their
   findings honor the same noqa suppressions, read from the cached
   per-file suppression tables -- so warm and cold runs produce
   byte-identical reports.

Orchestration only -- rules live in :mod:`repro.lint.rules`, policy data
in :mod:`repro.lint.allowlist`.  The public entry points are
:func:`lint_paths` (what the CLI and CI call) and :func:`lint_source`
(what rule tests call with fixture snippets).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint import allowlist as allowlist_mod
from repro.lint.analysis.project import Project
from repro.lint.analysis.summary import ANALYSIS_VERSION, build_summary
from repro.lint.cache import LintCache, entry_key
from repro.lint.context import FileContext
from repro.lint.findings import Finding, LintReport, Severity, summarize_codes
from repro.lint.registry import Rule, all_rules, get_rule
from repro.obs.log import get_logger

# Importing the rules package populates the registry as a side effect.
import repro.lint.rules  # noqa: F401  (registration import)

__all__ = ["Linter", "ProjectOptions", "lint_paths", "lint_source", "iter_python_files"]

_PathLike = Union[str, Path]

_LOG = get_logger("repro.lint")


@dataclass
class ProjectOptions:
    """Knobs the project-scoped rules read (path overrides for tests/CLI)."""

    schema_snapshot: Optional[Path] = None
    bench_baseline: Optional[Path] = None


def iter_python_files(paths: Iterable[_PathLike]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, sorted, each yielded once."""
    seen = set()
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            candidates: Sequence[Path] = sorted(root.rglob("*.py"))
        elif root.suffix == ".py":
            candidates = [root]
        else:
            raise FileNotFoundError(f"not a python file or directory: {root}")
        for path in candidates:
            if path not in seen:
                seen.add(path)
                yield path


class _SuppressionTable:
    """noqa lookups reconstructed from a cached per-file result."""

    def __init__(self, serialized: Sequence[Sequence[object]]) -> None:
        self._file_rules: Set[str] = set()
        self._line_rules: Dict[int, Set[str]] = {}
        for line, rules, file_scoped in serialized:
            if file_scoped:
                self._file_rules.update(rules)  # type: ignore[arg-type]
            else:
                self._line_rules.setdefault(int(line), set()).update(rules)  # type: ignore[arg-type, call-overload]

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self._file_rules:
            return True
        return rule in self._line_rules.get(line, set())


def _finding_from_dict(payload: Dict[str, object]) -> Finding:
    return Finding(
        rule=str(payload["rule"]),
        severity=Severity(str(payload["severity"])),
        path=str(payload["path"]),
        line=int(payload["line"]),  # type: ignore[call-overload]
        col=int(payload["col"]),  # type: ignore[call-overload]
        message=str(payload["message"]),
    )


_RESULT_KEYS = frozenset({"findings", "suppressed", "suppressions", "summary"})


class Linter:
    """A configured lint pass: rule selection plus suppression policy.

    Args:
        select / ignore: Rule-code filters (both optional).
        enforce_allowlist: When true (the default, and what CI uses),
            every noqa comment must be covered by
            :data:`repro.lint.allowlist.SUPPRESSION_ALLOWLIST` or the
            runner emits LNT000 at the comment.  Rule tests disable this
            to exercise fixtures with undocumented suppressions.
        cache: A :class:`repro.lint.cache.LintCache` for incremental
            runs; ``None`` (the default) recomputes everything.
        jobs: Per-file phase parallelism via ``fork_map``; falls back to
            serial when the fork machinery is unavailable (no numpy, no
            fork start method).
        options: Path overrides handed to project-scoped rules.
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        enforce_allowlist: bool = True,
        cache: Optional[LintCache] = None,
        jobs: int = 1,
        options: Optional[ProjectOptions] = None,
    ) -> None:
        enabled = all_rules(select, ignore)
        self.rules: List[Rule] = [
            r for r in enabled if not r.synthetic and not r.project_scope
        ]
        self.project_rules: List[Rule] = [r for r in enabled if r.project_scope]
        self.enforce_allowlist = enforce_allowlist
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self.options = options if options is not None else ProjectOptions()
        enabled_codes = {r.code for r in enabled}
        self._emit_lnt000 = "LNT000" in enabled_codes
        self._emit_lnt001 = "LNT001" in enabled_codes
        self._emit_lnt002 = "LNT002" in enabled_codes
        self._rule_versions: Tuple[Tuple[str, int], ...] = tuple(
            (r.code, r.version) for r in enabled
        )
        self._allowlist_repr = repr(
            tuple(
                (entry.path, entry.rule)
                for entry in allowlist_mod.SUPPRESSION_ALLOWLIST
            )
        )

    # -- public entry points --------------------------------------------

    def lint_source(self, source: str, path: _PathLike) -> LintReport:
        """Lint one in-memory source blob as if it lived at ``path``."""
        report = LintReport(files=1)
        result = self._analyze_source(Path(path), source)
        self._merge_results(report, [result])
        report.findings.sort(key=Finding.sort_key)
        return report

    def lint_paths(self, paths: Iterable[_PathLike]) -> LintReport:
        report = LintReport()
        readable: List[Tuple[Path, str]] = []
        for path in iter_python_files(paths):
            report.files += 1
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as error:
                # One structured finding per unreadable file; never abort.
                if self._emit_lnt001:
                    rule = get_rule("LNT001")
                    report.findings.append(
                        rule.finding_at(
                            FileContextStub(path), 1, 0,
                            f"file cannot be read: {error}",
                        )
                    )
                continue
            readable.append((path, source))
        results = self._results_for(readable)
        self._merge_results(report, results)
        report.findings.sort(key=Finding.sort_key)
        _LOG.info(
            "lint.done",
            files=report.files,
            findings=len(report.findings),
            suppressed=report.suppressed,
            codes=summarize_codes(report.findings),
            cache_hits=None if self.cache is None else self.cache.hits,
            cache_misses=None if self.cache is None else self.cache.misses,
        )
        return report

    # -- per-file phase --------------------------------------------------

    def _results_for(
        self, files: Sequence[Tuple[Path, str]]
    ) -> List[Dict[str, object]]:
        if self.cache is None:
            return self._map_files(files)
        keys = [
            entry_key(
                ANALYSIS_VERSION,
                self._rule_versions,
                self._allowlist_repr,
                self.enforce_allowlist,
                path.as_posix(),
                source.encode("utf-8"),
            )
            for path, source in files
        ]
        results: List[Optional[Dict[str, object]]] = []
        for key in keys:
            entry = self.cache.load(key)
            if entry is not None and not _RESULT_KEYS <= set(entry):
                entry = None  # stale layout: treat as a miss
            results.append(entry)
        missing = [index for index, entry in enumerate(results) if entry is None]
        if missing:
            computed = self._map_files([files[index] for index in missing])
            for index, result in zip(missing, computed):
                self.cache.store(keys[index], result)
                results[index] = result
        return results  # type: ignore[return-value]

    def _map_files(
        self, files: Sequence[Tuple[Path, str]]
    ) -> List[Dict[str, object]]:
        if self.jobs > 1 and len(files) > 1:
            fork_map = _resolve_fork_map()
            if fork_map is not None:
                try:
                    return fork_map(
                        lambda pair: self._analyze_source(pair[0], pair[1]),
                        list(files),
                        jobs=self.jobs,
                        label="lint.files",
                    )
                except Exception:
                    _LOG.info("lint.jobs_fallback", jobs=self.jobs)
        return [self._analyze_source(path, source) for path, source in files]

    def _analyze_source(self, path: Path, source: str) -> Dict[str, object]:
        """The cacheable per-file result: findings + suppressions + summary."""
        try:
            ctx = FileContext(path, source)
        except (SyntaxError, ValueError) as error:
            findings: List[Dict[str, object]] = []
            if self._emit_lnt001:
                rule = get_rule("LNT001")
                line = getattr(error, "lineno", None) or 1
                findings.append(
                    rule.finding_at(
                        FileContextStub(path), line, 0,
                        f"file does not parse: {error}",
                    ).as_dict()
                )
            return {
                "findings": findings,
                "suppressed": 0,
                "suppressions": [],
                "summary": None,
            }
        findings = []
        suppressed = 0
        for rule in self.rules:
            if not rule.applies(ctx):
                continue
            try:
                rule_findings = list(rule.check(ctx))
            except Exception as error:  # noqa: BLE001 -- any crash becomes LNT002
                if self._emit_lnt002:
                    crash = get_rule("LNT002")
                    findings.append(
                        crash.finding_at(
                            ctx, 1, 0,
                            f"rule {rule.code} crashed on this file "
                            f"({error!r}); its invariant went unchecked here",
                        ).as_dict()
                    )
                continue
            for finding in rule_findings:
                if ctx.is_suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding.as_dict())
        if self.enforce_allowlist and self._emit_lnt000:
            findings.extend(f.as_dict() for f in self._audit_suppressions(ctx))
        return {
            "findings": findings,
            "suppressed": suppressed,
            "suppressions": [
                [comment.line, list(comment.rules), comment.file_scoped]
                for comment in ctx.suppression_comments()
            ],
            "summary": build_summary(ctx),
        }

    def _audit_suppressions(self, ctx: FileContext) -> Iterator[Finding]:
        rule = get_rule("LNT000")
        for comment in ctx.suppression_comments():
            for code in comment.rules:
                if not allowlist_mod.is_allowlisted(ctx.path, code):
                    yield rule.finding_at(
                        ctx,
                        comment.line,
                        0,
                        f"suppression of {code} is not in the documented "
                        "allowlist (repro/lint/allowlist.py); add an entry "
                        "with a reason or fix the finding",
                    )

    # -- project phase ---------------------------------------------------

    def _merge_results(
        self, report: LintReport, results: Sequence[Dict[str, object]]
    ) -> None:
        tables: Dict[str, _SuppressionTable] = {}
        summaries: List[Dict[str, object]] = []
        for result in results:
            for payload in result["findings"]:  # type: ignore[union-attr]
                report.findings.append(_finding_from_dict(payload))
            report.suppressed += int(result["suppressed"])  # type: ignore[call-overload]
            summary = result.get("summary")
            if summary:
                summaries.append(summary)  # type: ignore[arg-type]
                tables[str(summary["path"])] = _SuppressionTable(  # type: ignore[index]
                    result["suppressions"]  # type: ignore[arg-type]
                )
        if not self.project_rules or not summaries:
            return
        project = Project(summaries)
        for rule in self.project_rules:
            try:
                rule_findings = list(rule.check_project(project, self.options))
            except Exception as error:  # noqa: BLE001 -- any crash becomes LNT002
                if self._emit_lnt002:
                    crash = get_rule("LNT002")
                    report.findings.append(
                        Finding(
                            rule=crash.code,
                            severity=crash.severity,
                            path="<project>",
                            line=1,
                            col=0,
                            message=(
                                f"project rule {rule.code} crashed "
                                f"({error!r}); its invariant went unchecked"
                            ),
                        )
                    )
                continue
            for finding in rule_findings:
                table = tables.get(finding.path)
                if table is not None and table.is_suppressed(
                    finding.rule, finding.line
                ):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)


def _resolve_fork_map():
    """``fork_map``, imported lazily: the import chain reaches numpy, and
    ``python -m repro.lint`` must keep working where numpy does not exist."""
    try:
        from repro.datasets.parallel import fork_map
    except Exception:  # noqa: BLE001 -- missing numpy, broken env: run serial
        return None
    return fork_map


class FileContextStub:
    """The minimal context surface :meth:`Rule.finding_at` needs.

    Used for files that fail to read or parse, where a real
    :class:`FileContext` cannot exist.
    """

    def __init__(self, path: Path) -> None:
        self.path = path


def lint_paths(
    paths: Iterable[_PathLike],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    enforce_allowlist: bool = True,
    cache: Optional[LintCache] = None,
    jobs: int = 1,
    options: Optional[ProjectOptions] = None,
) -> LintReport:
    """Lint files/directories with the given rule selection; see :class:`Linter`."""
    return Linter(
        select, ignore, enforce_allowlist, cache=cache, jobs=jobs, options=options
    ).lint_paths(paths)


def lint_source(
    source: str,
    path: _PathLike = "fixture.py",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    enforce_allowlist: bool = False,
    options: Optional[ProjectOptions] = None,
) -> LintReport:
    """Lint an in-memory snippet (fixture tests); allowlist off by default."""
    return Linter(
        select, ignore, enforce_allowlist, options=options
    ).lint_source(source, path)
