"""The lint driver: discover files, run rules, apply suppression policy.

Orchestration only -- rules live in :mod:`repro.lint.rules`, policy data
in :mod:`repro.lint.allowlist`.  The public entry points are
:func:`lint_paths` (what the CLI and CI call) and :func:`lint_source`
(what rule tests call with fixture snippets).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.lint import allowlist as allowlist_mod
from repro.lint.context import FileContext
from repro.lint.findings import Finding, LintReport, summarize_codes
from repro.lint.registry import Rule, all_rules, get_rule
from repro.obs.log import get_logger

# Importing the rules package populates the registry as a side effect.
import repro.lint.rules  # noqa: F401  (registration import)

__all__ = ["Linter", "lint_paths", "lint_source", "iter_python_files"]

_PathLike = Union[str, Path]

_LOG = get_logger("repro.lint")


def iter_python_files(paths: Iterable[_PathLike]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, sorted, each yielded once."""
    seen = set()
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            candidates: Sequence[Path] = sorted(root.rglob("*.py"))
        elif root.suffix == ".py":
            candidates = [root]
        else:
            raise FileNotFoundError(f"not a python file or directory: {root}")
        for path in candidates:
            if path not in seen:
                seen.add(path)
                yield path


class Linter:
    """A configured lint pass: rule selection plus suppression policy.

    Args:
        select / ignore: Rule-code filters (both optional).
        enforce_allowlist: When true (the default, and what CI uses),
            every noqa comment must be covered by
            :data:`repro.lint.allowlist.SUPPRESSION_ALLOWLIST` or the
            runner emits LNT000 at the comment.  Rule tests disable this
            to exercise fixtures with undocumented suppressions.
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        enforce_allowlist: bool = True,
    ) -> None:
        self.rules: List[Rule] = [r for r in all_rules(select, ignore) if not r.synthetic]
        self.enforce_allowlist = enforce_allowlist
        enabled = {r.code for r in all_rules(select, ignore)}
        self._emit_lnt000 = "LNT000" in enabled
        self._emit_lnt001 = "LNT001" in enabled

    def lint_source(self, source: str, path: _PathLike) -> LintReport:
        """Lint one in-memory source blob as if it lived at ``path``."""
        report = LintReport(files=1)
        self._lint_one(Path(path), source, report)
        return report

    def lint_paths(self, paths: Iterable[_PathLike]) -> LintReport:
        report = LintReport()
        for path in iter_python_files(paths):
            report.files += 1
            self._lint_one(path, path.read_text(encoding="utf-8"), report)
        report.findings.sort(key=Finding.sort_key)
        _LOG.info(
            "lint.done",
            files=report.files,
            findings=len(report.findings),
            suppressed=report.suppressed,
            codes=summarize_codes(report.findings),
        )
        return report

    def _lint_one(self, path: Path, source: str, report: LintReport) -> None:
        try:
            ctx = FileContext(path, source)
        except (SyntaxError, ValueError) as error:
            if self._emit_lnt001:
                rule = get_rule("LNT001")
                line = getattr(error, "lineno", None) or 1
                report.findings.append(
                    rule.finding_at(
                        FileContextStub(path), line, 0, f"file does not parse: {error}"
                    )
                )
            return
        for rule in self.rules:
            if not rule.applies(ctx):
                continue
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding.rule, finding.line):
                    report.suppressed += 1
                    _LOG.debug(
                        "lint.suppressed",
                        path=str(path),
                        rule=finding.rule,
                        line=finding.line,
                    )
                else:
                    report.findings.append(finding)
        if self.enforce_allowlist and self._emit_lnt000:
            report.findings.extend(self._audit_suppressions(ctx))

    def _audit_suppressions(self, ctx: FileContext) -> Iterator[Finding]:
        rule = get_rule("LNT000")
        for comment in ctx.suppression_comments():
            for code in comment.rules:
                if not allowlist_mod.is_allowlisted(ctx.path, code):
                    yield rule.finding_at(
                        ctx,
                        comment.line,
                        0,
                        f"suppression of {code} is not in the documented "
                        "allowlist (repro/lint/allowlist.py); add an entry "
                        "with a reason or fix the finding",
                    )


class FileContextStub:
    """The minimal context surface :meth:`Rule.finding_at` needs.

    Used for files that fail to parse, where a real :class:`FileContext`
    cannot exist.
    """

    def __init__(self, path: Path) -> None:
        self.path = path


def lint_paths(
    paths: Iterable[_PathLike],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    enforce_allowlist: bool = True,
) -> LintReport:
    """Lint files/directories with the given rule selection; see :class:`Linter`."""
    return Linter(select, ignore, enforce_allowlist).lint_paths(paths)


def lint_source(
    source: str,
    path: _PathLike = "fixture.py",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    enforce_allowlist: bool = False,
) -> LintReport:
    """Lint an in-memory snippet (fixture tests); allowlist off by default."""
    return Linter(select, ignore, enforce_allowlist).lint_source(source, path)
