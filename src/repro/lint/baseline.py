"""Baseline suppression files: adopt a codebase without fixing it first.

A baseline records every finding present at a point in time, keyed by a
fingerprint of ``(rule, path, message)`` -- deliberately *not* the line
number, so unrelated edits that shift code do not resurrect baselined
findings.  Applying a baseline:

- **suppresses** findings whose key is recorded (counted separately
  from noqa suppressions, as ``baselined``);
- reports entries that matched nothing as **stale** -- the debt was
  paid, so the entry must be deleted (regenerate with
  ``--write-baseline``) before it can quietly hide a regression.

A key only suppresses as many findings as were recorded under it: two
new copies of a baselined bug surface the second copy.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding, LintReport

__all__ = [
    "BASELINE_SCHEMA",
    "finding_key",
    "write_baseline",
    "load_baseline",
    "apply_baseline",
]

BASELINE_SCHEMA = 1


def finding_key(finding: Finding) -> str:
    digest = hashlib.blake2b(digest_size=8)
    digest.update(repr((finding.rule, finding.path, finding.message)).encode("utf-8"))
    return digest.hexdigest()


def write_baseline(path: Path, report: LintReport) -> int:
    """Record the report's findings; returns how many entries were written."""
    entries: Dict[str, Dict[str, object]] = {}
    for finding in sorted(report.findings, key=Finding.sort_key):
        key = finding_key(finding)
        entry = entries.setdefault(
            key,
            {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "count": 0,
            },
        )
        entry["count"] = int(entry["count"]) + 1
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    """The baseline's entries; raises ValueError on a malformed file."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"not a repro.lint baseline (schema {BASELINE_SCHEMA}): {path}")
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        raise ValueError(f"baseline has no entries table: {path}")
    return entries


def apply_baseline(
    findings: List[Finding], entries: Dict[str, Dict[str, object]]
) -> Tuple[List[Finding], int, List[Dict[str, object]]]:
    """Split findings against a baseline.

    Returns ``(kept, baselined_count, stale_entries)`` where stale
    entries are baseline records that matched no current finding.
    """
    budget = {key: int(entry.get("count", 0)) for key, entry in entries.items()}
    matched: set = set()
    kept: List[Finding] = []
    baselined = 0
    for finding in findings:
        key = finding_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched.add(key)
            baselined += 1
        else:
            kept.append(finding)
    stale = [
        dict(entries[key], key=key)
        for key in sorted(entries)
        if key not in matched
    ]
    return kept, baselined, stale
