"""The rule registry: base class, registration decorator, lookup.

Rules self-register at import time (``repro.lint.rules`` imports every
rule module), so the runner, the CLI's ``--list-rules``, and the docs
all see the same set without a hand-maintained table.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Type

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "get_rule",
    "all_rules",
    "project_rules",
    "rule_codes",
]

_REGISTRY: Dict[str, "Rule"] = {}


class Rule:
    """One invariant check over a single file's AST.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies` narrows the rule to the packages whose invariant it
    protects.  ``synthetic`` rules (parse errors, undocumented
    suppressions) are emitted by the runner itself and have a no-op
    :meth:`check` -- they are registered so they show up in
    ``--list-rules`` and can be selected/ignored like any other.

    ``version`` participates in the incremental runner's cache key: bump
    it whenever the rule's behavior changes so cached findings from the
    old behavior can never satisfy the new one.
    """

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    rationale: str = ""
    synthetic: bool = False
    version: int = 1
    project_scope: bool = False

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` for this rule at ``node``'s location."""
        return self.finding_at(
            ctx,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            message,
        )

    def finding_at(self, ctx: FileContext, line: int, col: int, message: str) -> Finding:
        return Finding(
            rule=self.code,
            severity=self.severity,
            path=ctx.path.as_posix(),
            line=line,
            col=col,
            message=message,
        )


class ProjectRule(Rule):
    """One invariant check over the assembled whole-program view.

    Project rules run after every file's summary is built (or loaded
    from cache): the runner hands them the
    :class:`repro.lint.analysis.project.Project` instead of one file at
    a time.  They implement :meth:`check_project`; the per-file
    :meth:`check` is a no-op so a project rule can sit in the same
    registry, ``--select``/``--ignore`` set, and docs as the rest.
    """

    project_scope = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project, options) -> Iterator[Finding]:
        """Yield findings over the whole program.

        ``project`` is a :class:`repro.lint.analysis.project.Project`;
        ``options`` is the runner's :class:`ProjectOptions` (snapshot
        path overrides and friends).
        """
        raise NotImplementedError

    def finding_dict(self, payload: Dict[str, object]) -> Finding:
        """A :class:`Finding` from an analysis-engine dict."""
        return Finding(
            rule=self.code,
            severity=self.severity,
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[call-overload]
            col=int(payload["col"]),  # type: ignore[call-overload]
            message=str(payload["message"]),
        )


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    instance = rule_class()
    if not instance.code:
        raise ValueError(f"{rule_class.__name__} has no rule code")
    if instance.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {instance.code}")
    _REGISTRY[instance.code] = instance
    return rule_class


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown rule {code!r}; known: {rule_codes()}") from None


def all_rules(
    select: Optional[Iterable[str]] = None, ignore: Optional[Iterable[str]] = None
) -> List[Rule]:
    """Registered rules in code order, filtered by select/ignore code sets."""
    selected = set(select) if select is not None else None
    ignored = set(ignore or ())
    for requested in (selected or set()) | ignored:
        get_rule(requested)  # validate early: a typo'd code is a usage error
    return [
        rule
        for code, rule in sorted(_REGISTRY.items())
        if (selected is None or code in selected) and code not in ignored
    ]


def project_rules(
    select: Optional[Iterable[str]] = None, ignore: Optional[Iterable[str]] = None
) -> List[Rule]:
    """The project-scoped subset of :func:`all_rules`, same filtering."""
    return [rule for rule in all_rules(select, ignore) if rule.project_scope]


def rule_codes() -> List[str]:
    return sorted(_REGISTRY)
