"""SARIF 2.1.0 rendering so findings land in GitHub code scanning.

One run, one tool (``repro.lint``), one result per finding.  Only the
schema subset code-scanning consumes is emitted: driver rules with
descriptions and default levels, results with ``ruleId``, ``level``,
message text, and a physical location (1-based line and column, per the
SARIF region rules -- our columns are 0-based internally).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.findings import Finding, LintReport, Severity
from repro.lint.registry import Rule

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "sarif_as_dict", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _driver_rules(rules: Sequence[Rule]) -> List[Dict[str, object]]:
    descriptors = []
    for rule in sorted(rules, key=lambda r: r.code):
        descriptors.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            }
        )
    return descriptors


def _result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def sarif_as_dict(report: LintReport, rules: Sequence[Rule]) -> Dict[str, object]:
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": (
                            "https://github.com/paper-repro/"
                            "server-to-server-view"
                        ),
                        "rules": _driver_rules(rules),
                    }
                },
                "results": [
                    _result(finding)
                    for finding in sorted(report.findings, key=Finding.sort_key)
                ],
            }
        ],
    }


def render_sarif(report: LintReport, rules: Sequence[Rule]) -> str:
    return json.dumps(sarif_as_dict(report, rules), indent=2) + "\n"
