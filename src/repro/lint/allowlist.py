"""The documented suppression allowlist.

A ``# repro: noqa[RULE]`` comment is only honored when a matching entry
here names the file, the rule, and the reason.  The linter raises
LNT000 for any noqa without an entry, so this module is the complete,
reviewable inventory of everywhere the repo opts out of an invariant.

Keep entries narrow (one file, one rule) and the reason specific enough
that a reviewer can decide whether it still holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Tuple

__all__ = ["Allowance", "SUPPRESSION_ALLOWLIST", "is_allowlisted"]


@dataclass(frozen=True)
class Allowance:
    """Permission for one file to suppress one rule, with its justification."""

    path: str
    """POSIX path suffix, e.g. ``repro/core/loss.py``."""

    rule: str
    reason: str


SUPPRESSION_ALLOWLIST: Tuple[Allowance, ...] = (
    Allowance(
        path="repro/core/ownership.py",
        rule="DET002",
        reason=(
            "resolve() extracts the sole element of a len()==1 set with "
            "next(iter(...)); a singleton has one iteration order, so the "
            "result cannot depend on hashing or insertion history."
        ),
    ),
    Allowance(
        path="repro/measurement/fastseed.py",
        rule="DET010",
        reason=(
            "RecycledGenerator.__init__ seeds its PCG64 with SeedSequence(0) "
            "only to construct the object; set(state, inc) overwrites the "
            "complete bit-generator state before any draw, so the literal "
            "never influences an output stream."
        ),
    ),
)


def is_allowlisted(path: Path, rule: str) -> bool:
    """Whether ``(path, rule)`` matches an allowlist entry.

    Suffix matching stops at path-component boundaries so an allowance
    for ``repro/core/ownership.py`` does not also cover, say,
    ``other_repro/core/ownership.py``.
    """
    posix = path.as_posix()
    return any(
        (posix == allowance.path or posix.endswith("/" + allowance.path))
        and allowance.rule == rule
        for allowance in SUPPRESSION_ALLOWLIST
    )
