"""CLI: ``python -m repro.lint [paths] [--format sarif] [--jobs N] ...``.

Exit codes (also under ``--help``): **0** when there are no error-level
findings -- warnings alone do *not* fail the run unless ``--strict`` is
given; **1** when there are errors, or warnings under ``--strict``;
**2** on usage errors (unknown rule code, missing path, bad baseline).
Findings go to stdout (human lines, one JSON document, or one SARIF
2.1.0 document); logs go to stderr via ``repro.obs`` so output stays
pipeable.

Incremental runs: per-file results are cached under content
fingerprints (default cache root: ``$REPRO_CACHE_DIR`` or
``~/.cache/repro``).  ``--no-cache`` disables, ``--refresh-cache``
recomputes and rewrites, ``--jobs N`` forks the per-file phase.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.analysis.project import Project
from repro.lint.analysis.schemas import (
    current_schemas,
    default_snapshot_path,
    write_snapshot,
)
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import LintCache, default_lint_cache_dir
from repro.lint.findings import render_human, render_json
from repro.lint.registry import all_rules
from repro.lint.runner import Linter, ProjectOptions
from repro.lint.sarif import render_sarif
from repro.obs import log


def _codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        kind = " (synthetic)" if rule.synthetic else ""
        kind = " (project)" if rule.project_scope else kind
        lines.append(f"{rule.code} [{rule.severity.value}] {rule.name}{kind}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def _explain(code: str) -> Optional[str]:
    """The RULES.md section for ``code``, verbatim."""
    rules_md = Path(__file__).resolve().parent / "RULES.md"
    try:
        text = rules_md.read_text(encoding="utf-8")
    except OSError:
        return None
    pattern = re.compile(
        rf"^##\s+{re.escape(code)}\b.*?(?=^##\s|\Z)", re.MULTILINE | re.DOTALL
    )
    match = pattern.search(text)
    return None if match is None else match.group(0).rstrip() + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Whole-program invariant linter: determinism taint, "
        "fork/thread lock order, schema compatibility, telemetry hygiene, "
        "cache-fingerprint coverage.",
        epilog="exit codes: 0 no errors (warnings pass without --strict); "
        "1 errors, or warnings with --strict; 2 usage error",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: ./src if present, else .)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--json", action="store_true", help="shorthand for --format json"
    )
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated rule codes to run exclusively"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the run (CI mode); errors fail regardless",
    )
    parser.add_argument(
        "--no-allowlist", action="store_true",
        help="accept noqa suppressions without a documented allowlist entry",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fork N workers for the per-file phase (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental per-file result cache",
    )
    parser.add_argument(
        "--refresh-cache", action="store_true",
        help="recompute every file and rewrite its cache entry",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", type=Path,
        help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path,
        help="suppress findings recorded in this baseline file; entries that "
        "no longer match are reported as stale",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", type=Path,
        help="record the current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--schema-snapshot", metavar="FILE", type=Path,
        help="SCH010 snapshot to diff against (default: the committed "
        "repro/lint/schema_snapshot.json)",
    )
    parser.add_argument(
        "--update-schema-snapshot", action="store_true",
        help="rewrite the SCH010 schema snapshot from the current tree and exit",
    )
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print the RULES.md entry for a rule code and exit",
    )
    parser.add_argument("--list-rules", action="store_true", help="describe every rule")
    args = parser.parse_args(argv)

    log.configure()

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.explain:
        code = args.explain.strip().upper()
        section = _explain(code)
        if section is None:
            print(f"error: no RULES.md entry for {code!r}", file=sys.stderr)
            return 2
        sys.stdout.write(section)
        return 0

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    options = ProjectOptions(
        schema_snapshot=args.schema_snapshot,
        bench_baseline=None,
    )
    cache: Optional[LintCache] = None
    if not args.no_cache:
        cache = LintCache(args.cache_dir or default_lint_cache_dir())
        if args.refresh_cache:
            cache.clear()

    try:
        linter = Linter(
            select=_codes(args.select),
            ignore=_codes(args.ignore),
            enforce_allowlist=not args.no_allowlist,
            cache=cache,
            jobs=args.jobs,
            options=options,
        )
        if args.update_schema_snapshot:
            return _update_snapshot(linter, paths, args.schema_snapshot)
        report = linter.lint_paths(paths)
    except (KeyError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        entries = write_baseline(args.write_baseline, report)
        print(
            f"wrote {entries} baseline entr{'y' if entries == 1 else 'ies'} "
            f"({len(report.findings)} finding(s)) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline is not None:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        report.findings, report.baselined, report.baseline_stale = apply_baseline(
            report.findings, entries
        )

    output_format = "json" if args.json else args.format
    if output_format == "json":
        sys.stdout.write(render_json(report))
    elif output_format == "sarif":
        sys.stdout.write(
            render_sarif(report, all_rules(_codes(args.select), _codes(args.ignore)))
        )
    else:
        sys.stdout.write(render_human(report))
    return report.exit_code(strict=args.strict)


def _update_snapshot(
    linter: Linter, paths: List[str], override: Optional[Path]
) -> int:
    """Rebuild the SCH010 snapshot from the current tree and write it."""
    report_linter = Linter(
        select=[],  # no rules: we only need the summaries
        enforce_allowlist=False,
        cache=linter.cache,
        jobs=linter.jobs,
    )
    # Reuse the per-file machinery to collect summaries without findings.
    from repro.lint.runner import iter_python_files

    files = []
    for path in iter_python_files(paths):
        try:
            files.append((path, path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError):
            continue
    summaries = []
    for path, source in files:
        result = report_linter._analyze_source(path, source)
        if result.get("summary"):
            summaries.append(result["summary"])
    tracked = current_schemas(Project(summaries))
    target = override if override is not None else default_snapshot_path()
    write_snapshot(target, tracked)
    print(
        f"wrote schema snapshot ({len(tracked)} tracked) to {target}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
