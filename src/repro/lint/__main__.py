"""CLI: ``python -m repro.lint [paths] [--json] [--select ...] ...``.

Exit codes: 0 clean (or warnings without ``--strict``), 1 findings,
2 usage error.  Findings go to stdout (human lines or one JSON
document); logs go to stderr via ``repro.obs`` so output stays pipeable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.findings import render_human, render_json
from repro.lint.registry import all_rules
from repro.lint.runner import Linter
from repro.obs import log


def _codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        kind = " (synthetic)" if rule.synthetic else ""
        lines.append(f"{rule.code} [{rule.severity.value}] {rule.name}{kind}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter: determinism, fork-safety, "
        "telemetry hygiene, cache-fingerprint coverage.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: ./src if present, else .)",
    )
    parser.add_argument("--json", action="store_true", help="emit one JSON document")
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated rule codes to run exclusively"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--strict", action="store_true", help="warnings also fail the run (CI mode)"
    )
    parser.add_argument(
        "--no-allowlist", action="store_true",
        help="accept noqa suppressions without a documented allowlist entry",
    )
    parser.add_argument("--list-rules", action="store_true", help="describe every rule")
    args = parser.parse_args(argv)

    log.configure()

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    try:
        linter = Linter(
            select=_codes(args.select),
            ignore=_codes(args.ignore),
            enforce_allowlist=not args.no_allowlist,
        )
        report = linter.lint_paths(paths)
    except (KeyError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    sys.stdout.write(render_json(report) if args.json else render_human(report))
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
