"""DET010: interprocedural seed taint.

DET001 catches a magic literal handed straight to
``np.random.default_rng``; DET010 catches the same bug after it hides --
a literal or wall-clock value flowing through any chain of calls,
default arguments, or dataclass fields into ``Generator``/
``SeedSequence``/bit-generator/``fastseed`` construction.  The analysis
lives in :mod:`repro.lint.analysis.taint`; this module is the thin rule
adapter that turns engine output into findings.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis.taint import analyze_seed_taint
from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProjectRule, register

__all__ = ["InterproceduralSeedTaint"]


@register
class InterproceduralSeedTaint(ProjectRule):
    code = "DET010"
    name = "interprocedural-seed-taint"
    severity = Severity.ERROR
    rationale = (
        "A literal or wall-clock seed laundered through helpers, defaults, "
        "or config fields still breaks (scenario, seed) reproducibility; "
        "taint is tracked across the project call graph so the hiding "
        "places are gone."
    )

    def check_project(self, project, options) -> Iterator[Finding]:
        for payload in analyze_seed_taint(project):
            yield self.finding_dict(payload)
