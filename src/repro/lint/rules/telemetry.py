"""OBS001: library code must emit telemetry through ``repro.obs``.

PR 2's telemetry contract: library modules never write to stdout/stderr
directly and never talk to stdlib ``logging`` themselves.  Everything
flows through :func:`repro.obs.log.get_logger`, so one ``configure()``
call controls level, human-vs-JSON rendering, and destination for the
whole pipeline -- and report output on stdout stays machine-parseable.

``print`` is still the right tool in exactly two places, and both are
excluded by scope rather than suppression: ``__main__.py`` CLI entry
points (their stdout *is* the product) and the ``repro.obs`` package
itself (it implements the logging layer on top of stdlib ``logging``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["DirectOutput"]


@register
class DirectOutput(Rule):
    code = "OBS001"
    name = "direct-output"
    severity = Severity.ERROR
    rationale = (
        "Library output must flow through repro.obs.log so one configure() "
        "call controls rendering and destination; print() and bare logging "
        "bypass level filtering, JSON mode, and structured fields."
    )

    def applies(self, ctx: FileContext) -> bool:
        if ctx.is_main_module:
            return False
        return not ctx.in_packages("obs")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id == "print":
                    yield self.finding(
                        ctx, node,
                        "print() in library code; use repro.obs.log.get_logger "
                        "(or return the text to the CLI layer)",
                    )
                    continue
                canonical = ctx.resolve_imported(node.func)
                if canonical in ("sys.stdout.write", "sys.stderr.write"):
                    yield self.finding(
                        ctx, node,
                        f"{canonical}() in library code; use repro.obs.log "
                        "instead of writing to process streams directly",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "logging" or alias.name.startswith("logging."):
                        yield self.finding(
                            ctx, node,
                            "bare stdlib logging import in library code; use "
                            "repro.obs.log.get_logger for structured, "
                            "configurable telemetry",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").split(".")[0] == "logging":
                    yield self.finding(
                        ctx, node,
                        "bare stdlib logging import in library code; use "
                        "repro.obs.log.get_logger for structured, "
                        "configurable telemetry",
                    )
