"""FRK001: module-level state mutated inside ``fork_map`` workers.

``repro.datasets.parallel.fork_map`` runs the mapped callable in forked
worker processes.  Workers receive a copy-on-write snapshot of module
state, so any mutation of a module-level list/dict/set -- or a ``global``
rebinding -- happens in the *worker's copy* and silently vanishes when
the worker exits.  Serial runs keep the mutation, parallel runs lose it:
exactly the serial/parallel divergence PR 1 eliminated.

The sanctioned channel for worker-side side effects is the metrics
registry: ``fork_map`` snapshots the worker's
:class:`repro.obs.metrics.MetricsRegistry` around each item and merges
the delta back into the parent.  Counter/gauge/histogram calls are
therefore invisible to this rule (they are reads plus registry method
calls, not mutations of *this module's* globals) -- the rule only fires
on direct mutation of names defined at module level in the same module.

The same copy-on-write trap applies to raw ``multiprocessing`` workers:
``repro.stream.source.ShardedSource`` forks ``Process(target=...)``
workers directly, so the rule also resolves callables passed as the
``target=`` keyword (or first positional argument) of ``Process(...)``
calls and holds them to the identical contract -- results travel through
the queue, side effects through registry snapshot deltas.

``threading.Thread(target=...)`` workers (PR 7's flight recorder and
expo server) get the *global-rebinding* half of the same check: threads
share memory, so container mutation is visible -- but ``global`` name
rebinding from a worker races every reader with no lock discipline the
linter can see, and the repo's contract is that telemetry threads only
touch state through the lock-guarded registry objects.  The rule
resolves ``Thread`` targets exactly like ``Process`` targets, including
``self._method`` references to a method defined in the same file.

Scope and limits: the rule resolves the callable passed to ``fork_map``,
``Process``, or ``Thread`` when it is a lambda, a ``def`` in the same
file (including closures), or a ``self``-attribute naming a method
defined in the same file, and inspects that one function body; it does
not chase calls into other functions.  Cross-function and cross-module
paths belong to FRK010's whole-program analysis.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Union

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["ForkUnsafeMutation"]

_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
        # numpy in-place mutators: a worker writing into a module-level
        # preallocated column buffer loses the writes the same way.
        "fill", "sort", "resize", "partition", "put",
    }
)

_Worker = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    names.add(name_node.id)
    return names


def _function_defs(tree: ast.Module) -> Dict[str, List[_Worker]]:
    defs: Dict[str, List[_Worker]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, []).append(node)
    return defs


@register
class ForkUnsafeMutation(Rule):
    code = "FRK001"
    name = "fork-unsafe-mutation"
    severity = Severity.ERROR
    version = 2  # v2: threading.Thread targets, incl. self._method resolution
    rationale = (
        "Mutations of module-level state inside fork_map or Process workers "
        "die with the worker process, so serial and parallel runs diverge; "
        "worker side effects must travel through MetricsRegistry snapshot "
        "deltas."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_names = _module_level_names(ctx.tree)
        if not module_names:
            return
        defs = _function_defs(ctx.tree)
        seen: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = None
            if isinstance(node.func, ast.Name):
                func_name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                func_name = node.func.attr
            worker = None
            if func_name == "fork_map" and node.args:
                worker = node.args[0]
            elif func_name in ("Process", "Thread"):
                # multiprocessing.Process / ctx.Process / threading.Thread:
                # the worker is the target= keyword (or, rarely for Process,
                # the first positional arg; Thread's first positional is
                # ``group``, so positional targets are keyword-only there).
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        worker = keyword.value
                        break
                if worker is None and func_name == "Process" and node.args:
                    worker = node.args[0]
            if worker is None:
                continue
            workers: List[_Worker] = []
            if isinstance(worker, ast.Lambda):
                workers = [worker]
            elif isinstance(worker, ast.Name):
                workers = defs.get(worker.id, [])
            elif (
                isinstance(worker, ast.Attribute)
                and isinstance(worker.value, ast.Name)
                and worker.value.id == "self"
            ):
                # self._loop style thread/process targets: resolve to the
                # same-file method of that name.
                workers = defs.get(worker.attr, [])
            for candidate in workers:
                if id(candidate) in seen:
                    continue
                seen.add(id(candidate))
                yield from self._check_worker(
                    ctx, candidate, module_names, func_name,
                    # Threads share memory, so container mutation is
                    # visible; only unsynchronized global rebinding races.
                    mutators=(func_name != "Thread"),
                )

    def _check_worker(
        self,
        ctx: FileContext,
        worker: _Worker,
        module_names: Set[str],
        via: str,
        mutators: bool = True,
    ) -> Iterator[Finding]:
        for node in ast.walk(worker):
            if isinstance(node, ast.Global):
                shared = sorted(set(node.names) & module_names)
                if shared:
                    what = (
                        "races every reader of that name with no visible "
                        "lock discipline"
                        if via == "Thread"
                        else "never reaches the parent process"
                    )
                    yield self.finding(
                        ctx, node,
                        f"{via} worker declares global {', '.join(shared)}; "
                        f"rebinding module state in a worker {what}",
                    )
            elif not mutators:
                continue
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if (
                    node.func.attr in _MUTATORS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in module_names
                ):
                    yield self._mutation_finding(ctx, node, node.func.value.id, via)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if (
                        base is not target  # plain `x = ...` rebinding is local
                        and isinstance(base, ast.Name)
                        and base.id in module_names
                    ):
                        yield self._mutation_finding(ctx, node, base.id, via)

    def _mutation_finding(
        self, ctx: FileContext, node: ast.AST, name: str, via: str
    ) -> Finding:
        return self.finding(
            ctx, node,
            f"{via} worker mutates module-level {name!r}; the change is "
            "lost when the worker exits -- accumulate through "
            "MetricsRegistry snapshot deltas or return the data as the "
            "item's result",
        )
