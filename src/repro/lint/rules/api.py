"""API001: public functions in ``core``/``datasets`` carry full annotations.

These two packages are the analysis surface other layers (harness,
examples, benchmarks, downstream notebooks) build on; their signatures
are contracts.  A public function there must annotate every parameter
and its return type.  Private helpers (leading underscore), dunders, and
functions nested inside other functions are implementation detail and
exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["PublicApiAnnotations"]

_Func = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _public_functions(tree: ast.Module) -> Iterator[_Func]:
    """Module-level functions and methods of public classes, public names only."""
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef):
            if not node.name.startswith("_"):
                stack.extend(node.body)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node


@register
class PublicApiAnnotations(Rule):
    code = "API001"
    name = "public-api-annotations"
    severity = Severity.WARNING
    rationale = (
        "core/ and datasets/ signatures are the contract the harness and "
        "downstream analyses build on; unannotated parameters make config "
        "drift and unit mix-ups (hours vs seconds, ms vs s) invisible."
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages("core", "datasets")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for function in _public_functions(ctx.tree):
            missing: List[str] = []
            args = function.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.annotation is None and arg.arg not in ("self", "cls"):
                    missing.append(arg.arg)
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if missing:
                yield self.finding(
                    ctx, function,
                    f"public function {function.name}() is missing parameter "
                    f"annotations: {', '.join(missing)}",
                )
            if function.returns is None:
                yield self.finding(
                    ctx, function,
                    f"public function {function.name}() is missing a return "
                    "annotation",
                )
