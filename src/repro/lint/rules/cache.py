"""CCH001: every knob on a config dataclass must reach the cache fingerprint.

The artifact cache keys entries by
:func:`repro.harness.engine.config_fingerprint`, which canonicalizes a
config by walking ``dataclasses.fields(...)``.  Anything on a
``*Config`` class that is *not* a dataclass field is invisible to the
fingerprint: a bare class attribute (no annotation), a ``ClassVar``, or
an instance attribute invented in ``__post_init__``/methods.  Change
such a knob and the fingerprint stays put -- the cache serves a stale
artifact built under the old value, which is the worst failure mode a
reproduction can have (wrong results that look cached-fast and healthy).

Leading-underscore attributes are exempt: they are derived/private state
by convention, not knobs.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Union

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["ConfigFieldsOutsideFingerprint"]


def _is_dataclass_decorator(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


def _is_classvar(annotation: ast.AST) -> bool:
    target = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    if isinstance(target, ast.Name):
        return target.id == "ClassVar"
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return False


@register
class ConfigFieldsOutsideFingerprint(Rule):
    code = "CCH001"
    name = "config-outside-fingerprint"
    severity = Severity.ERROR
    rationale = (
        "config_fingerprint() walks dataclasses.fields(); a knob stored as a "
        "bare class attribute, ClassVar, or ad-hoc instance attribute is "
        "invisible to it, so changing the knob serves stale cached artifacts."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Config"):
                continue
            if not any(_is_dataclass_decorator(dec) for dec in node.decorator_list):
                continue
            yield from self._check_config_class(ctx, node)

    def _check_config_class(self, ctx: FileContext, node: ast.ClassDef) -> Iterator[Finding]:
        fields: Set[str] = set()
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
                if not _is_classvar(statement.annotation):
                    fields.add(statement.target.id)
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and not target.id.startswith("_"):
                        yield self.finding(
                            ctx, statement,
                            f"{node.name}.{target.id} is a bare class attribute, "
                            "not a dataclass field; it never reaches the cache "
                            "fingerprint (annotate it to make it a field)",
                        )
            elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
                if _is_classvar(statement.annotation) and not statement.target.id.startswith("_"):
                    yield self.finding(
                        ctx, statement,
                        f"{node.name}.{statement.target.id} is a ClassVar; "
                        "dataclasses.fields() skips it, so the cache "
                        "fingerprint never sees it",
                    )
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_method(ctx, node, statement, fields)

    def _check_method(
        self,
        ctx: FileContext,
        class_node: ast.ClassDef,
        method: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        fields: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and not target.attr.startswith("_")
                    and target.attr not in fields
                ):
                    yield self.finding(
                        ctx, node,
                        f"{class_node.name}.{method.name} sets self.{target.attr}, "
                        "which is not a declared dataclass field; the cache "
                        "fingerprint cannot see it (declare it as an annotated "
                        "field, or prefix it with _ if it is derived state)",
                    )
            # Frozen dataclasses smuggle attributes past __setattr__ with
            # object.__setattr__(self, "name", ...) -- same invisibility.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__setattr__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "object"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
                and not node.args[1].value.startswith("_")
                and node.args[1].value not in fields
            ):
                yield self.finding(
                    ctx, node,
                    f"{class_node.name}.{method.name} sets "
                    f"self.{node.args[1].value} via object.__setattr__, "
                    "which is not a declared dataclass field; the cache "
                    "fingerprint cannot see it (declare it as an annotated "
                    "field, or prefix it with _ if it is derived state)",
                )
