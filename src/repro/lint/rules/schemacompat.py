"""SCH010: serialized-schema compatibility against the committed snapshot.

Checkpoints, live-telemetry samples, and the committed bench baseline
outlive the code that wrote them.  SCH010 statically extracts their
current field sets and version constants and diffs them against
``repro/lint/schema_snapshot.json``: fields changed without a version
bump is the error that corrupts old readers; a bumped version with a
stale snapshot is an unreviewed change.  ``python -m repro.lint
--update-schema-snapshot`` refreshes the snapshot (commit it with the
schema change).  The analysis lives in
:mod:`repro.lint.analysis.schemas`.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis.schemas import analyze_schemas
from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProjectRule, register

__all__ = ["SchemaCompat"]


@register
class SchemaCompat(ProjectRule):
    code = "SCH010"
    name = "schema-compat"
    severity = Severity.ERROR
    rationale = (
        "Checkpoint payloads, live samples, and the bench baseline are "
        "read by code older than the writer; changing their fields without "
        "bumping the version constant (and refreshing the committed "
        "snapshot) silently corrupts every old reader."
    )

    def check_project(self, project, options) -> Iterator[Finding]:
        for payload in analyze_schemas(
            project,
            snapshot_path=getattr(options, "schema_snapshot", None),
            bench_path=getattr(options, "bench_baseline", None),
        ):
            yield self.finding_dict(payload)
