"""LNT000/LNT001/LNT002: findings the runner emits about the lint pass itself.

These are *synthetic* rules: they have no AST visitor.  The runner
raises LNT001 when a file cannot be analyzed at all -- it does not
parse, does not decode as UTF-8, or cannot be read -- because a file the
linter cannot see is a file whose invariants are unchecked; one
structured finding per broken file, and the run keeps going.  LNT000
fires when a ``# repro: noqa[...]`` comment is not covered by the
documented allowlist in :mod:`repro.lint.allowlist` -- suppressions are
part of the reviewed surface, not an escape hatch.  LNT002 fires when a
rule itself crashes on a file: the crash is reported as a finding for
that (file, rule) pair and every other rule still runs.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["UndocumentedSuppression", "ParseFailure", "RuleCrash"]


@register
class UndocumentedSuppression(Rule):
    code = "LNT000"
    name = "undocumented-suppression"
    severity = Severity.ERROR
    synthetic = True
    rationale = (
        "Every noqa comment must be backed by an entry (path, rule, reason) "
        "in repro.lint.allowlist so suppressions are reviewed and searchable."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


@register
class ParseFailure(Rule):
    code = "LNT001"
    name = "parse-failure"
    severity = Severity.ERROR
    synthetic = True
    rationale = (
        "A file that cannot be parsed, decoded, or read is a file whose "
        "invariants go unchecked; it is one structured finding, never an "
        "aborted run."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


@register
class RuleCrash(Rule):
    code = "LNT002"
    name = "rule-crash"
    severity = Severity.ERROR
    synthetic = True
    rationale = (
        "A rule that crashes on a file silently un-checks that invariant; "
        "the crash surfaces as a finding and the remaining rules still run."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
