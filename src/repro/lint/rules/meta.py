"""LNT000/LNT001: findings the runner emits about the lint pass itself.

These are *synthetic* rules: they have no AST visitor.  The runner
raises LNT001 when a file does not parse (a file the linter cannot see
is a file whose invariants are unchecked) and LNT000 when a
``# repro: noqa[...]`` comment is not covered by the documented
allowlist in :mod:`repro.lint.allowlist` -- suppressions are part of the
reviewed surface, not an escape hatch.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["UndocumentedSuppression", "ParseFailure"]


@register
class UndocumentedSuppression(Rule):
    code = "LNT000"
    name = "undocumented-suppression"
    severity = Severity.ERROR
    synthetic = True
    rationale = (
        "Every noqa comment must be backed by an entry (path, rule, reason) "
        "in repro.lint.allowlist so suppressions are reviewed and searchable."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


@register
class ParseFailure(Rule):
    code = "LNT001"
    name = "parse-failure"
    severity = Severity.ERROR
    synthetic = True
    rationale = "A file that does not parse is a file whose invariants go unchecked."

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
