"""DET001/DET002: the pipeline's determinism invariants.

The reproduction's headline guarantee is bit-identical output for a
given (scenario, seed) -- serial or parallel, cached or rebuilt.  Two
classes of code break that silently:

- **DET001** -- randomness that does not flow from an explicit seed:
  zero-argument ``np.random.default_rng()``, the legacy global numpy
  RNG (``np.random.uniform`` and friends share hidden process state),
  the stdlib ``random`` module, and integer-literal seeds scattered at
  call sites instead of the named constants in :mod:`repro.seeds`
  (literals drift apart between call sites; the constants module is the
  single whitelisted home for them).
- **DET002** -- wall-clock reads and set iteration feeding ordered
  output inside the result-producing packages (``core``, ``datasets``,
  ``routing``, ``topology``).  ``time.time()`` makes output depend on
  when a run happened; iterating a set into a list/tuple/loop makes it
  depend on insertion order and hash seeding.  Telemetry clocks
  (``time.monotonic``/``perf_counter``) are deliberately allowed: they
  time stages, they never feed results.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register

__all__ = ["UnseededRandomness", "WallClockAndSetOrder"]

# Modules allowed to spell RNG seeds as integer literals: the named-seed
# constants module is their single source of truth (everything else must
# import from it or derive seeds from config/stream hashing).
SEED_LITERAL_WHITELIST = ("repro.seeds",)

_NUMPY_LEGACY_GLOBALS = frozenset(
    {
        "random", "rand", "randn", "randint", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "uniform",
        "normal", "standard_normal", "poisson", "exponential", "lognormal",
        "binomial", "beta", "gamma", "geometric", "pareto", "zipf",
    }
)

_STDLIB_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
        "expovariate", "betavariate", "gammavariate", "paretovariate",
        "weibullvariate", "triangular", "vonmisesvariate", "seed",
        "getrandbits", "randbytes",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "time.ctime", "time.localtime",
        "time.gmtime", "time.strftime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)


@register
class UnseededRandomness(Rule):
    code = "DET001"
    name = "unseeded-randomness"
    severity = Severity.ERROR
    rationale = (
        "Every random draw must flow from an explicit seed so a (scenario, "
        "seed) pair fully determines the output; hidden global RNG state and "
        "magic literal seeds both break that."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        literals_allowed = ctx.module in SEED_LITERAL_WHITELIST
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = ctx.resolve_imported(node.func)
            if canonical is None:
                continue
            yield from self._check_call(ctx, node, canonical, literals_allowed)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, canonical: str, literals_allowed: bool
    ) -> Iterator[Finding]:
        if canonical == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "np.random.default_rng() without a seed draws OS entropy; "
                    "pass a seed (see repro.seeds) or thread an rng through",
                )
            elif not literals_allowed:
                seed = node.args[0] if node.args else next(
                    (kw.value for kw in node.keywords if kw.arg == "seed"), None
                )
                if (
                    isinstance(seed, ast.Constant)
                    and isinstance(seed.value, int)
                    and not isinstance(seed.value, bool)
                ):
                    yield self.finding(
                        ctx, node,
                        f"magic literal seed {seed.value}; use a named "
                        "constant from repro.seeds so default streams stay disjoint",
                    )
            return
        if canonical == "numpy.random.SeedSequence" and not node.args and not node.keywords:
            yield self.finding(
                ctx, node, "np.random.SeedSequence() without entropy is nondeterministic"
            )
            return
        if canonical.startswith("numpy.random."):
            tail = canonical.rsplit(".", 1)[1]
            if tail in _NUMPY_LEGACY_GLOBALS:
                yield self.finding(
                    ctx, node,
                    f"legacy global numpy RNG np.random.{tail}() shares hidden "
                    "process-wide state; use a seeded np.random.Generator",
                )
            return
        if canonical == "random.Random":
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node, "random.Random() without a seed is nondeterministic"
                )
            return
        if canonical.startswith("random."):
            tail = canonical.rsplit(".", 1)[1]
            if tail in _STDLIB_RANDOM_FUNCS:
                yield self.finding(
                    ctx, node,
                    f"stdlib random.{tail}() uses hidden global state; use a "
                    "seeded np.random.Generator from the platform's rng streams",
                )


# ---------------------------------------------------------------------------
# DET002: wall clocks and set-order leakage
# ---------------------------------------------------------------------------


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``scope`` excluding nested function/class bodies."""
    body = scope.body if isinstance(scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)) else []
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


_SET_METHODS = frozenset({"intersection", "union", "difference", "symmetric_difference"})
_SET_BINOPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)


class _SetFlow:
    """Conservative per-scope tracking of names that hold sets.

    A name counts as set-typed only when *every* binding of it in the
    scope is a recognizably-set expression; names rebound by loops,
    ``with`` targets, or non-set values are dropped.  This trades recall
    for a near-zero false-positive rate -- the rule exists to catch the
    obvious ``for x in some_set: out.append(...)`` leak, not to be a type
    checker.
    """

    def __init__(self, scope: ast.AST) -> None:
        self.set_names: Set[str] = set()
        bindings: Dict[str, List[ast.AST]] = {}
        disqualified: Set[str] = set()
        for node in _scope_statements(scope):
            if isinstance(node, ast.Assign):
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                    bindings.setdefault(node.targets[0].id, []).append(node.value)
                else:
                    # Tuple/list unpacking and chained targets rebind names
                    # to values we cannot see through; drop them.
                    for target in node.targets:
                        for name_node in ast.walk(target):
                            if isinstance(name_node, ast.Name):
                                disqualified.add(name_node.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.value is not None:
                    bindings.setdefault(node.target.id, []).append(node.value)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                # |= / &= etc. keep a set a set; anything else disqualifies.
                if not isinstance(node.op, _SET_BINOPS):
                    disqualified.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        disqualified.add(name_node.id)
            elif isinstance(node, (ast.withitem,)) and node.optional_vars is not None:
                for name_node in ast.walk(node.optional_vars):
                    if isinstance(name_node, ast.Name):
                        disqualified.add(name_node.id)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                disqualified.add(arg.arg)
        # Fixpoint: `a = set(); b = a | other` needs a second look at b.
        while True:
            grown = {
                name
                for name, values in bindings.items()
                if name not in disqualified
                and all(self.is_set_expr(value) for value in values)
            }
            if grown == self.set_names:
                break
            self.set_names = grown

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self.is_set_expr(node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) and self.is_set_expr(node.orelse)
        return False


@register
class WallClockAndSetOrder(Rule):
    code = "DET002"
    name = "wall-clock-and-set-order"
    severity = Severity.ERROR
    rationale = (
        "Result-producing packages must be pure functions of (config, seed): "
        "wall-clock reads tie output to run time, and iterating sets into "
        "ordered output ties it to insertion order and hash seeding."
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages(
            "core", "datasets", "measurement", "routing", "topology", "stream",
            "service", "faults",
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                canonical = ctx.resolve_imported(node.func)
                if canonical in _WALL_CLOCK:
                    yield self.finding(
                        ctx, node,
                        f"wall-clock read {canonical}() in a result-producing "
                        "package; results must depend only on (config, seed)",
                    )
        for scope in _scopes(ctx.tree):
            yield from self._check_set_order(ctx, scope)

    def _check_set_order(self, ctx: FileContext, scope: ast.AST) -> Iterator[Finding]:
        flow = _SetFlow(scope)
        for node in _scope_statements(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)) and flow.is_set_expr(node.iter):
                yield self._order_finding(ctx, node.iter, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if flow.is_set_expr(generator.iter):
                        yield self._order_finding(ctx, generator.iter, "comprehension")
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple", "enumerate", "iter")
                    and node.args
                    and flow.is_set_expr(node.args[0])
                ):
                    yield self._order_finding(ctx, node, f"{node.func.id}()")
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and flow.is_set_expr(node.args[0])
                ):
                    yield self._order_finding(ctx, node, "str.join()")

    def _order_finding(self, ctx: FileContext, node: ast.AST, consumer: str) -> Finding:
        return self.finding(
            ctx, node,
            f"set iterated into ordered output via {consumer}; wrap the set "
            "in sorted(...) so the order is a function of the data",
        )
