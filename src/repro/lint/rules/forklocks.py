"""FRK010: fork/thread lock-order analysis.

FRK001 protects worker bodies from mutating copy-on-write state; FRK010
protects the *spawn sites*: no fork (``os.fork``/``fork_map``/
``ShardedSource``/``Process``/``Pool``) may happen -- directly or down
the call chain -- while a shared lock is held, and no thread whose
target takes shared locks may be started in a forking program unless
those acquisitions route through :func:`repro.obs.live.fork_guard`.
The analysis lives in :mod:`repro.lint.analysis.locks`.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.analysis.locks import analyze_fork_locks
from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProjectRule, register

__all__ = ["ForkLockOrder"]


@register
class ForkLockOrder(ProjectRule):
    code = "FRK010"
    name = "fork-lock-order"
    severity = Severity.ERROR
    rationale = (
        "A fork that happens while a shared lock is held -- or a thread "
        "that takes shared locks outside obs.live.fork_guard in a forking "
        "program -- hands children locks that no thread of theirs will "
        "release; hangs like that killed long telemetry runs before the "
        "fork guard existed."
    )

    def check_project(self, project, options) -> Iterator[Finding]:
        for payload in analyze_fork_locks(project):
            yield self.finding_dict(payload)
