"""Rule modules; importing this package populates the registry."""

from repro.lint.rules import (
    api,
    cache,
    determinism,
    forklocks,
    forksafety,
    interdet,
    meta,
    schemacompat,
    telemetry,
)

__all__ = [
    "api",
    "cache",
    "determinism",
    "forklocks",
    "forksafety",
    "interdet",
    "meta",
    "schemacompat",
    "telemetry",
]
