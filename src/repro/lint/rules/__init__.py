"""Rule modules; importing this package populates the registry."""

from repro.lint.rules import api, cache, determinism, forksafety, meta, telemetry

__all__ = ["api", "cache", "determinism", "forksafety", "meta", "telemetry"]
