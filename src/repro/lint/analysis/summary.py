"""Per-module program summaries: the cacheable half of whole-program lint.

:func:`build_summary` distills one :class:`repro.lint.context.FileContext`
into a plain dict of facts the project layer composes later:

- every function/method with its parameters, defaults, resolved
  annotations, local variable bindings, and one record per call --
  carrying the *taint atoms* of each argument (int literals, wall-clock
  reads, dataclass-attribute reads, parameter mentions) plus the lock
  and fork-guard context the call sits in;
- every class with its methods, ``self.*`` attribute types (inferred
  from annotated parameters and constructor calls), declared lock
  attributes, and dataclass fields;
- module-level facts: int constants, module-level locks, thread starts,
  fork actions, and the shape of every dict literal serialized with a
  ``"schema"`` key.

Everything is JSON/pickle-serializable and depends only on the file's
source bytes, so the incremental runner caches summaries under a content
fingerprint and the project phase runs from cache without re-parsing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.lint.context import FileContext, dotted_parts

__all__ = ["ANALYSIS_VERSION", "build_summary"]

ANALYSIS_VERSION = 1
"""Bump when the summary shape or engine semantics change (cache key part)."""

# Wall-clock reads: mirror DET002's list -- values derived from these are
# taint sources for DET010 (a wall-clock seed is as magic as a literal).
WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "time.ctime", "time.localtime",
        "time.gmtime", "time.strftime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

_LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition",
     "multiprocessing.Lock", "multiprocessing.RLock"}
)

# The one lock that is *supposed* to be held around telemetry reads so
# forks cannot inherit it mid-flight (see repro.obs.live.fork_guard).
GUARD_CALLABLE = "repro.obs.live.fork_guard"
GUARD_LOCK = "repro.obs.live._fork_lock"
GUARD_TOKEN = "guard"

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _annotation_name(node: Optional[ast.AST], ctx: FileContext) -> Optional[str]:
    """Resolve an annotation to a dotted class name, through Optional/Union."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if base_name in ("Optional", "Union"):
            inner = node.slice
            candidates = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            for candidate in candidates:
                if isinstance(candidate, ast.Constant) and candidate.value is None:
                    continue
                resolved = _annotation_name(candidate, ctx)
                if resolved is not None:
                    return resolved
        return None
    resolved = ctx.resolve_imported(node)
    if resolved is not None:
        return resolved
    # A bare local name: a class defined in this module.
    if isinstance(node, ast.Name):
        return f"{ctx.module}.{node.id}"
    return None


def _callee_descriptor(
    func: ast.AST, ctx: FileContext, local_defs: Dict[str, str]
) -> Optional[Dict[str, object]]:
    """How a call target will be resolved: now (dotted) or at project time.

    Returns ``{"dotted": name}`` for import- or locally-resolved targets,
    ``{"recv_var"/"recv_self"/"recv_call": ..., "attr": m}`` for method
    calls needing type inference, ``None`` for unresolvable targets.
    """
    resolved = ctx.resolve_imported(func)
    if resolved is not None:
        return {"dotted": resolved}
    if isinstance(func, ast.Name):
        if func.id in local_defs:
            return {"dotted": local_defs[func.id]}
        return {"recv_var": func.id, "attr": None}
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                return {"recv_self": True, "attr": func.attr}
            return {"recv_var": base.id, "attr": func.attr}
        if isinstance(base, ast.Attribute):
            chain = dotted_parts(base)
            if chain and chain[0] == "self" and len(chain) == 2:
                return {"recv_self_attr": chain[1], "attr": func.attr}
            return None
        if isinstance(base, ast.Call):
            inner = _callee_descriptor(base.func, ctx, local_defs)
            if inner is not None and "dotted" in inner:
                return {"recv_call": inner["dotted"], "attr": func.attr}
    return None


def _binding_candidates(
    value: ast.AST, ctx: FileContext, local_defs: Dict[str, str]
) -> List[Dict[str, object]]:
    """Type-inference candidates for the RHS of an assignment."""
    if isinstance(value, ast.Call):
        desc = _callee_descriptor(value.func, ctx, local_defs)
        if desc is not None and "dotted" in desc:
            return [{"call": desc["dotted"]}]
        return []
    if isinstance(value, ast.Name):
        return [{"var": value.id}]
    if isinstance(value, (ast.BoolOp, ast.IfExp)):
        parts = value.values if isinstance(value, ast.BoolOp) else [value.body, value.orelse]
        out: List[Dict[str, object]] = []
        for part in parts:
            out.extend(_binding_candidates(part, ctx, local_defs))
        return out
    return []


def _int_literal(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _int_literal(node.operand)
        return None if inner is None else -inner
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``self.config.seed`` -> ["self", "config", "seed"], len >= 2 only."""
    chain = dotted_parts(node)
    if chain is not None and len(chain) >= 2:
        return chain
    return None


class _FunctionExtractor:
    """One pass over a function body collecting calls, atoms, and events."""

    def __init__(
        self,
        ctx: FileContext,
        function: _FuncDef,
        qualname: str,
        class_name: Optional[str],
        local_defs: Dict[str, str],
        module_locks: Sequence[str],
        class_lock_attrs: Sequence[str],
    ) -> None:
        self.ctx = ctx
        self.function = function
        self.qualname = qualname
        self.class_name = class_name
        self.local_defs = local_defs
        self.module_locks = set(module_locks)
        self.class_lock_attrs = set(class_lock_attrs)
        self.calls: List[Dict[str, object]] = []
        self.thread_starts: List[Dict[str, object]] = []
        self.schema_dicts: List[Dict[str, object]] = []
        self.local_lock_names: set = set()
        self.params = self._params()
        self.derivation: Dict[str, List[Tuple]] = {}
        self.var_bindings: Dict[str, Dict[str, object]] = {}

    # -- signature -------------------------------------------------------

    def _params(self) -> List[str]:
        args = self.function.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        return [n for n in names if n not in ("self", "cls")]

    def signature(self) -> Dict[str, object]:
        args = self.function.args
        ordered = args.posonlyargs + args.args
        skip = 1 if ordered and ordered[0].arg in ("self", "cls") else 0
        defaults: Dict[str, Dict[str, object]] = {}
        positional = ordered[skip:]
        for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            defaults[arg.arg] = self._default_info(default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                defaults[arg.arg] = self._default_info(default)
        annotations = {}
        for arg in ordered[skip:] + args.kwonlyargs:
            resolved = _annotation_name(arg.annotation, self.ctx)
            if resolved is not None:
                annotations[arg.arg] = resolved
        returns = _annotation_name(self.function.returns, self.ctx)
        return {
            "params": self.params,
            "positional": [a.arg for a in positional],
            "defaults": defaults,
            "annotations": annotations,
            "returns": returns,
        }

    def _default_info(self, node: ast.AST) -> Dict[str, object]:
        literal = _int_literal(node)
        return {
            "line": getattr(node, "lineno", 0),
            "col": getattr(node, "col_offset", 0),
            "int_literal": literal,
        }

    # -- taint atoms -----------------------------------------------------

    def atoms(self, expr: ast.AST) -> List[Tuple]:
        literal = _int_literal(expr)
        if literal is not None:
            return [("lit", literal, expr.lineno, expr.col_offset)]
        if isinstance(expr, ast.Call):
            canonical = self.ctx.resolve_imported(expr.func)
            if canonical in WALL_CLOCK:
                return [("wc", canonical, expr.lineno, expr.col_offset)]
        chain = _attr_chain(expr)
        if chain is not None and self.ctx.resolve_imported(expr) is None:
            return [("attr", tuple(chain), expr.lineno, expr.col_offset)]
        found: List[Tuple] = []
        seen = set()
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                canonical = self.ctx.resolve_imported(node.func)
                if canonical in WALL_CLOCK:
                    atom = ("wc", canonical, node.lineno, node.col_offset)
                    if atom not in found:
                        found.append(atom)
            if isinstance(node, ast.Attribute):
                nested = _attr_chain(node)
                if nested is not None and self.ctx.resolve_imported(node) is None:
                    atom = ("attr", tuple(nested), node.lineno, node.col_offset)
                    if atom not in found:
                        found.append(atom)
            if isinstance(node, ast.Name) and node.id not in seen:
                seen.add(node.id)
                if node.id in self.params:
                    found.append(("param", node.id))
                for atom in self.derivation.get(node.id, ()):
                    if atom not in found:
                        found.append(atom)
        return found

    def _settle_derivation(self, body: Sequence[ast.AST]) -> None:
        """Fixpoint over simple assignments: var -> taint atoms of its RHS."""
        assigns: List[Tuple[List[str], ast.AST]] = []
        for node in self._own_nodes(body):
            if isinstance(node, ast.Assign):
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if names:
                    assigns.append((names, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assigns.append(([node.target.id], node.value))
        for _ in range(4):  # chains settle in a few rounds; cap for safety
            changed = False
            for names, value in assigns:
                atoms = self.atoms(value)
                for name in names:
                    existing = self.derivation.setdefault(name, [])
                    for atom in atoms:
                        if atom not in existing:
                            existing.append(atom)
                            changed = True
            if not changed:
                break

    def _collect_bindings(self, body: Sequence[ast.AST]) -> None:
        args = self.function.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            resolved = _annotation_name(arg.annotation, self.ctx)
            if resolved is not None:
                self.var_bindings[arg.arg] = {"class": resolved}
        for node in self._own_nodes(body):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
                resolved = _annotation_name(node.annotation, self.ctx)
                if resolved is not None and isinstance(node.target, ast.Name):
                    self.var_bindings[node.target.id] = {"class": resolved}
                    continue
            if value is None:
                continue
            candidates = _binding_candidates(value, self.ctx, self.local_defs)
            for target in targets:
                if isinstance(target, ast.Name) and candidates:
                    self.var_bindings.setdefault(target.id, candidates[0])
            # Local lock variables: lock = threading.Lock()
            if isinstance(value, ast.Call):
                canonical = self.ctx.resolve_imported(value.func)
                if canonical in _LOCK_CONSTRUCTORS:
                    for target in targets:
                        if isinstance(target, ast.Name):
                            self.local_lock_names.add(target.id)

    def _own_nodes(self, body: Sequence[ast.AST]) -> Iterator[ast.AST]:
        """Nodes of this function excluding nested function/class bodies."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- lock tokens -----------------------------------------------------

    def _lock_token(self, expr: ast.AST) -> Optional[str]:
        """Classify a with-item / acquire receiver as a lock, if it is one."""
        if isinstance(expr, ast.Call):
            canonical = self.ctx.resolve_imported(expr.func)
            if canonical is None and isinstance(expr.func, ast.Name):
                # The guard used from its own defining module is a local
                # name, not an import.
                canonical = f"{self.ctx.module}.{expr.func.id}"
            if canonical == GUARD_CALLABLE:
                return GUARD_TOKEN
            return None
        canonical = self.ctx.resolve_imported(expr)
        if canonical == GUARD_LOCK:
            return GUARD_TOKEN
        if isinstance(expr, ast.Name):
            if f"{self.ctx.module}.{expr.id}" == GUARD_LOCK:
                return GUARD_TOKEN
            if expr.id in self.module_locks:
                return f"{self.ctx.module}.{expr.id}"
            if expr.id in self.local_lock_names:
                return f"local:{expr.id}"
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and expr.attr in self.class_lock_attrs:
                return f"{self.ctx.module}.{self.class_name}.{expr.attr}"
        return None

    # -- the walk --------------------------------------------------------

    def run(self) -> Dict[str, object]:
        body = self.function.body
        self._collect_bindings(body)
        self._settle_derivation(body)
        self._walk(body, guard=False, locks=())
        info = self.signature()
        info.update(
            {
                "line": self.function.lineno,
                "col": self.function.col_offset,
                "class": self.class_name,
                "calls": self.calls,
                "thread_starts": self.thread_starts,
                "schema_dicts": self.schema_dicts,
                "var_bindings": self.var_bindings,
            }
        )
        return info

    def _walk(self, body: Sequence[ast.AST], guard: bool, locks: Tuple[str, ...]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner_guard, inner_locks = guard, locks
                for item in node.items:
                    token = self._lock_token(item.context_expr)
                    self._visit_expressions(item.context_expr, guard, locks)
                    if token == GUARD_TOKEN:
                        inner_guard = True
                        inner_locks = inner_locks + (GUARD_TOKEN,)
                    elif token is not None:
                        inner_locks = inner_locks + (token,)
                        self._record_acquire(token, item.context_expr, guard)
                self._walk(node.body, inner_guard, inner_locks)
                continue
            self._visit_expressions(node, guard, locks)
            for child_body in self._child_bodies(node):
                self._walk(child_body, guard, locks)

    @staticmethod
    def _child_bodies(node: ast.AST) -> List[Sequence[ast.AST]]:
        bodies = []
        for field in ("body", "orelse", "finalbody"):
            value = getattr(node, field, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                bodies.append(value)
        for handler in getattr(node, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    def _visit_expressions(self, node: ast.AST, guard: bool, locks: Tuple[str, ...]) -> None:
        """Record every call in this statement (excluding nested bodies)."""
        stack: List[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(current, ast.stmt) and current is not node:
                continue  # nested statements are walked by _walk
            if isinstance(current, ast.Call):
                self._record_call(current, guard, locks)
            stack.extend(ast.iter_child_nodes(current))
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                self._record_schema_dict(node.targets[0].id, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                self._record_schema_dict(node.target.id, node.value)

    def _record_acquire(self, token: str, node: ast.AST, guard: bool) -> None:
        self.calls.append(
            {
                "acquire": token,
                "line": getattr(node, "lineno", 0),
                "col": getattr(node, "col_offset", 0),
                "guard": guard,
            }
        )

    def _record_call(self, node: ast.Call, guard: bool, locks: Tuple[str, ...]) -> None:
        desc = _callee_descriptor(node.func, self.ctx, self.local_defs)
        # lock.acquire() outside a with-statement counts as an acquire.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
            token = self._lock_token(node.func.value)
            if token is not None and token != GUARD_TOKEN:
                self._record_acquire(token, node, guard)
        if desc is None:
            return
        args: List[Dict[str, object]] = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            atoms = self.atoms(arg)
            if atoms:
                args.append(
                    {"pos": position, "atoms": atoms,
                     "line": arg.lineno, "col": arg.col_offset}
                )
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            atoms = self.atoms(keyword.value)
            if atoms:
                args.append(
                    {"kw": keyword.arg, "atoms": atoms,
                     "line": keyword.value.lineno, "col": keyword.value.col_offset}
                )
        record: Dict[str, object] = {
            "callee": desc,
            "line": node.lineno,
            "col": node.col_offset,
            "guard": guard,
            "locks": [token for token in locks if token != GUARD_TOKEN],
        }
        if args:
            record["args"] = args
        self.calls.append(record)
        self._maybe_thread_start(node, desc)

    def _maybe_thread_start(self, node: ast.Call, desc: Dict[str, object]) -> None:
        dotted = desc.get("dotted")
        is_thread = dotted == "threading.Thread" or (
            dotted is None and desc.get("attr") == "Thread"
        )
        if not is_thread:
            return
        target: Optional[ast.AST] = None
        for keyword in node.keywords:
            if keyword.arg == "target":
                target = keyword.value
        if target is None and node.args:
            target = node.args[1] if len(node.args) > 1 else None
        if target is None:
            return
        target_desc = _callee_descriptor(target, self.ctx, self.local_defs)
        self.thread_starts.append(
            {
                "target": target_desc,
                "line": node.lineno,
                "col": node.col_offset,
            }
        )

    def _record_schema_dict(self, var: str, value: ast.AST) -> None:
        """A dict literal with a ``"schema"`` key: a serialized record shape."""
        if not isinstance(value, ast.Dict):
            return
        keys: List[str] = []
        version_name: Optional[str] = None
        for key, item in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return
            keys.append(key.value)
            if key.value == "schema":
                resolved = self.ctx.resolve_imported(item)
                if resolved is not None:
                    version_name = resolved.rsplit(".", 1)[-1]
                elif isinstance(item, ast.Name):
                    version_name = item.id
        if "schema" not in keys:
            return
        extra: List[str] = []
        for other in self._own_nodes(self.function.body):
            if (
                isinstance(other, ast.Assign)
                and len(other.targets) == 1
                and isinstance(other.targets[0], ast.Subscript)
                and isinstance(other.targets[0].value, ast.Name)
                and other.targets[0].value.id == var
            ):
                index = other.targets[0].slice
                if isinstance(index, ast.Constant) and isinstance(index.value, str):
                    extra.append(index.value)
        self.schema_dicts.append(
            {
                "var": var,
                "function": self.qualname,
                "version_name": version_name,
                "keys": sorted(set(keys) | set(extra)),
                "line": value.lineno,
            }
        )


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _extract_class(
    ctx: FileContext,
    node: ast.ClassDef,
    local_defs: Dict[str, str],
    module_locks: Sequence[str],
) -> Tuple[Dict[str, object], List[Tuple[str, _FuncDef]]]:
    fields: Dict[str, Dict[str, object]] = {}
    methods: List[Tuple[str, _FuncDef]] = []
    attr_types: Dict[str, str] = {}
    lock_attrs: List[str] = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            default = statement.value
            fields[statement.target.id] = {
                "line": statement.lineno,
                "col": statement.col_offset,
                "int_literal": None if default is None else _int_literal(default),
                "annotation": _annotation_name(statement.annotation, ctx),
            }
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.append((statement.name, statement))
    # self.* attribute types and lock attributes, from every method body.
    for _, method in methods:
        param_annotations: Dict[str, Optional[str]] = {}
        args = method.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            param_annotations[arg.arg] = _annotation_name(arg.annotation, ctx)
        for sub in ast.walk(method):
            if not isinstance(sub, ast.Assign):
                continue
            for target in sub.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if isinstance(sub.value, ast.Call):
                    canonical = ctx.resolve_imported(sub.value.func)
                    if canonical in _LOCK_CONSTRUCTORS:
                        if target.attr not in lock_attrs:
                            lock_attrs.append(target.attr)
                        continue
                for candidate in _binding_candidates(sub.value, ctx, local_defs):
                    if "class" in candidate:
                        attr_types.setdefault(target.attr, str(candidate["class"]))
                    elif "var" in candidate:
                        annotated = param_annotations.get(str(candidate["var"]))
                        if annotated is not None:
                            attr_types.setdefault(target.attr, annotated)
                    elif "call" in candidate:
                        attr_types.setdefault(target.attr, f"call:{candidate['call']}")
    info = {
        "line": node.lineno,
        "dataclass": _is_dataclass_decorated(node),
        "fields": fields,
        "methods": [name for name, _ in methods],
        "attr_types": attr_types,
        "lock_attrs": lock_attrs,
    }
    return info, methods


def build_summary(ctx: FileContext) -> Dict[str, object]:
    """Distill one parsed file into its whole-program summary dict."""
    module = ctx.module
    local_defs: Dict[str, str] = {}
    module_locks: List[str] = []
    int_constants: Dict[str, Dict[str, object]] = {}
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_defs[node.name] = f"{module}.{node.name}"
        elif isinstance(node, ast.ClassDef):
            local_defs[node.name] = f"{module}.{node.name}"
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                literal = _int_literal(node.value)
                if literal is not None:
                    int_constants[target.id] = {
                        "value": literal, "line": node.lineno, "col": node.col_offset,
                    }
                elif isinstance(node.value, ast.Call):
                    canonical = ctx.resolve_imported(node.value.func)
                    if canonical in _LOCK_CONSTRUCTORS:
                        module_locks.append(target.id)

    functions: Dict[str, Dict[str, object]] = {}
    classes: Dict[str, Dict[str, object]] = {}

    def extract(function: _FuncDef, qualname: str, class_name: Optional[str],
                lock_attrs: Sequence[str]) -> None:
        extractor = _FunctionExtractor(
            ctx, function, qualname, class_name, local_defs, module_locks, lock_attrs
        )
        functions[qualname] = extractor.run()

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract(node, node.name, None, ())
        elif isinstance(node, ast.ClassDef):
            info, methods = _extract_class(ctx, node, local_defs, module_locks)
            classes[node.name] = info
            for name, method in methods:
                extract(method, f"{node.name}.{name}", node.name, info["lock_attrs"])

    return {
        "module": module,
        "path": ctx.path.as_posix(),
        "functions": functions,
        "classes": classes,
        "int_constants": int_constants,
        "module_locks": module_locks,
    }
