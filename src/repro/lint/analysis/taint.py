"""Interprocedural seed taint: the engine behind DET010.

DET001 sees a literal handed *directly* to ``np.random.default_rng``;
it is blind to the same literal laundered through a helper::

    def make_rng(seed):                  # seed is *seed-sensitive*
        return default_rng(SeedSequence([seed, 17]))

    rng = make_rng(42)                   # <- DET010 flags the 42 here

The engine computes the **seed-sensitive parameter set** as a fixpoint
over the project call graph: a parameter is sensitive when its value can
reach a seed sink (``SeedSequence``/``default_rng``/bit-generator/
``fastseed`` construction) directly or through a sensitive parameter of
another project function.  It then flags, at their source location:

- an int literal reaching a sink or sensitive position (unless the
  module is in ``SEED_LITERAL_WHITELIST`` -- ``repro.seeds`` is the one
  sanctioned home for literal seeds);
- a wall-clock read reaching one (a time-derived seed is magic *and*
  unreproducible);
- an int-literal **default** of a sensitive parameter;
- an int-literal **dataclass field default** read through an attribute
  chain (``config.seed``) into a sensitive position -- flagged at the
  field definition, where the fix belongs.

Direct literals at ``default_rng`` itself stay DET001's finding; the
engine skips them so one bug never surfaces under two codes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.analysis.project import FuncView, Project
from repro.lint.rules.determinism import SEED_LITERAL_WHITELIST

__all__ = ["SEED_SINKS", "analyze_seed_taint", "sensitive_params"]

# External seed sinks: dotted callable -> (positional indices, keyword
# names) that consume entropy.  ``skip_direct_literal`` marks sinks where
# a literal written directly at the call is already DET001's finding.
SEED_SINKS: Dict[str, Dict[str, object]] = {
    "numpy.random.SeedSequence": {"positions": (0,), "keywords": ("entropy",)},
    "numpy.random.default_rng": {
        "positions": (0,), "keywords": ("seed",), "skip_direct_literal": True,
    },
    "numpy.random.PCG64": {"positions": (0,), "keywords": ("seed",)},
    "numpy.random.PCG64DXSM": {"positions": (0,), "keywords": ("seed",)},
    "numpy.random.Philox": {"positions": (0,), "keywords": ("seed",)},
    "numpy.random.MT19937": {"positions": (0,), "keywords": ("seed",)},
    "numpy.random.SFC64": {"positions": (0,), "keywords": ("seed",)},
    "random.Random": {"positions": (0,), "keywords": ()},
    "random.seed": {"positions": (0,), "keywords": ("a",)},
    "repro.measurement.fastseed.pcg64_states": {
        "positions": (0,), "keywords": ("base_seed",),
    },
}


def _param_for_arg(callee: FuncView, arg: Dict[str, object]) -> Optional[str]:
    if "kw" in arg:
        keyword = str(arg["kw"])
        return keyword if keyword in callee.params else None
    positional: Sequence[str] = callee.info.get("positional", ())  # type: ignore[assignment]
    index = int(arg["pos"])  # type: ignore[arg-type]
    if 0 <= index < len(positional):
        return positional[index]
    return None


def _sink_spec(desc: Dict[str, object]) -> Optional[Dict[str, object]]:
    dotted = desc.get("dotted")
    return SEED_SINKS.get(dotted) if isinstance(dotted, str) else None


def _arg_hits_sink(spec: Dict[str, object], arg: Dict[str, object]) -> bool:
    if "kw" in arg:
        return arg["kw"] in spec.get("keywords", ())
    return arg["pos"] in spec.get("positions", ())


def sensitive_params(project: Project) -> Set[Tuple[str, str]]:
    """Fixpoint: (function, parameter) pairs whose value can seed an RNG."""
    sensitive: Set[Tuple[str, str]] = set()
    changed = True
    while changed:
        changed = False
        for view in project.functions.values():
            for record in view.calls:
                desc: Dict[str, object] = record["callee"]  # type: ignore[assignment]
                spec = _sink_spec(desc)
                callee = None if spec is not None else project.resolve_callee(view, desc)
                for arg in record.get("args", ()):  # type: ignore[union-attr]
                    if spec is not None:
                        hits = _arg_hits_sink(spec, arg)
                    elif callee is not None:
                        param = _param_for_arg(callee, arg)
                        hits = param is not None and (callee.name, param) in sensitive
                    else:
                        hits = False
                    if not hits:
                        continue
                    for atom in arg["atoms"]:
                        if atom[0] == "param":
                            key = (view.name, atom[1])
                            if key not in sensitive:
                                sensitive.add(key)
                                changed = True
    return sensitive


def _describe_target(
    spec: Optional[Dict[str, object]],
    desc: Dict[str, object],
    callee: Optional[FuncView],
    param: Optional[str],
) -> str:
    if spec is not None:
        return f"{desc.get('dotted')}()"
    if callee is not None and param is not None:
        return f"seed-sensitive {callee.name}({param}=...)"
    return "an RNG seed position"


def analyze_seed_taint(
    project: Project,
    whitelist: Sequence[str] = SEED_LITERAL_WHITELIST,
) -> Iterator[Dict[str, object]]:
    """Yield finding dicts: {path, line, col, message}, deduped + sorted."""
    sensitive = sensitive_params(project)
    found: List[Tuple[str, int, int, str]] = []

    def emit(path: Optional[str], line: int, col: int, message: str) -> None:
        if path is not None:
            found.append((path, line, col, message))

    for view in project.functions.values():
        module_whitelisted = view.module in whitelist
        path = project.path_of(view.module)
        for record in view.calls:
            desc: Dict[str, object] = record["callee"]  # type: ignore[assignment]
            spec = _sink_spec(desc)
            callee = None if spec is not None else project.resolve_callee(view, desc)
            for arg in record.get("args", ()):  # type: ignore[union-attr]
                param = None if callee is None else _param_for_arg(callee, arg)
                if spec is not None:
                    hits = _arg_hits_sink(spec, arg)
                else:
                    hits = param is not None and (callee.name, param) in sensitive
                if not hits:
                    continue
                target = _describe_target(spec, desc, callee, param)
                for atom in arg["atoms"]:
                    if atom[0] == "lit" and not module_whitelisted:
                        _, value, line, col = atom
                        direct = (
                            spec is not None
                            and spec.get("skip_direct_literal")
                            and (line, col) == (arg.get("line"), arg.get("col"))
                        )
                        if direct:
                            continue  # DET001's finding, not ours
                        emit(
                            path, line, col,
                            f"literal seed {value} flows into {target}; "
                            "use a named constant from repro.seeds",
                        )
                    elif atom[0] == "wc":
                        _, source, line, col = atom
                        emit(
                            path, line, col,
                            f"wall-clock value from {source}() flows into "
                            f"{target}; seeds must come from config, never "
                            "the clock",
                        )
                    elif atom[0] == "attr":
                        yield_from = _field_finding(
                            project, view, atom, target, whitelist
                        )
                        if yield_from is not None:
                            emit(*yield_from)

    for name, param in sorted(sensitive):
        view = project.functions[name]
        if view.module in whitelist:
            continue
        default = view.info.get("defaults", {}).get(param)  # type: ignore[union-attr]
        if default is None or default.get("int_literal") is None:
            continue
        emit(
            project.path_of(view.module),
            int(default["line"]), int(default["col"]),
            f"int-literal default {default['int_literal']} on seed-sensitive "
            f"parameter {name.rsplit('.', 1)[-1]}({param}=...); default it to "
            "a named constant from repro.seeds",
        )

    # One finding per source location: the same laundered literal can
    # reach several sinks, but the fix is singular, so keep the first
    # (lexicographically stable) flow description.
    seen_locations = set()
    for path, line, col, message in sorted(set(found)):
        if (path, line, col) in seen_locations:
            continue
        seen_locations.add((path, line, col))
        yield {"path": path, "line": line, "col": col, "message": message}


def _field_finding(
    project: Project,
    view: FuncView,
    atom: Tuple,
    target: str,
    whitelist: Sequence[str],
) -> Optional[Tuple[Optional[str], int, int, str]]:
    """An attr-chain atom landing on a sink: flag int-literal field defaults."""
    _, chain, _line, _col = atom
    resolved = project.resolve_class_of_chain(view, chain)
    if resolved is None:
        return None
    owner, attr = resolved
    owner_module = owner.rsplit(".", 1)[0]
    if owner_module in whitelist:
        return None
    class_info = project.class_info(owner)
    field = (class_info or {}).get("fields", {}).get(attr)  # type: ignore[union-attr]
    if field is None or field.get("int_literal") is None:
        return None
    class_name = owner.rsplit(".", 1)[-1]
    return (
        project.path_of(owner_module),
        int(field["line"]), int(field["col"]),
        f"dataclass field {class_name}.{attr} defaults to literal "
        f"{field['int_literal']} and is consumed as an RNG seed "
        f"(flows into {target} via {view.name}); default it to a named "
        "constant from repro.seeds",
    )
