"""Project assembly: compose module summaries into a whole-program view.

The :class:`Project` is rebuilt from (possibly cached) summaries on every
run -- it is cheap, deterministic, and holds the three things the
interprocedural engines need:

- a **symbol table** mapping dotted names to function and class records
  across every linted module;
- **call resolution**: a call record's callee descriptor (dotted name,
  ``self.method``, typed-receiver method, constructor) resolved to the
  global function it lands on, using parameter/return annotations and
  constructor-call bindings collected per module;
- the **fork-reachability fixpoint**: the set of functions from which a
  process fork (``os.fork``, ``fork_map``, ``Pool``/``Process``,
  ``ShardedSource``) is reachable through resolved calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["Project", "FuncView", "FORK_CALLABLES"]

# Direct fork actions.  Constructing a worker container (Pool, Process,
# ShardedSource) counts: construction is where worker wiring happens and
# the spawn follows immediately in every idiom this codebase uses.
FORK_CALLABLES = frozenset(
    {
        "os.fork",
        "os.forkpty",
        "repro.datasets.parallel.fork_map",
        "repro.stream.source.ShardedSource",
        "multiprocessing.Pool",
        "multiprocessing.Process",
        "multiprocessing.pool.Pool",
        "multiprocessing.context.Process",
    }
)

_FORK_ATTRS = frozenset({"Pool", "Process"})


@dataclass
class FuncView:
    """One function or method, addressable by its global dotted name."""

    name: str  # e.g. repro.obs.live.FlightRecorder.sample
    module: str
    qualname: str  # module-local, e.g. FlightRecorder.sample
    class_name: Optional[str]
    info: Dict[str, object] = field(repr=False)

    @property
    def calls(self) -> List[Dict[str, object]]:
        return [c for c in self.info.get("calls", ()) if "callee" in c]

    @property
    def acquires(self) -> List[Dict[str, object]]:
        return [c for c in self.info.get("calls", ()) if "acquire" in c]

    @property
    def params(self) -> List[str]:
        return list(self.info.get("params", ()))

    @property
    def thread_starts(self) -> List[Dict[str, object]]:
        return list(self.info.get("thread_starts", ()))


class Project:
    """Global symbol table + call resolution over module summaries."""

    def __init__(self, summaries: Sequence[Dict[str, object]]) -> None:
        self.summaries = {str(s["module"]): s for s in summaries}
        self.functions: Dict[str, FuncView] = {}
        self.classes: Dict[str, Dict[str, object]] = {}
        for module, summary in self.summaries.items():
            for qualname, info in summary.get("functions", {}).items():
                view = FuncView(
                    name=f"{module}.{qualname}",
                    module=module,
                    qualname=qualname,
                    class_name=info.get("class"),
                    info=info,
                )
                self.functions[view.name] = view
            for class_name, class_info in summary.get("classes", {}).items():
                self.classes[f"{module}.{class_name}"] = class_info
        self._forks: Optional[Set[str]] = None

    # -- symbol table ----------------------------------------------------

    def function(self, name: str) -> Optional[FuncView]:
        return self.functions.get(name)

    def class_info(self, name: str) -> Optional[Dict[str, object]]:
        return self.classes.get(name)

    def constructor(self, class_name: str) -> Optional[FuncView]:
        return self.functions.get(f"{class_name}.__init__")

    def method(self, class_name: str, attr: str) -> Optional[FuncView]:
        return self.functions.get(f"{class_name}.{attr}")

    def path_of(self, module: str) -> Optional[str]:
        summary = self.summaries.get(module)
        return None if summary is None else str(summary.get("path"))

    # -- type resolution -------------------------------------------------

    def _binding_type(
        self, caller: FuncView, binding: Dict[str, object], depth: int = 0
    ) -> Optional[str]:
        """A var_bindings entry -> the dotted class name it holds."""
        if depth > 4:
            return None
        if "class" in binding:
            return str(binding["class"])
        if "call" in binding:
            return self._call_result_type(str(binding["call"]))
        if "var" in binding:
            bindings = caller.info.get("var_bindings", {})
            other = bindings.get(str(binding["var"]))
            if other is not None:
                return self._binding_type(caller, other, depth + 1)
        return None

    def _call_result_type(self, dotted: str) -> Optional[str]:
        if dotted in self.classes:
            return dotted
        func = self.functions.get(dotted)
        if func is not None:
            returns = func.info.get("returns")
            return None if returns is None else str(returns)
        return None

    def var_type(self, caller: FuncView, var: str) -> Optional[str]:
        bindings = caller.info.get("var_bindings", {})
        binding = bindings.get(var)
        if binding is None:
            return None
        return self._binding_type(caller, binding)

    def self_attr_type(self, caller: FuncView, attr: str) -> Optional[str]:
        if caller.class_name is None:
            return None
        class_info = self.classes.get(f"{caller.module}.{caller.class_name}")
        if class_info is None:
            return None
        fields = class_info.get("fields", {})
        if attr in fields:
            annotation = fields[attr].get("annotation")
            if annotation is not None:
                return str(annotation)
        attr_type = class_info.get("attr_types", {}).get(attr)
        if attr_type is None:
            return None
        attr_type = str(attr_type)
        if attr_type.startswith("call:"):
            return self._call_result_type(attr_type[len("call:"):])
        return attr_type

    # -- call resolution -------------------------------------------------

    def resolve_callee(
        self, caller: FuncView, desc: Dict[str, object]
    ) -> Optional[FuncView]:
        """Resolve a callee descriptor to the function the call lands on.

        Constructor calls resolve to the class's ``__init__`` when we have
        one.  Returns ``None`` for external or unresolvable targets.
        """
        if "dotted" in desc:
            dotted = str(desc["dotted"])
            if dotted in self.functions:
                return self.functions[dotted]
            if dotted in self.classes:
                return self.constructor(dotted)
            return None
        attr = desc.get("attr")
        if desc.get("recv_self") and caller.class_name is not None and attr:
            found = self.method(f"{caller.module}.{caller.class_name}", str(attr))
            if found is not None:
                return found
            return None
        if "recv_self_attr" in desc and attr:
            owner = self.self_attr_type(caller, str(desc["recv_self_attr"]))
            if owner is not None:
                return self.method(owner, str(attr))
            return None
        if "recv_var" in desc:
            var = str(desc["recv_var"])
            if attr is None:
                # A bare name holding a callable: a class via var binding.
                owner = self.var_type(caller, var)
                if owner is not None and owner in self.classes:
                    return self.constructor(owner)
                return None
            owner = self.var_type(caller, var)
            if owner is not None:
                return self.method(owner, str(attr))
            return None
        if "recv_call" in desc and attr:
            owner = self._call_result_type(str(desc["recv_call"]))
            if owner is not None:
                return self.method(owner, str(attr))
        return None

    def resolve_class_of_chain(
        self, caller: FuncView, chain: Sequence[str]
    ) -> Optional[Tuple[str, str]]:
        """Resolve an attribute chain to ``(owner_class, final_attr)``.

        ``("self", "config", "seed")`` inside a method whose class binds
        ``self.config`` to a ``PlatformConfig`` resolves to
        ``("...PlatformConfig", "seed")``.
        """
        if len(chain) < 2:
            return None
        head, rest = chain[0], list(chain[1:])
        if head == "self":
            if caller.class_name is None:
                return None
            owner: Optional[str] = f"{caller.module}.{caller.class_name}"
        else:
            owner = self.var_type(caller, head)
        while owner is not None and len(rest) > 1:
            attr, rest = rest[0], rest[1:]
            info = self.classes.get(owner)
            if info is None:
                return None
            annotation = info.get("fields", {}).get(attr, {}).get("annotation")
            if annotation is None:
                annotation = info.get("attr_types", {}).get(attr)
                if annotation is not None and str(annotation).startswith("call:"):
                    annotation = self._call_result_type(str(annotation)[len("call:"):])
            owner = None if annotation is None else str(annotation)
        if owner is None or owner not in self.classes:
            return None
        return owner, rest[0]

    # -- fork reachability -----------------------------------------------

    @staticmethod
    def is_direct_fork(desc: Dict[str, object]) -> bool:
        dotted = desc.get("dotted")
        if dotted in FORK_CALLABLES:
            return True
        # multiprocessing contexts: ctx.Process(...), context.Pool(...)
        if dotted is None and desc.get("attr") in _FORK_ATTRS:
            return True
        if isinstance(dotted, str) and dotted.rsplit(".", 1)[-1] in _FORK_ATTRS:
            return dotted.split(".", 1)[0] == "multiprocessing"
        return False

    @property
    def forking_functions(self) -> Set[str]:
        """Functions from which a fork action is reachable (fixpoint)."""
        if self._forks is not None:
            return self._forks
        forks: Set[str] = set()
        for name, view in self.functions.items():
            for record in view.calls:
                if self.is_direct_fork(record["callee"]):
                    forks.add(name)
                    break
        changed = True
        while changed:
            changed = False
            for name, view in self.functions.items():
                if name in forks:
                    continue
                for record in view.calls:
                    callee = self.resolve_callee(view, record["callee"])
                    if callee is not None and callee.name in forks:
                        forks.add(name)
                        changed = True
                        break
        self._forks = forks
        return forks

    @property
    def has_fork_actions(self) -> bool:
        return bool(self.forking_functions)
