"""repro.lint.analysis: the whole-program layer under the project rules.

The per-file rules (DET001, FRK001, ...) see one AST at a time; the
rules this package serves (DET010, FRK010, SCH010) need to see the
program.  The layer is split so the expensive half is cacheable:

- :mod:`repro.lint.analysis.summary` distills each module into a plain
  JSON-able :func:`build_summary` dict -- functions with import-resolved
  call records and taint atoms, classes with attribute types and lock
  attributes, fork/thread/lock events, serialized-schema dict shapes.
  A summary depends only on the file's bytes, so the incremental runner
  caches it under a content fingerprint.
- :mod:`repro.lint.analysis.project` assembles summaries into a
  :class:`Project`: a global symbol table, annotation-driven call
  resolution, and the fork-reachability fixpoint.  Cheap to rebuild
  every run from cached summaries.
- :mod:`repro.lint.analysis.taint` (interprocedural seed taint),
  :mod:`repro.lint.analysis.locks` (fork/thread lock order) and
  :mod:`repro.lint.analysis.schemas` (schema-snapshot compatibility)
  are the engines the project rules call.

``ANALYSIS_VERSION`` participates in the lint cache key: bump it when
the summary shape or the engines' semantics change, so stale cached
summaries can never feed a new analysis.
"""

from repro.lint.analysis.summary import ANALYSIS_VERSION, build_summary
from repro.lint.analysis.project import Project

__all__ = ["ANALYSIS_VERSION", "build_summary", "Project"]
