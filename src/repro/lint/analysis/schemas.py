"""Schema-compat checking: the engine behind SCH010.

Three on-disk formats must never change shape silently, because old
artifacts outlive the code that wrote them:

- the stream **checkpoint** payload, versioned by
  ``repro.stream.checkpoint.CHECKPOINT_SCHEMA_VERSION``;
- the **live telemetry sample**, versioned by ``repro.obs.live.LIVE_SCHEMA``;
- the **campaign checkpoint** payload, versioned by
  ``repro.service.checkpoint.CAMPAIGN_CHECKPOINT_SCHEMA``;
- the service's ``/campaigns`` **control document**, versioned by
  ``repro.service.api.CAMPAIGNS_SCHEMA``;
- the committed bench baseline ``BENCH_pipeline.json`` (its own
  ``schema`` key).

The engine extracts the *current* shape of each from the project
summaries (the dict literal serialized with a ``"schema"`` key whose
version value is the tracked constant, plus any later ``d[k] = ...``
additions in the same function) and for the bench baseline from the
JSON file itself, then diffs against the committed snapshot
(``schema_snapshot.json`` next to this package):

- fields changed, version unchanged  -> "bump the version constant";
- version or fields differ from the snapshot otherwise -> "refresh the
  snapshot" (``--update-schema-snapshot``), so the diff is reviewed in
  the same commit as the change.

Keys absent from the current run (module not linted) are skipped, so
linting a subtree never produces phantom schema findings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.analysis.project import Project

__all__ = [
    "SNAPSHOT_SCHEMA",
    "TRACKED_SCHEMAS",
    "analyze_schemas",
    "current_schemas",
    "default_snapshot_path",
    "load_snapshot",
    "write_snapshot",
]

SNAPSHOT_SCHEMA = 1

# key -> (module holding the version constant, constant name)
TRACKED_SCHEMAS: Dict[str, Tuple[str, str]] = {
    "stream-checkpoint": ("repro.stream.checkpoint", "CHECKPOINT_SCHEMA_VERSION"),
    "live-sample": ("repro.obs.live", "LIVE_SCHEMA"),
    "campaign-checkpoint": (
        "repro.service.checkpoint", "CAMPAIGN_CHECKPOINT_SCHEMA",
    ),
    "campaigns-status": ("repro.service.api", "CAMPAIGNS_SCHEMA"),
}

BENCH_KEY = "bench-summary"
BENCH_BASELINE = "BENCH_pipeline.json"


def default_snapshot_path() -> Path:
    return Path(__file__).resolve().parent.parent / "schema_snapshot.json"


def load_snapshot(path: Path) -> Optional[Dict[str, Dict[str, object]]]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != SNAPSHOT_SCHEMA:
        return None
    tracked = payload.get("tracked")
    return tracked if isinstance(tracked, dict) else None


def write_snapshot(path: Path, tracked: Dict[str, Dict[str, object]]) -> None:
    serializable = {
        key: {"version": entry["version"], "fields": sorted(entry["fields"])}
        for key, entry in sorted(tracked.items())
        if not key.startswith("_")
    }
    payload = {"schema": SNAPSHOT_SCHEMA, "tracked": serializable}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def _find_bench_baseline(project: Project) -> Optional[Path]:
    """Walk up from any linted file to the repo root holding the baseline."""
    for summary in project.summaries.values():
        start = Path(str(summary["path"])).resolve().parent
        for candidate in (start, *start.parents):
            baseline = candidate / BENCH_BASELINE
            if baseline.is_file():
                return baseline
    return None


def current_schemas(
    project: Project, bench_path: Optional[Path] = None
) -> Dict[str, Dict[str, object]]:
    """The tracked schemas' current (version, fields, location) by key."""
    current: Dict[str, Dict[str, object]] = {}
    for key, (module, constant) in TRACKED_SCHEMAS.items():
        summary = project.summaries.get(module)
        if summary is None:
            continue
        constants = summary.get("int_constants", {})
        if constant not in constants:
            continue
        version = constants[constant]["value"]
        fields: set = set()
        line = int(constants[constant]["line"])
        for info in summary.get("functions", {}).values():
            for schema_dict in info.get("schema_dicts", ()):
                if schema_dict.get("version_name") == constant:
                    fields.update(schema_dict["keys"])
                    line = int(schema_dict["line"])
        if not fields:
            continue
        current[key] = {
            "version": version,
            "fields": sorted(fields),
            "_path": str(summary["path"]),
            "_line": line,
        }
    bench = bench_path if bench_path is not None else _find_bench_baseline(project)
    if bench is not None:
        try:
            payload = json.loads(bench.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            payload = None
        if isinstance(payload, dict) and "schema" in payload:
            current[BENCH_KEY] = {
                "version": payload["schema"],
                "fields": sorted(payload),
                "_path": str(bench),
                "_line": 1,
            }
    return current


def analyze_schemas(
    project: Project,
    snapshot_path: Optional[Path] = None,
    bench_path: Optional[Path] = None,
) -> Iterator[Dict[str, object]]:
    """Yield finding dicts: {path, line, col, message}, sorted."""
    path = snapshot_path if snapshot_path is not None else default_snapshot_path()
    snapshot = load_snapshot(path)
    current = current_schemas(project, bench_path=bench_path)
    if snapshot is None:
        if current:
            entry = sorted(current.values(), key=lambda e: str(e["_path"]))[0]
            yield {
                "path": str(entry["_path"]), "line": int(entry["_line"]), "col": 0,
                "message": (
                    f"no schema snapshot at {path}; commit one with "
                    "--update-schema-snapshot so serialized-format drift "
                    "is caught"
                ),
            }
        return
    found: List[Tuple[str, int, int, str]] = []
    for key in sorted(current):
        entry = current[key]
        recorded = snapshot.get(key)
        where = (str(entry["_path"]), int(entry["_line"]), 0)
        if recorded is None:
            found.append(
                (*where,
                 f"serialized schema '{key}' is not in the committed snapshot; "
                 "record it with --update-schema-snapshot")
            )
            continue
        fields_changed = sorted(entry["fields"]) != sorted(recorded.get("fields", ()))
        version_changed = entry["version"] != recorded.get("version")
        if fields_changed and not version_changed:
            added = sorted(set(entry["fields"]) - set(recorded.get("fields", ())))
            removed = sorted(set(recorded.get("fields", ())) - set(entry["fields"]))
            delta = "; ".join(
                part for part in (
                    f"added {', '.join(added)}" if added else "",
                    f"removed {', '.join(removed)}" if removed else "",
                ) if part
            )
            found.append(
                (*where,
                 f"serialized fields of '{key}' changed ({delta}) without a "
                 "version bump; old readers will mis-parse new artifacts -- "
                 "bump the version constant and refresh the snapshot")
            )
        elif fields_changed or version_changed:
            found.append(
                (*where,
                 f"schema snapshot for '{key}' is stale (version "
                 f"{recorded.get('version')} -> {entry['version']}); refresh "
                 "it with --update-schema-snapshot so the change is reviewed")
            )
    for path_, line, col, message in sorted(found):
        yield {"path": path_, "line": line, "col": col, "message": message}
