"""Fork/thread lock-order analysis: the engine behind FRK010.

Two hazards, both of which PR 7's telemetry threads made real:

**Held lock at fork.**  ``fork_map``/``ShardedSource`` children inherit a
snapshot of every lock in the parent.  If the forking call sits inside a
``with some_lock:`` block -- directly, or anywhere down the call chain a
fork is reachable from -- the child is born owning (or waiting on) a
lock no thread of its own will ever release.  The engine walks every
call record carrying a non-empty held-lock set and flags the ones that
can reach a fork action, using the project's fork-reachability fixpoint.

**Thread started outside the fork guard.**  A sampling thread that takes
a shared lock (``MetricsRegistry``, ``FlightRecorder`` ring, checkpoint
writer) can hold it at the instant another thread forks -- unless its
lock acquisitions are routed through :func:`repro.obs.live.fork_guard`,
whose ``os.register_at_fork`` hooks quiesce the guard around every fork.
For every resolvable ``threading.Thread(target=...)`` in a project that
forks anywhere, the engine walks the target's call graph; a shared-lock
acquisition on a path not covered by the guard is flagged at the thread
start site.

Local locks (created inside the function) are exempt from the thread
check: they cannot be contended across the fork boundary.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.analysis.project import FuncView, Project

__all__ = ["analyze_fork_locks"]


def _held_lock_findings(project: Project) -> Iterator[Tuple[str, int, int, str]]:
    forking = project.forking_functions
    for view in project.functions.values():
        path = project.path_of(view.module)
        if path is None:
            continue
        for record in view.calls:
            locks: List[str] = [
                token for token in record.get("locks", ())  # type: ignore[union-attr]
                if not token.startswith("local:")
            ]
            if not locks:
                continue
            desc: Dict[str, object] = record["callee"]  # type: ignore[assignment]
            held = ", ".join(sorted(locks))
            if project.is_direct_fork(desc):
                what = desc.get("dotted") or desc.get("attr") or "a fork action"
                yield (
                    path, int(record["line"]), int(record["col"]),
                    f"{what} forks while holding {held}; children inherit "
                    "held locks -- release before spawning workers",
                )
                continue
            callee = project.resolve_callee(view, desc)
            if callee is not None and callee.name in forking:
                yield (
                    path, int(record["line"]), int(record["col"]),
                    f"call to {callee.name} can fork (transitively) while "
                    f"holding {held}; children inherit held locks -- "
                    "release before spawning workers",
                )


def _resolve_thread_target(
    project: Project, view: FuncView, desc: Optional[Dict[str, object]]
) -> Optional[FuncView]:
    if desc is None:
        return None
    return project.resolve_callee(view, desc)


def _unguarded_acquire(
    project: Project,
    view: FuncView,
    guarded: bool,
    memo: Set[Tuple[str, bool]],
) -> Optional[Tuple[str, str, int]]:
    """First shared-lock acquisition reachable from ``view`` with no guard.

    Returns ``(function, lock_token, line)`` or ``None``.  ``guarded``
    means some caller on this path entered :func:`fork_guard`'s critical
    section, so a fork cannot interleave with anything below.
    """
    key = (view.name, guarded)
    if key in memo:
        return None
    memo.add(key)
    for record in view.acquires:
        token = str(record["acquire"])
        if token.startswith("local:"):
            continue
        if not guarded and not record.get("guard"):
            return (view.name, token, int(record["line"]))
    for record in view.calls:
        callee = project.resolve_callee(view, record["callee"])  # type: ignore[arg-type]
        if callee is None:
            continue
        hit = _unguarded_acquire(
            project, callee, guarded or bool(record.get("guard")), memo
        )
        if hit is not None:
            return hit
    return None


def _thread_findings(project: Project) -> Iterator[Tuple[str, int, int, str]]:
    if not project.has_fork_actions:
        return
    for view in project.functions.values():
        path = project.path_of(view.module)
        if path is None:
            continue
        for start in view.thread_starts:
            target = _resolve_thread_target(project, view, start.get("target"))
            if target is None:
                continue
            hit = _unguarded_acquire(project, target, False, set())
            if hit is None:
                continue
            where, token, line = hit
            yield (
                path, int(start["line"]), int(start["col"]),
                f"thread target {target.name} acquires {token} "
                f"(in {where}, line {line}) without routing through "
                "obs.live.fork_guard; a concurrent fork can freeze the "
                "lock held in the child",
            )


def analyze_fork_locks(project: Project) -> Iterator[Dict[str, object]]:
    """Yield finding dicts: {path, line, col, message}, deduped + sorted."""
    found = set(_held_lock_findings(project))
    found.update(_thread_findings(project))
    for path, line, col, message in sorted(found):
        yield {"path": path, "line": line, "col": col, "message": message}
