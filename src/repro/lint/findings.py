"""Finding and severity types plus the linter's two output renderers.

Mirrors the ``repro.obs`` conventions: the JSON document is versioned
with a top-level ``schema`` key (like run manifests) and the human
format is one compact line per event, ``path:line:col CODE message``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = [
    "REPORT_SCHEMA",
    "Severity",
    "Finding",
    "LintReport",
    "report_as_dict",
    "render_json",
    "render_human",
]

REPORT_SCHEMA = 2
"""Bump when the JSON report layout changes shape.

v2: ``summary.baselined`` (findings suppressed by a ``--baseline`` file)
and ``baseline_stale`` (baseline entries that matched nothing and must
be regenerated away).
"""


class Severity(enum.Enum):
    """How a finding affects the exit code.

    Errors always fail the run; warnings fail only under ``--strict``
    (which CI uses, so both block merges -- the split exists so local
    runs can distinguish hazards from hygiene).
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Everything one lint pass produced, JSON-ready via :func:`report_as_dict`."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    baseline_stale: List[Dict[str, object]] = field(default_factory=list)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def exit_code(self, strict: bool = False) -> int:
        if self.errors():
            return 1
        if strict and self.warnings():
            return 1
        return 0


def report_as_dict(report: LintReport) -> Dict[str, object]:
    """The report as a stable, schema-versioned JSON-ready dict."""
    return {
        "schema": REPORT_SCHEMA,
        "tool": "repro.lint",
        "files": report.files,
        "findings": [f.as_dict() for f in sorted(report.findings, key=Finding.sort_key)],
        "summary": {
            "findings": len(report.findings),
            "errors": len(report.errors()),
            "warnings": len(report.warnings()),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "by_rule": report.by_rule(),
        },
        "baseline_stale": list(report.baseline_stale),
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_as_dict(report), indent=2) + "\n"


def render_human(report: LintReport) -> str:
    """One line per finding plus a summary tail line."""
    lines = [
        f"{f.path}:{f.line}:{f.col} {f.rule} [{f.severity.value}] {f.message}"
        for f in sorted(report.findings, key=Finding.sort_key)
    ]
    for stale in report.baseline_stale:
        lines.append(
            f"stale baseline entry {stale.get('key')}: {stale.get('rule')} "
            f"{stale.get('path')} no longer fires; regenerate with "
            "--write-baseline"
        )
    tally = (
        f"{len(report.findings)} finding(s) "
        f"({len(report.errors())} error, {len(report.warnings())} warning) "
        f"in {report.files} file(s); {report.suppressed} suppressed"
    )
    if report.baselined:
        tally += f"; {report.baselined} baselined"
    lines.append(tally)
    return "\n".join(lines) + "\n"


def summarize_codes(findings: Sequence[Finding]) -> str:
    """``"DET001 x2, OBS001 x1"`` -- for log lines."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return ", ".join(f"{code} x{n}" for code, n in sorted(counts.items()))
