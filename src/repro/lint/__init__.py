"""repro.lint: the repo's AST-based invariant linter.

Off-the-shelf linters check style; this package checks the invariants
the reproduction's correctness rests on -- determinism (DET001/DET002),
fork-safe parallelism (FRK001), telemetry hygiene (OBS001), public API
annotations (API001), and cache-fingerprint coverage (CCH001).  See
``RULES.md`` next to this file for one paragraph per rule, and run::

    python -m repro.lint src            # human output
    python -m repro.lint src --json     # machine output (CI artifact)

Suppressions are ``# repro: noqa[RULE]`` comments backed by the
documented allowlist in :mod:`repro.lint.allowlist`; an undocumented
suppression is itself a finding (LNT000).
"""

from repro.lint.findings import (
    REPORT_SCHEMA,
    Finding,
    LintReport,
    Severity,
    render_human,
    render_json,
    report_as_dict,
)
from repro.lint.registry import Rule, all_rules, get_rule, rule_codes
from repro.lint.runner import Linter, iter_python_files, lint_paths, lint_source

__all__ = [
    "REPORT_SCHEMA",
    "Finding",
    "LintReport",
    "Severity",
    "Rule",
    "Linter",
    "all_rules",
    "get_rule",
    "rule_codes",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render_human",
    "render_json",
    "report_as_dict",
]
