"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info``       -- summarize a scenario's synthetic world.
- ``trace``      -- run one traceroute between two measurement servers.
- ``reproduce``  -- run table/figure experiments and print the reports.
- ``service``    -- run the always-on measurement campaign service.

Examples::

    python -m repro info --scenario small
    python -m repro trace --scenario small --src 0 --dst 3 --ipv6
    python -m repro reproduce --scenario default --experiments table1,fig3
    python -m repro reproduce --scenario small --log-json \\
        --trace-out trace.json --run-report run.json
    python -m repro reproduce --scenario default --stream \\
        --checkpoint-dir /tmp/ckpt --resume
    python -m repro service run --config service.json \\
        --time-scale 0.01 --live-out live.jsonl

Observability: ``--log-level``/``--log-json`` (or ``REPRO_LOG_LEVEL`` /
``REPRO_LOG_JSON``) control structured logging on stderr; ``--trace-out``
writes a Chrome trace-event file of the run's span tree (open it in
https://ui.perfetto.dev); ``--run-report`` writes the run manifest --
config fingerprints, metric snapshot, span summary.  Reports stay on
stdout either way.

Live telemetry: ``--serve-metrics [PORT]`` exposes Prometheus-text
``/metrics``, JSON ``/status`` and ``/health`` over HTTP for the life of
the run; ``--live-out FILE`` streams flight-recorder samples (metrics +
process stats + run status, every ``--live-interval`` seconds) as JSONL,
with a final sample appended on completion, crash or SIGTERM.  Watch
either live with ``python -m repro.obs.top``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.harness.scenarios import (
    SCENARIOS,
    scenario_longterm,
    scenario_ping,
    scenario_platform,
    scenario_traces,
)
from repro.net.ip import IPVersion
from repro.obs.expo import DEFAULT_METRICS_PORT as _DEFAULT_METRICS_PORT
from repro.obs import log as obs_log
from repro.obs import runinfo as obs_runinfo
from repro.obs.metrics import get_registry
from repro.obs.trace import Tracer, use_tracer

_LOG = obs_log.get_logger("repro.cli")


def _install_fault_plane(args: argparse.Namespace) -> Optional[bool]:
    """Install the deterministic fault plane from ``--faults-config``.

    Returns ``True`` when a plane with active injectors is installed,
    ``False`` when no faults were requested, and ``None`` on a bad
    config (the caller exits 2).  Chaos runs auto-enable shard
    supervision so every injected fault is also survivable.
    """
    path = getattr(args, "faults_config", None)
    seed = getattr(args, "faults_seed", None)
    if not path:
        if seed is not None:
            print("error: --faults-seed requires --faults-config",
                  file=sys.stderr)
            return None
        return False
    from repro.faults.plane import install, load_faults_config

    try:
        config = load_faults_config(path, seed=seed)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: bad faults config {path!r}: {exc}", file=sys.stderr)
        return None
    install(config)
    _LOG.info("faults.installed", config=path, seed=config.seed,
              active=config.active)
    return config.active


@contextmanager
def _live_plane(args: argparse.Namespace, **run_fields: object) -> Iterator[None]:
    """Run the live telemetry plane around a reproduce command.

    With ``--live-out`` and/or ``--serve-metrics`` active this starts a
    :class:`~repro.obs.live.FlightRecorder` (streaming JSONL samples)
    and optionally the HTTP exposition endpoint, and installs a SIGTERM
    handler that appends a final sample before the process dies -- so a
    killed campaign still leaves a fresh post-mortem trail.  Neither
    touches any RNG or the analysis path: reports are byte-identical
    with the plane on or off.
    """
    if not args.live_out and args.serve_metrics is None:
        yield
        return
    from repro.obs.expo import MetricsServer
    from repro.obs.live import FlightRecorder, get_status

    status = get_status()
    status.reset()
    status.begin_run(**run_fields)
    recorder = FlightRecorder(
        interval_seconds=args.live_interval, out_path=args.live_out
    )
    server: Optional[MetricsServer] = None
    previous_handler: object = signal.SIG_DFL
    owner_pid = os.getpid()

    def _on_sigterm(signum: int, frame: object) -> None:
        # Forked workers (dataset pools, stream shards) inherit this
        # handler but not the telemetry threads it tears down -- in any
        # process but the installer, just die the default way.
        if os.getpid() == owner_pid:
            recorder.stop(reason="sigterm")
            if server is not None:
                server.close()
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)

    recorder.start()
    if args.serve_metrics is not None:
        server = MetricsServer(recorder=recorder, port=args.serve_metrics)
        server.start()
        print(f"live telemetry at {server.url} "
              "(/metrics /status /health)", file=sys.stderr)
    try:
        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        previous_handler = None  # not the main thread (tests); no handler
    try:
        yield
    except BaseException:
        recorder.stop(reason="crash")
        raise
    else:
        recorder.stop(reason="complete")
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        if server is not None:
            server.close()

_EXPERIMENT_NAMES = (
    "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "congestion-norm", "localization", "link-classification", "fig9",
    "fig10a", "fig10b", "ext-loss", "ext-sharedinfra",
)


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", default="small", choices=sorted(SCENARIOS),
        help="scenario scale (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="world seed")


def _command_info(args: argparse.Namespace) -> int:
    platform = scenario_platform(args.scenario, args.seed)
    graph = platform.graph
    print(f"scenario {args.scenario!r} (seed {args.seed})")
    print(f"  ASes:        {len(graph.ases)} ({len(graph.edge_media)} edges, "
          f"{len(graph.ixps)} IXPs)")
    print(f"  routers:     {len(platform.topology.routers)} "
          f"({sum(len(v) for v in platform.topology.links.values())} interdomain links)")
    print(f"  CDN:         {len(platform.cdn.clusters)} clusters, "
          f"{len(platform.cdn.servers)} servers")
    print(f"  window:      {platform.config.duration_hours / 24:.0f} days")
    print(f"  congestion:  {len(platform.congested_segment_keys())} congested segments")
    servers = platform.measurement_servers()
    print("  measurement servers:")
    for server in servers[:20]:
        stack = "dual-stack" if server.dual_stack else "v4-only"
        print(f"    #{server.server_id:<3} AS{server.asn:<5} {server.city}  ({stack})")
    if len(servers) > 20:
        print(f"    ... and {len(servers) - 20} more")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    platform = scenario_platform(args.scenario, args.seed)
    servers = {s.server_id: s for s in platform.measurement_servers()}
    if args.src not in servers or args.dst not in servers:
        print(f"error: server ids must be in {sorted(servers)}", file=sys.stderr)
        return 2
    version = IPVersion.V6 if args.ipv6 else IPVersion.V4
    src, dst = servers[args.src], servers[args.dst]
    realization = platform.realization(src, dst, version, 0)
    if realization is None:
        print(
            f"error: no IPv{int(version)} path from #{args.src} to #{args.dst}",
            file=sys.stderr,
        )
        return 1
    record = platform.engine.trace(
        realization, args.time, platform.rng("cli-trace", args.src, args.dst)
    )
    print(f"{src.city} (AS{src.asn}) -> {dst.city} (AS{dst.asn})")
    print(record.render())
    return 0


def _command_reproduce(args: argparse.Namespace) -> int:
    from repro.harness import experiments as exp
    from repro.harness.engine import ArtifactCache, Timings
    from repro.harness.scenarios import get_scenario

    if args.stream:
        return _command_reproduce_stream(args)
    if args.checkpoint_dir or args.resume:
        print("error: --checkpoint-dir/--resume require --stream", file=sys.stderr)
        return 2
    if args.faults_config or args.faults_seed is not None:
        print("error: --faults-config/--faults-seed require --stream",
              file=sys.stderr)
        return 2

    wanted = (
        [name.strip() for name in args.experiments.split(",")]
        if args.experiments
        else list(_EXPERIMENT_NAMES)
    )
    unknown = [name for name in wanted if name not in _EXPERIMENT_NAMES]
    if unknown:
        print(f"error: unknown experiments {unknown}; valid: "
              f"{', '.join(_EXPERIMENT_NAMES)}", file=sys.stderr)
        return 2

    # Any observability output needs the stage recorder wired through the
    # pipeline -- stages become spans via the Timings shim.  The flat
    # table itself prints only under --timings.
    observing = bool(args.timings or args.trace_out or args.run_report
                     or args.live_out or args.serve_metrics is not None)
    registry = get_registry()
    if observing:
        registry.reset()
    # Pre-register cache counters so manifests always report them, even on
    # runs that never touch the artifact cache.
    for name in ("cache.hit", "cache.miss", "cache.corrupt", "cache.store"):
        registry.counter(name)

    timings = Timings() if observing else None
    tracer = Tracer()
    cache = None
    if args.cache or args.cache_dir:
        cache = ArtifactCache(args.cache_dir)
        if args.refresh_cache:
            cache.clear()
    jobs = args.jobs

    _LOG.info("reproduce.start", scenario=args.scenario, seed=args.seed,
              jobs=jobs, experiments=",".join(wanted),
              cache=cache is not None)

    with use_tracer(tracer), _live_plane(
        args, mode="batch", scenario=args.scenario, seed=args.seed,
        jobs=jobs, experiments=wanted,
    ), tracer.span(
        "reproduce", scenario=args.scenario, seed=args.seed, jobs=jobs
    ):
        platform = scenario_platform(
            args.scenario, args.seed, jobs=jobs, cache=cache, timings=timings
        )
        results = []
        # Build only the datasets the requested experiments need.
        longterm_needed = any(
            name in wanted
            for name in ("table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                         "fig10a", "fig10b", "ext-sharedinfra")
        )
        ping_needed = any(name in wanted for name in ("congestion-norm", "ext-loss"))
        trace_needed = any(
            name in wanted
            for name in ("localization", "link-classification", "fig9")
        )
        longterm = (
            scenario_longterm(args.scenario, args.seed, jobs=jobs, cache=cache,
                              timings=timings)
            if longterm_needed else None
        )
        pings = (
            scenario_ping(args.scenario, args.seed, jobs=jobs, timings=timings)
            if ping_needed or trace_needed else None
        )
        traces = (
            scenario_traces(args.scenario, args.seed, jobs=jobs, timings=timings)
            if trace_needed else None
        )

        drivers = {
            "table1": lambda: exp.experiment_table1(longterm),
            "fig1": lambda: exp.experiment_fig1(platform, longterm),
            "fig2": lambda: exp.experiment_fig2(longterm),
            "fig3": lambda: exp.experiment_fig3(longterm),
            "fig4": lambda: exp.experiment_fig4(longterm),
            "fig5": lambda: exp.experiment_fig5(longterm),
            "fig6": lambda: exp.experiment_fig6(longterm),
            "fig7": lambda: exp.experiment_fig7(platform, jobs=jobs),
            "congestion-norm": lambda: exp.experiment_congestion_norm(pings),
            "localization": lambda: exp.experiment_localization(traces, platform),
            "link-classification": lambda: exp.experiment_link_classification(
                traces, platform
            ),
            "fig9": lambda: exp.experiment_fig9(traces, platform),
            "fig10a": lambda: exp.experiment_fig10a(longterm),
            "fig10b": lambda: exp.experiment_fig10b(longterm),
            "ext-loss": lambda: exp.experiment_loss(pings),
            "ext-sharedinfra": lambda: exp.experiment_sharedinfra(longterm),
        }
        for name in wanted:
            if timings is not None:
                with timings.stage(f"experiment:{name}"):
                    results.append(drivers[name]())
            else:
                results.append(drivers[name]())

    for result in results:
        print(result.render())
        print()
    if args.timings:
        print("== stage timings ==")
        print(timings.render())

    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            json.dump(tracer.to_chrome_trace(), handle, indent=2)
            handle.write("\n")
        _LOG.info("trace.written", path=args.trace_out,
                  spans=len(tracer.spans))
    if args.run_report:
        scenario = get_scenario(args.scenario)
        platform_config = scenario.platform_config(args.seed)
        configs = {"platform": platform_config}
        if longterm_needed:
            configs["longterm"] = (platform_config, scenario.longterm_config())
        manifest = obs_runinfo.build_manifest(
            scenario=args.scenario,
            seed=args.seed,
            jobs=jobs,
            experiments=wanted,
            configs=configs,
            registry=registry,
            tracer=tracer,
        )
        obs_runinfo.write_run_report(args.run_report, manifest)
        _LOG.info("run_report.written", path=args.run_report)
    _LOG.info("reproduce.done", experiments=len(results))
    return 0


def _command_reproduce_stream(args: argparse.Namespace) -> int:
    """``reproduce --stream``: serve the reports from the streaming engine.

    Instead of materializing whole datasets and handing them to the batch
    drivers, the platform's records flow through the incremental
    operators in bounded memory.  Only the experiments those operators
    serve are available; ``--checkpoint-dir`` enables mid-campaign
    snapshots and ``--resume`` picks the last one up bit-identically.
    """
    from repro.harness.engine import ArtifactCache, Timings
    from repro.harness.scenarios import get_scenario
    from repro.stream.checkpoint import CHECKPOINT_SCHEMA_VERSION, required_phases
    from repro.stream.engine import STREAM_EXPERIMENTS, StreamConfig, StreamEngine

    wanted = (
        [name.strip() for name in args.experiments.split(",")]
        if args.experiments
        else list(STREAM_EXPERIMENTS)
    )
    unknown = [name for name in wanted if name not in STREAM_EXPERIMENTS]
    if unknown:
        print(f"error: experiments not served by --stream: {unknown}; valid: "
              f"{', '.join(STREAM_EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    observing = bool(args.timings or args.trace_out or args.run_report
                     or args.live_out or args.serve_metrics is not None)
    registry = get_registry()
    if observing:
        registry.reset()

    timings = Timings() if observing else None
    tracer = Tracer()
    cache = None
    if args.cache or args.cache_dir:
        cache = ArtifactCache(args.cache_dir)
        if args.refresh_cache:
            cache.clear()
    jobs = args.jobs if args.jobs >= 1 else (os.cpu_count() or 1)

    plane_active = _install_fault_plane(args)
    if plane_active is None:
        return 2
    supervision = None
    if plane_active:
        from repro.faults.plane import SupervisionPolicy

        supervision = SupervisionPolicy()

    scenario = get_scenario(args.scenario)
    stream_config = StreamConfig(shards=jobs, supervision=supervision)
    _LOG.info("reproduce.stream.start", scenario=args.scenario, seed=args.seed,
              shards=jobs, experiments=",".join(wanted), resume=args.resume)

    with use_tracer(tracer), _live_plane(
        args, mode="stream", scenario=args.scenario, seed=args.seed,
        jobs=jobs, experiments=wanted, resume=bool(args.resume),
    ), tracer.span(
        "reproduce", scenario=args.scenario, seed=args.seed, jobs=jobs, stream=True
    ):
        platform = scenario_platform(
            args.scenario, args.seed, jobs=jobs, cache=cache, timings=timings
        )
        engine = StreamEngine(
            platform,
            longterm_config=scenario.longterm_config(),
            shortterm_config=scenario.shortterm_config(),
            experiments=wanted,
            config=stream_config,
            checkpoint_dir=args.checkpoint_dir,
        )
        results = engine.run(resume=args.resume)

    for result in results:
        print(result.render())
        print()
    if args.timings:
        print("== stage timings ==")
        print(timings.render())

    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            json.dump(tracer.to_chrome_trace(), handle, indent=2)
            handle.write("\n")
        _LOG.info("trace.written", path=args.trace_out,
                  spans=len(tracer.spans))
    if args.run_report:
        platform_config = scenario.platform_config(args.seed)
        phases = required_phases(wanted)
        configs = {"platform": platform_config}
        if phases["longterm"]:
            configs["longterm"] = (platform_config, scenario.longterm_config())
        manifest = obs_runinfo.build_manifest(
            scenario=args.scenario,
            seed=args.seed,
            jobs=jobs,
            experiments=wanted,
            configs=configs,
            registry=registry,
            tracer=tracer,
            extra={
                "stream": {
                    "enabled": True,
                    "experiments": wanted,
                    "phases": phases,
                    "checkpoint_fingerprint": engine.fingerprint,
                    "checkpoint_schema": CHECKPOINT_SCHEMA_VERSION,
                    "shards": jobs,
                    "window_rounds": stream_config.window_rounds,
                    "resumed": bool(args.resume),
                }
            },
        )
        obs_runinfo.write_run_report(args.run_report, manifest)
        _LOG.info("run_report.written", path=args.run_report)
    _LOG.info("reproduce.done", experiments=len(results))
    return 0


def _command_service_run(args: argparse.Namespace) -> int:
    """``service run``: the always-on campaign supervisor.

    Loads the JSON service config, applies CLI overrides, and hands
    control to :class:`~repro.service.supervisor.ServiceSupervisor` --
    which installs its own SIGTERM/SIGINT handlers on the event loop so
    a kill drains every campaign to a checkpoint boundary instead of
    aborting mid-unit.  The ``_live_plane`` SIGTERM handler is *not*
    used here: it re-raises the signal after flushing, which would
    bypass the drain.
    """
    import dataclasses

    from repro.obs.live import FlightRecorder
    from repro.service import ServiceSupervisor, service_config_from_dict

    try:
        with open(args.config) as handle:
            payload = json.load(handle)
        config = service_config_from_dict(payload)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: bad service config {args.config!r}: {exc}",
              file=sys.stderr)
        return 2

    overrides = {}
    if args.checkpoint_dir is not None:
        overrides["checkpoint_dir"] = args.checkpoint_dir
    if args.time_scale is not None:
        overrides["time_scale"] = args.time_scale
    if args.port is not None:
        overrides["port"] = args.port
    if args.host is not None:
        overrides["host"] = args.host
    if args.drain_after is not None:
        overrides["drain_after_s"] = args.drain_after
    if args.live_interval is not None:
        overrides["live_interval_s"] = args.live_interval
    if overrides:
        try:
            config = dataclasses.replace(config, **overrides)
        except ValueError as exc:
            print(f"error: bad service override: {exc}", file=sys.stderr)
            return 2

    plane_active = _install_fault_plane(args)
    if plane_active is None:
        return 2
    if plane_active and config.supervision is None:
        # A chaos run without explicit supervision still self-heals.
        from repro.faults.plane import SupervisionPolicy

        config = dataclasses.replace(config, supervision=SupervisionPolicy())

    registry = get_registry()
    registry.reset()
    recorder = None
    if args.live_out:
        recorder = FlightRecorder(
            interval_seconds=config.live_interval_s, out_path=args.live_out
        )

    _LOG.info(
        "service.start", config=args.config,
        campaigns=",".join(c.name for c in config.campaigns),
        time_scale=config.time_scale,
    )
    supervisor = ServiceSupervisor(config, recorder=recorder)
    if recorder is not None:
        recorder.start()
    try:
        outcomes = supervisor.run()
    except BaseException:
        if recorder is not None:
            recorder.stop(reason="crash")
        raise
    else:
        if recorder is not None:
            recorder.stop(reason="complete")

    for name in sorted(outcomes):
        print(f"{name}: {outcomes[name]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    logging_options = argparse.ArgumentParser(add_help=False)
    logging_options.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error"],
        help="log verbosity on stderr (default: $REPRO_LOG_LEVEL or warning)",
    )
    logging_options.add_argument(
        "--log-json", action="store_true",
        help="emit JSON-lines logs instead of human-readable ones",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="A Server-to-Server View of the Internet -- reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser(
        "info", parents=[logging_options], help="summarize a scenario's world"
    )
    _add_scenario_argument(info)
    info.set_defaults(handler=_command_info)

    trace = commands.add_parser(
        "trace", parents=[logging_options], help="run one traceroute"
    )
    _add_scenario_argument(trace)
    trace.add_argument("--src", type=int, required=True, help="source server id")
    trace.add_argument("--dst", type=int, required=True, help="destination server id")
    trace.add_argument("--ipv6", action="store_true", help="probe over IPv6")
    trace.add_argument("--time", type=float, default=12.0,
                       help="measurement time in hours since the epoch")
    trace.set_defaults(handler=_command_trace)

    reproduce = commands.add_parser(
        "reproduce", parents=[logging_options],
        help="run table/figure experiments",
    )
    _add_scenario_argument(reproduce)
    reproduce.add_argument(
        "--experiments", default="",
        help="comma-separated experiment ids (default: all); "
             f"valid: {', '.join(_EXPERIMENT_NAMES)}",
    )
    reproduce.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for dataset/route building "
             "(0 = all cores; default: 1)",
    )
    reproduce.add_argument(
        "--timings", action="store_true",
        help="print a per-stage wall-time table after the reports",
    )
    reproduce.add_argument(
        "--cache", action="store_true",
        help="cache built platforms/datasets on disk "
             "(~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    reproduce.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (implies --cache)",
    )
    reproduce.add_argument(
        "--refresh-cache", action="store_true",
        help="with --cache: drop existing entries and rebuild",
    )
    reproduce.add_argument(
        "--stream", action="store_true",
        help="serve the reports from the bounded-memory streaming engine "
             "(experiments limited to fig3, fig6, congestion-norm, "
             "localization; --jobs controls source shards)",
    )
    reproduce.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="with --stream: snapshot operator state here for resumable runs",
    )
    reproduce.add_argument(
        "--resume", action="store_true",
        help="with --stream --checkpoint-dir: resume from the last snapshot "
             "(bit-identical to an uninterrupted run)",
    )
    reproduce.add_argument(
        "--serve-metrics", nargs="?", type=int, const=_DEFAULT_METRICS_PORT,
        default=None,
        metavar="PORT",
        help="serve live telemetry over HTTP while the run is active: "
             "Prometheus /metrics, JSON /status, /health "
             f"(default port: {_DEFAULT_METRICS_PORT}; 0 = ephemeral)",
    )
    reproduce.add_argument(
        "--live-out", default=None, metavar="FILE",
        help="stream flight-recorder samples to FILE as JSON-lines "
             "(tail it with python -m repro.obs.top --follow FILE)",
    )
    reproduce.add_argument(
        "--live-interval", type=float, default=1.0, metavar="SECONDS",
        help="flight-recorder sampling interval (default: 1.0)",
    )
    reproduce.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the run's span tree as Chrome trace-event JSON "
             "(view in https://ui.perfetto.dev)",
    )
    reproduce.add_argument(
        "--run-report", default=None, metavar="FILE",
        help="write a run manifest: config fingerprints, metric snapshot, "
             "span summary",
    )
    reproduce.add_argument(
        "--faults-config", default=None, metavar="FILE",
        help="with --stream: inject a deterministic fault schedule from "
             "this JSON config (auto-enables shard supervision)",
    )
    reproduce.add_argument(
        "--faults-seed", type=int, default=None, metavar="N",
        help="override the faults config's schedule seed",
    )
    reproduce.set_defaults(handler=_command_reproduce)

    service = commands.add_parser(
        "service", help="the always-on measurement campaign service"
    )
    service_commands = service.add_subparsers(
        dest="service_command", required=True
    )
    service_run = service_commands.add_parser(
        "run", parents=[logging_options],
        help="run campaigns until finished, drained, or SIGTERM",
        description="Run the campaign supervisor from a JSON service "
                    "config.  SIGTERM/SIGINT drain gracefully: every "
                    "campaign checkpoints at its next unit boundary, and "
                    "a restart resumes byte-identically.",
    )
    service_run.add_argument(
        "--config", required=True, metavar="FILE",
        help="JSON service config (campaigns, scenario, durability knobs)",
    )
    service_run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="override the config's checkpoint directory",
    )
    service_run.add_argument(
        "--time-scale", type=float, default=None, metavar="FACTOR",
        help="override the config's schedule compression factor "
             "(scheduling only; results are unaffected)",
    )
    service_run.add_argument(
        "--host", default=None, metavar="HOST",
        help="override the control/metrics bind host",
    )
    service_run.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="override the control/metrics port (0 = ephemeral)",
    )
    service_run.add_argument(
        "--drain-after", type=float, default=None, metavar="SECONDS",
        help="drain the whole service after this many seconds "
             "(CI smoke runs)",
    )
    service_run.add_argument(
        "--live-out", default=None, metavar="FILE",
        help="stream flight-recorder samples to FILE as JSON-lines "
             "(tail it with python -m repro.obs.top --follow FILE)",
    )
    service_run.add_argument(
        "--live-interval", type=float, default=None, metavar="SECONDS",
        help="override the flight-recorder sampling interval",
    )
    service_run.add_argument(
        "--faults-config", default=None, metavar="FILE",
        help="inject a deterministic fault schedule from this JSON config "
             "(auto-enables shard supervision when the config sets none)",
    )
    service_run.add_argument(
        "--faults-seed", type=int, default=None, metavar="N",
        help="override the faults config's schedule seed",
    )
    service_run.set_defaults(handler=_command_service_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    level = args.log_level
    if (
        level is None
        and args.log_json
        and not os.environ.get(obs_log.LEVEL_ENV)
    ):
        # Asking for machine-readable logs without a level means "give me
        # the run log", not "warnings only".
        level = "info"
    obs_log.configure(level=level, json_mode=True if args.log_json else None)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
