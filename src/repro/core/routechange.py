"""Routing-change analysis: changes, lifetimes, prevalence (Section 4).

The unit of analysis is the trace timeline.  Key definitions from the
paper, all implemented here:

- a **change** happens when two consecutive (usable) traceroutes report AS
  paths with non-zero edit distance, and is assumed to happen at the later
  traceroute's time;
- the **lifetime** of an AS path is the total time it was observed, each
  observation extending it by one measurement period (3 hours in the
  long-term campaign) -- observations need not be contiguous;
- the **prevalence** of a path is its lifetime as a fraction of the
  timeline's total observed lifetime; the **popular** path is the one with
  the longest lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.editdist import edit_distance
from repro.datasets.timeline import TraceTimeline
from repro.net.asn import ASN

__all__ = [
    "ChangeEvent",
    "PathStats",
    "change_count",
    "change_events",
    "path_lifetimes",
    "path_prevalence",
    "popular_path",
    "analyze_timeline",
    "as_path_pair_count",
]


@dataclass(frozen=True)
class ChangeEvent:
    """One AS-path change within a timeline."""

    time_hours: float
    old_path: Tuple[ASN, ...]
    new_path: Tuple[ASN, ...]
    distance: int


@dataclass
class PathStats:
    """Per-timeline routing statistics (one protocol, one direction)."""

    pair: Tuple[int, int]
    unique_paths: int
    changes: int
    lifetimes_hours: Dict[int, float]
    prevalence: Dict[int, float]
    popular_path_id: Optional[int]
    popular_prevalence: float


def _usable_ids_and_times(timeline: TraceTimeline) -> Tuple[np.ndarray, np.ndarray]:
    mask = timeline.usable_mask()
    return timeline.path_id[mask], timeline.times_hours[mask]


def change_count(timeline: TraceTimeline) -> int:
    """Number of AS-path changes between consecutive usable traceroutes."""
    ids, _ = _usable_ids_and_times(timeline)
    if ids.size < 2:
        return 0
    return int(np.count_nonzero(ids[1:] != ids[:-1]))


def change_events(timeline: TraceTimeline) -> List[ChangeEvent]:
    """All change events, with edit distances, in time order."""
    ids, times = _usable_ids_and_times(timeline)
    events: List[ChangeEvent] = []
    for position in np.nonzero(ids[1:] != ids[:-1])[0]:
        old = timeline.paths[int(ids[position])]
        new = timeline.paths[int(ids[position + 1])]
        events.append(
            ChangeEvent(
                time_hours=float(times[position + 1]),
                old_path=old,
                new_path=new,
                distance=edit_distance(old, new),
            )
        )
    return events


def path_lifetimes(timeline: TraceTimeline, period_hours: Optional[float] = None) -> Dict[int, float]:
    """Lifetime (hours) per observed path id.

    Each observation is assumed to persist for one measurement period
    (Section 4.1's "computing lifetimes"); the period defaults to the
    timeline's grid spacing.
    """
    if period_hours is None:
        times = timeline.times_hours
        period_hours = float(times[1] - times[0]) if times.size > 1 else 3.0
    ids, _ = _usable_ids_and_times(timeline)
    lifetimes: Dict[int, float] = {}
    for path_id, count in zip(*np.unique(ids, return_counts=True)):
        if path_id < 0:
            continue
        lifetimes[int(path_id)] = float(count) * period_hours
    return lifetimes


def path_prevalence(timeline: TraceTimeline) -> Dict[int, float]:
    """Prevalence (fraction of observed lifetime) per path id."""
    lifetimes = path_lifetimes(timeline)
    total = sum(lifetimes.values())
    if total <= 0:
        return {}
    return {path_id: lifetime / total for path_id, lifetime in lifetimes.items()}


def popular_path(timeline: TraceTimeline) -> Tuple[Optional[int], float]:
    """The path with the longest lifetime, and its prevalence."""
    prevalence = path_prevalence(timeline)
    if not prevalence:
        return None, 0.0
    path_id = max(prevalence, key=lambda pid: (prevalence[pid], -pid))
    return path_id, prevalence[path_id]


def analyze_timeline(timeline: TraceTimeline) -> PathStats:
    """All per-timeline routing statistics in one pass."""
    lifetimes = path_lifetimes(timeline)
    prevalence = path_prevalence(timeline)
    popular_id, popular_prev = popular_path(timeline)
    return PathStats(
        pair=timeline.pair,
        unique_paths=len(lifetimes),
        changes=change_count(timeline),
        lifetimes_hours=lifetimes,
        prevalence=prevalence,
        popular_path_id=popular_id,
        popular_prevalence=popular_prev,
    )


def as_path_pair_count(forward: TraceTimeline, reverse: TraceTimeline) -> int:
    """Unique (forward, reverse) AS-path pairs for a server pair (Fig 2b).

    Forward and reverse traceroutes taken in the same measurement round are
    paired; rounds where either direction is unusable are skipped.
    """
    if forward.times_hours.size != reverse.times_hours.size:
        raise ValueError("forward and reverse timelines use different grids")
    both = forward.usable_mask() & reverse.usable_mask()
    fwd_ids = forward.path_id[both]
    rev_ids = reverse.path_id[both]
    if fwd_ids.size == 0:
        return 0
    combined = fwd_ids.astype(np.int64) * (max(len(reverse.paths), 1) + 1) + rev_ids
    return int(np.unique(combined).size)
