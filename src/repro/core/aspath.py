"""AS-path utilities shared across the analysis pipeline."""

from __future__ import annotations

from typing import Sequence

from repro.measurement.realization import UNKNOWN_ASN
from repro.net.asn import ASN

__all__ = ["has_as_loop", "has_unknown", "path_to_string", "UNKNOWN_ASN"]


def has_as_loop(path: Sequence[ASN]) -> bool:
    """Whether an (already collapsed) AS path visits any AS twice.

    Unknown-hop tokens never count as loops: two separate unmappable hops
    are not evidence the path revisited a network.
    """
    seen = set()
    for asn in path:
        if asn == UNKNOWN_ASN:
            continue
        if asn in seen:
            return True
        seen.add(asn)
    return False


def has_unknown(path: Sequence[ASN]) -> bool:
    """Whether the path contains an unmappable-hop token."""
    return UNKNOWN_ASN in path


def path_to_string(path: Sequence[ASN]) -> str:
    """Human-readable rendering, e.g. ``"AS100 > AS205 > ? > AS318"``."""
    return " > ".join("?" if asn == UNKNOWN_ASN else f"AS{asn}" for asn in path)
