"""Dataset completeness summary (Table 1).

Table 1 reports, over *complete* traceroutes (those that reached their
destination), the split between traceroutes with complete AS-level data,
missing AS-level data (unmappable addresses) and missing IP-level data
(unresponsive hops).  AS-loop traceroutes, which the paper excludes from
analyses, are reported alongside (Section 2.1 gives 2.16% / 5.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.datasets.longterm import LongTermDataset
from repro.measurement.traceroute import TraceOutcome
from repro.net.ip import IPVersion

__all__ = ["VersionSummary", "dataset_summary"]


@dataclass
class VersionSummary:
    """Completeness accounting for one protocol."""

    collected: int
    reached: int
    complete_as: int
    missing_as: int
    missing_ip: int
    loops: int

    @property
    def reached_fraction(self) -> float:
        """Fraction of collected traceroutes that reached the destination."""
        return self.reached / self.collected if self.collected else float("nan")

    def fraction_of_reached(self, count: int) -> float:
        """Helper: share of the reached population."""
        return count / self.reached if self.reached else float("nan")

    @property
    def complete_as_fraction(self) -> float:
        """Table 1 row 1 (e.g. 70.30% for IPv4)."""
        return self.fraction_of_reached(self.complete_as)

    @property
    def missing_as_fraction(self) -> float:
        """Table 1 row 2 (e.g. 1.58% for IPv4)."""
        return self.fraction_of_reached(self.missing_as)

    @property
    def missing_ip_fraction(self) -> float:
        """Table 1 row 3 (e.g. 28.12% for IPv4)."""
        return self.fraction_of_reached(self.missing_ip)

    @property
    def loop_fraction(self) -> float:
        """AS-loop share of reached traceroutes (excluded from analyses)."""
        return self.fraction_of_reached(self.loops)


def dataset_summary(dataset: LongTermDataset) -> Dict[IPVersion, VersionSummary]:
    """Tally Table 1's rows over a long-term dataset."""
    summaries: Dict[IPVersion, VersionSummary] = {}
    for version in (IPVersion.V4, IPVersion.V6):
        collected = reached = complete = missing_as = missing_ip = loops = 0
        for timeline in dataset.by_version(version):
            outcomes = timeline.outcome
            collected += outcomes.size
            counts = {
                int(value): int(count)
                for value, count in zip(*np.unique(outcomes, return_counts=True))
            }
            incomplete = counts.get(int(TraceOutcome.INCOMPLETE), 0)
            reached += outcomes.size - incomplete
            complete += counts.get(int(TraceOutcome.COMPLETE), 0)
            missing_as += counts.get(int(TraceOutcome.MISSING_AS), 0)
            missing_ip += counts.get(int(TraceOutcome.MISSING_IP), 0)
            loops += counts.get(int(TraceOutcome.LOOP), 0)
        summaries[version] = VersionSummary(
            collected=collected,
            reached=reached,
            complete_as=complete,
            missing_as=missing_as,
            missing_ip=missing_ip,
            loops=loops,
        )
    return summaries
