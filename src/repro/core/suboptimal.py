"""Prevalence of sub-optimal AS paths at RTT thresholds (Figure 6).

For each timeline and each threshold (the paper uses 20, 50 and 100 ms),
sum the prevalence of every sub-optimal path whose baseline (10th
percentile) RTT exceeds the best path's by at least the threshold.  The
figure is the ECDF of these per-timeline prevalence sums.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.core.ecdf import ECDF
from repro.core.routechange import path_prevalence
from repro.core.rttstats import rtt_increase_from_best
from repro.datasets.timeline import TraceTimeline

__all__ = ["timeline_suboptimal_prevalence", "suboptimal_prevalence"]

DEFAULT_THRESHOLDS_MS: Tuple[float, ...] = (20.0, 50.0, 100.0)


def timeline_suboptimal_prevalence(
    timeline: TraceTimeline,
    thresholds_ms: Sequence[float] = DEFAULT_THRESHOLDS_MS,
    q: float = 10.0,
) -> Dict[float, float]:
    """Summed prevalence of sub-optimal paths per threshold, one timeline.

    A timeline with a single observed path scores 0 at every threshold.
    """
    increases = rtt_increase_from_best(timeline, q=q)
    prevalence = path_prevalence(timeline)
    result: Dict[float, float] = {}
    for threshold in thresholds_ms:
        result[threshold] = sum(
            prevalence.get(path_id, 0.0)
            for path_id, increase in increases.items()
            if increase >= threshold
        )
    return result


def suboptimal_prevalence(
    timelines: Iterable[TraceTimeline],
    thresholds_ms: Sequence[float] = DEFAULT_THRESHOLDS_MS,
    q: float = 10.0,
) -> Dict[float, ECDF]:
    """The Figure 6 ECDFs: per-timeline prevalence sums, per threshold."""
    collected: Dict[float, list] = {threshold: [] for threshold in thresholds_ms}
    for timeline in timelines:
        per_threshold = timeline_suboptimal_prevalence(timeline, thresholds_ms, q=q)
        for threshold, value in per_threshold.items():
            collected[threshold].append(value)
    return {threshold: ECDF(values) for threshold, values in collected.items()}
