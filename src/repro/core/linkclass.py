"""Classifying congested links (Section 5.3's reporting).

A localized congested link is a pair of hop addresses.  With the ownership
inference the link becomes:

- **internal** when both routers have the same resolved owner,
- **interconnection** when they resolve to different ASes, further typed as
  ``p2p`` or ``c2p`` from the relationship table,
- **unknown** when either side is unresolved.

Interconnection links are additionally split into private interconnects and
public (IXP) peering by checking the interface addresses against a list of
known IXP peering-LAN prefixes (the real-world analogue is PeeringDB/IXP
directories).  Because many server pairs cross the same link, the
classifier also tracks per-link crossing weights -- the paper's "when we
weight the links by the number of server-to-server paths that cross them".
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ownership import OwnershipInference
from repro.net.asn import ASN, ASRelationship, RelationshipTable
from repro.net.ip import IPAddress
from repro.net.prefix import Prefix

__all__ = ["LinkClass", "LinkMediumClass", "ClassifiedLink", "LinkClassifier"]


class LinkClass(enum.Enum):
    """Where a link sits relative to AS boundaries."""

    INTERNAL = "internal"
    INTERCONNECTION_P2P = "p2p"
    INTERCONNECTION_C2P = "c2p"
    UNKNOWN = "unknown"

    @property
    def is_interconnection(self) -> bool:
        """Whether the link crosses an AS boundary."""
        return self in (LinkClass.INTERCONNECTION_P2P, LinkClass.INTERCONNECTION_C2P)


class LinkMediumClass(enum.Enum):
    """Inferred physical realization of an interconnection."""

    PRIVATE = "private"
    PUBLIC_IXP = "public-ixp"
    NOT_APPLICABLE = "n/a"


@dataclass
class ClassifiedLink:
    """One congested link with its classification and crossing weight."""

    near: Optional[IPAddress]
    far: IPAddress
    link_class: LinkClass
    medium: LinkMediumClass
    owner_near: Optional[ASN]
    owner_far: Optional[ASN]
    crossings: int = 1


@dataclass
class LinkClassifier:
    """Accumulates localized congested links and classifies them."""

    relationships: RelationshipTable
    ownership: OwnershipInference
    ixp_prefixes: Sequence[Prefix] = ()
    _links: Dict[Tuple[Optional[IPAddress], IPAddress], ClassifiedLink] = field(
        default_factory=dict
    )

    def _in_ixp_space(self, address: Optional[IPAddress]) -> bool:
        if address is None:
            return False
        return any(prefix.contains(address) for prefix in self.ixp_prefixes)

    def _classify(
        self, near: Optional[IPAddress], far: IPAddress
    ) -> Tuple[LinkClass, LinkMediumClass, Optional[ASN], Optional[ASN]]:
        owner_near = self.ownership.owner(near) if near is not None else None
        owner_far = self.ownership.owner(far)
        if owner_near is None or owner_far is None:
            return LinkClass.UNKNOWN, LinkMediumClass.NOT_APPLICABLE, owner_near, owner_far
        if owner_near == owner_far:
            return LinkClass.INTERNAL, LinkMediumClass.NOT_APPLICABLE, owner_near, owner_far
        relationship = self.relationships.get(owner_near, owner_far)
        if relationship is None:
            return LinkClass.UNKNOWN, LinkMediumClass.NOT_APPLICABLE, owner_near, owner_far
        if relationship is ASRelationship.PEER or relationship is ASRelationship.SIBLING:
            link_class = LinkClass.INTERCONNECTION_P2P
        else:
            link_class = LinkClass.INTERCONNECTION_C2P
        medium = (
            LinkMediumClass.PUBLIC_IXP
            if self._in_ixp_space(near) or self._in_ixp_space(far)
            else LinkMediumClass.PRIVATE
        )
        return link_class, medium, owner_near, owner_far

    def add(self, near: Optional[IPAddress], far: IPAddress) -> ClassifiedLink:
        """Register one localized congested link crossing.

        Re-adding the same (near, far) link increments its crossing weight,
        so popular congested links accumulate the pairs that see them.
        """
        key = (near, far)
        existing = self._links.get(key)
        if existing is not None:
            existing.crossings += 1
            return existing
        link_class, medium, owner_near, owner_far = self._classify(near, far)
        link = ClassifiedLink(
            near=near,
            far=far,
            link_class=link_class,
            medium=medium,
            owner_near=owner_near,
            owner_far=owner_far,
        )
        self._links[key] = link
        return link

    def links(self) -> List[ClassifiedLink]:
        """All classified links, by descending crossing weight."""
        return sorted(
            self._links.values(), key=lambda link: (-link.crossings, link.far.value)
        )

    def counts(self) -> Dict[LinkClass, int]:
        """Distinct congested links per class."""
        result: Dict[LinkClass, int] = defaultdict(int)
        for link in self._links.values():
            result[link.link_class] += 1
        return dict(result)

    def weighted_counts(self) -> Dict[LinkClass, int]:
        """Crossing-weighted totals per class (the paper's popularity view)."""
        result: Dict[LinkClass, int] = defaultdict(int)
        for link in self._links.values():
            result[link.link_class] += link.crossings
        return dict(result)

    def medium_counts(self) -> Dict[LinkMediumClass, int]:
        """Distinct interconnection links by inferred medium."""
        result: Dict[LinkMediumClass, int] = defaultdict(int)
        for link in self._links.values():
            if link.link_class.is_interconnection:
                result[link.medium] += 1
        return dict(result)
