"""Empirical cumulative distribution functions.

Every other figure in the paper is an ECDF; this tiny class standardizes
how they are computed, evaluated and rendered across the analyses,
benchmarks and reports.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

__all__ = ["ECDF"]


class ECDF:
    """An empirical CDF over a finite sample.

    NaNs in the input are dropped.  Evaluation uses the right-continuous
    convention: ``F(x) = P(X <= x)``.
    """

    def __init__(self, values: Iterable[float]) -> None:
        data = np.asarray(list(values), dtype=float)
        data = data[~np.isnan(data)]
        self._sorted = np.sort(data)

    def __len__(self) -> int:
        return int(self._sorted.size)

    @property
    def values(self) -> np.ndarray:
        """The sorted sample."""
        return self._sorted

    def at(self, x: float) -> float:
        """``P(X <= x)``; NaN for an empty sample."""
        if self._sorted.size == 0:
            return float("nan")
        return float(np.searchsorted(self._sorted, x, side="right") / self._sorted.size)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``); NaN for an empty sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._sorted.size == 0:
            return float("nan")
        return float(np.quantile(self._sorted, q))

    def tail_fraction(self, x: float) -> float:
        """``P(X >= x)``; NaN for an empty sample."""
        if self._sorted.size == 0:
            return float("nan")
        return float(
            (self._sorted.size - np.searchsorted(self._sorted, x, side="left"))
            / self._sorted.size
        )

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """Down-sampled ``(x, F(x))`` points for plotting or reporting."""
        if self._sorted.size == 0:
            return []
        count = self._sorted.size
        positions = np.unique(
            np.linspace(0, count - 1, num=min(max_points, count)).astype(int)
        )
        return [
            (float(self._sorted[position]), float((position + 1) / count))
            for position in positions
        ]
