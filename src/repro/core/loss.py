"""Packet-loss analysis: the follow-up the paper's conclusion calls for.

Section 8: "We encourage follow-up work focusing on other characteristics,
viz., available bandwidth, packet loss."  With the congestion-coupled loss
substrate in place, the natural first analysis mirrors the RTT one: does
probe loss show the same diurnal structure congestion does, and do the two
signals point at the same pairs?

The detector works on a ping timeline's loss indicator series: hourly loss
profiles, a busy-vs-quiet loss lift, and the correlation between hourly
loss rate and hourly median RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.datasets.timeline import PingTimeline

__all__ = [
    "hourly_loss_profile",
    "loss_rtt_correlation",
    "LossVerdict",
    "assess_loss",
    "loss_population_summary",
]

HOURS_PER_DAY = 24


def hourly_loss_profile(timeline: PingTimeline) -> np.ndarray:
    """Loss rate per hour-of-day bin (NaN for unsampled bins)."""
    hour_of_day = np.mod(timeline.times_hours, float(HOURS_PER_DAY)).astype(int)
    lost = np.isnan(timeline.rtt_ms)
    profile = np.full(HOURS_PER_DAY, np.nan)
    for hour in range(HOURS_PER_DAY):
        mask = hour_of_day == hour
        if mask.any():
            profile[hour] = float(lost[mask].mean())
    return profile


def _hourly_rtt_profile(timeline: PingTimeline) -> np.ndarray:
    hour_of_day = np.mod(timeline.times_hours, float(HOURS_PER_DAY)).astype(int)
    profile = np.full(HOURS_PER_DAY, np.nan)
    for hour in range(HOURS_PER_DAY):
        values = timeline.rtt_ms[(hour_of_day == hour)]
        finite = values[np.isfinite(values)]
        if finite.size:
            profile[hour] = float(np.median(finite))
    return profile


def loss_rtt_correlation(timeline: PingTimeline) -> float:
    """Pearson correlation between hourly loss rate and hourly median RTT.

    A strongly positive value means losses concentrate in the same busy
    hours that lift the RTT -- the congestion signature; near zero means
    loss is background noise.  NaN when either profile is degenerate.
    """
    loss = hourly_loss_profile(timeline)
    rtt = _hourly_rtt_profile(timeline)
    mask = np.isfinite(loss) & np.isfinite(rtt)
    if mask.sum() < 12:
        return float("nan")
    loss = loss[mask]
    rtt = rtt[mask]
    if loss.std() <= 0 or rtt.std() <= 0:
        return float("nan")
    return float(np.corrcoef(loss, rtt)[0, 1])


@dataclass(frozen=True)
class LossVerdict:
    """Loss characteristics of one pair.

    ``busy_hour_loss`` and ``quiet_hour_loss`` pool samples over the six
    hours of day with the highest median RTT versus the remaining hours
    (pooling keeps per-bin sampling noise out of the comparison).
    """

    loss_rate: float
    busy_hour_loss: float
    quiet_hour_loss: float
    loss_rtt_correlation: float

    @property
    def diurnal_loss(self) -> bool:
        """Whether loss concentrates in the RTT-busy hours."""
        return (
            np.isfinite(self.busy_hour_loss)
            and np.isfinite(self.quiet_hour_loss)
            and self.busy_hour_loss >= 2.0 * max(self.quiet_hour_loss, 1e-4)
            and self.busy_hour_loss >= 0.015
        )


BUSY_HOURS = 6
"""Hours of day counted as the busy period (by median RTT)."""


def assess_loss(timeline: PingTimeline) -> LossVerdict:
    """Assess one ping timeline's loss behaviour."""
    lost = np.isnan(timeline.rtt_ms)
    rtt_profile = _hourly_rtt_profile(timeline)
    hour_of_day = np.mod(timeline.times_hours, float(HOURS_PER_DAY)).astype(int)
    order = np.argsort(np.nan_to_num(rtt_profile, nan=-np.inf))
    busy_hours = set(int(h) for h in order[-BUSY_HOURS:])
    busy_mask = np.isin(hour_of_day, sorted(busy_hours))
    busy = float(lost[busy_mask].mean()) if busy_mask.any() else float("nan")
    quiet = float(lost[~busy_mask].mean()) if (~busy_mask).any() else float("nan")
    return LossVerdict(
        loss_rate=float(lost.mean()) if lost.size else float("nan"),
        busy_hour_loss=busy,
        quiet_hour_loss=quiet,
        loss_rtt_correlation=loss_rtt_correlation(timeline),
    )


@dataclass
class LossPopulationSummary:
    """Aggregate loss statistics over a ping population."""

    pairs: int
    median_loss_rate: float
    diurnal_loss_pairs: int
    median_correlation_diurnal: float

    @property
    def diurnal_loss_fraction(self) -> float:
        """Fraction of pairs with busy-hour-concentrated loss."""
        return self.diurnal_loss_pairs / self.pairs if self.pairs else float("nan")


def loss_population_summary(
    timelines: Iterable[PingTimeline],
    min_samples: int = 300,
) -> LossPopulationSummary:
    """Summarize loss behaviour over many pairs."""
    rates: List[float] = []
    correlations: List[float] = []
    diurnal = 0
    pairs = 0
    for timeline in timelines:
        if timeline.times_hours.size < min_samples:
            continue
        verdict = assess_loss(timeline)
        pairs += 1
        rates.append(verdict.loss_rate)
        if verdict.diurnal_loss:
            diurnal += 1
            if np.isfinite(verdict.loss_rtt_correlation):
                correlations.append(verdict.loss_rtt_correlation)
    return LossPopulationSummary(
        pairs=pairs,
        median_loss_rate=float(np.median(rates)) if rates else float("nan"),
        diurnal_loss_pairs=diurnal,
        median_correlation_diurnal=(
            float(np.median(correlations)) if correlations else float("nan")
        ),
    )
