"""RTT inflation over the speed-of-light bound (Section 6, Figure 10b).

For each endpoint pair, inflation is ``median RTT / cRTT`` where ``cRTT``
is the round-trip time of light in free space over the great-circle
distance between the servers' (ground truth) locations.  The paper reports
median inflation around 3.0 (IPv4) / 3.1 (IPv6), with US-US pairs more
inflated than pairs whose path involves transcontinental links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.ecdf import ECDF
from repro.datasets.longterm import LongTermDataset
from repro.net.geo import crtt_ms
from repro.net.ip import IPVersion

__all__ = ["inflation_ratio", "PairInflation", "pair_inflation", "InflationStudy"]

MIN_CRTT_MS = 1.5
"""Pairs closer than this round-trip bound (sub-225 km) are skipped: the
ratio explodes and says nothing about the core."""


def inflation_ratio(median_rtt_ms: float, crtt: float) -> Optional[float]:
    """``median RTT / cRTT``; ``None`` when cRTT is below the floor."""
    if not np.isfinite(median_rtt_ms) or crtt < MIN_CRTT_MS:
        return None
    return float(median_rtt_ms / crtt)


@dataclass(frozen=True)
class PairInflation:
    """Inflation of one directed pair under one protocol."""

    src_server_id: int
    dst_server_id: int
    version: IPVersion
    median_rtt_ms: float
    crtt_ms: float
    ratio: float
    us_to_us: bool
    transcontinental: bool


@dataclass
class InflationStudy:
    """All pair inflations plus the Figure 10b groupings."""

    pairs: List[PairInflation]

    def ecdf(
        self,
        version: IPVersion,
        us_only: bool = False,
        transcontinental_only: bool = False,
    ) -> ECDF:
        """ECDF of inflation ratios for one protocol and grouping."""
        values = [
            pair.ratio
            for pair in self.pairs
            if pair.version is version
            and (not us_only or pair.us_to_us)
            and (not transcontinental_only or pair.transcontinental)
        ]
        return ECDF(values)

    def median(self, version: IPVersion) -> float:
        """Median inflation for one protocol."""
        return self.ecdf(version).quantile(0.5)


def pair_inflation(dataset: LongTermDataset) -> InflationStudy:
    """Compute per-pair inflation over a long-term dataset.

    Server ground-truth locations come from the dataset's server index; the
    cRTT uses free-space light speed, exactly as the paper defines it.
    """
    results: List[PairInflation] = []
    cache: Dict[Tuple[int, int], float] = {}

    for (src_id, dst_id, version), timeline in dataset.timelines.items():
        src = dataset.servers.get(src_id)
        dst = dataset.servers.get(dst_id)
        if src is None or dst is None:
            continue
        key = (min(src_id, dst_id), max(src_id, dst_id))
        if key not in cache:
            cache[key] = crtt_ms(src.city, dst.city)
        crtt = cache[key]
        usable = timeline.usable_mask() & np.isfinite(timeline.rtt_ms)
        if not usable.any():
            continue
        median_rtt = float(np.median(timeline.rtt_ms[usable]))
        ratio = inflation_ratio(median_rtt, crtt)
        if ratio is None:
            continue
        results.append(
            PairInflation(
                src_server_id=src_id,
                dst_server_id=dst_id,
                version=version,
                median_rtt_ms=median_rtt,
                crtt_ms=crtt,
                ratio=ratio,
                us_to_us=src.city.country == "US" and dst.city.country == "US",
                transcontinental=src.city.continent != dst.city.continent,
            )
        )
    return InflationStudy(pairs=results)
