"""Lifetime x RTT-increase decile heatmaps (Figures 4 and 5).

Both axes are binned by the *deciles of the pooled distributions*: the
X axis by AS-path lifetime, the Y axis by the increase in the chosen RTT
percentile over the best path.  Each cell holds the percentage of all
(sub-optimal path, timeline) points falling in it, so all cells sum to
100%.  The paper's headline readings -- short-lived paths dominate the
large-increase rows -- come straight from the cell table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.routechange import path_lifetimes
from repro.core.rttstats import rtt_increase_from_best
from repro.datasets.timeline import TraceTimeline

__all__ = ["DecileHeatmap", "collect_lifetime_increase_points", "build_heatmap"]


@dataclass
class DecileHeatmap:
    """A decile-binned 2D histogram.

    Attributes:
        x_edges / y_edges: Bin edges (length ``bins + 1``), from the pooled
            decile computation.
        cells: Percentages, shape ``(y_bins, x_bins)``; row 0 is the lowest
            increase decile (the paper's heatmaps draw it at the bottom).
    """

    x_edges: np.ndarray
    y_edges: np.ndarray
    cells: np.ndarray

    def row_sums(self) -> np.ndarray:
        """Percentage of points per increase decile (sums along rows)."""
        return self.cells.sum(axis=1)

    def column_sums(self) -> np.ndarray:
        """Percentage of points per lifetime decile."""
        return self.cells.sum(axis=0)

    def tail_increase_percent(self, row_from: int) -> float:
        """Total percentage in increase-decile rows ``row_from`` and above."""
        return float(self.cells[row_from:, :].sum())


def collect_lifetime_increase_points(
    timelines: Iterable[TraceTimeline], q: float
) -> List[Tuple[float, float]]:
    """Pool (lifetime, RTT increase) points over many timelines.

    One point per sub-optimal AS path per timeline; timelines with a single
    path contribute nothing (there is no sub-optimal path to speak of).
    """
    points: List[Tuple[float, float]] = []
    for timeline in timelines:
        increases = rtt_increase_from_best(timeline, q=q)
        if not increases:
            continue
        lifetimes = path_lifetimes(timeline)
        for path_id, increase in increases.items():
            lifetime = lifetimes.get(path_id)
            if lifetime is None:
                continue
            points.append((lifetime, max(0.0, increase)))
    return points


def _decile_edges(values: np.ndarray, bins: int) -> np.ndarray:
    """Unique quantile edges; duplicate quantiles collapse bins, as in the
    paper's Figure 4 where the first two lifetime deciles coincide."""
    quantiles = np.linspace(0.0, 1.0, bins + 1)
    edges = np.unique(np.quantile(values, quantiles))
    if edges.size < 2:
        # All values identical: a single degenerate bin still needs two
        # edges (the caller widens the top edge to be inclusive).
        edges = np.array([edges[0], edges[0]])
    return edges


def build_heatmap(
    points: Sequence[Tuple[float, float]], bins: int = 10
) -> DecileHeatmap:
    """Bin pooled points into a decile heatmap.

    Raises:
        ValueError: On an empty point set.
    """
    if not points:
        raise ValueError("cannot build a heatmap from zero points")
    data = np.asarray(points, dtype=float)
    x_edges = _decile_edges(data[:, 0], bins)
    y_edges = _decile_edges(data[:, 1], bins)
    # Make the top edges inclusive.
    x_edges[-1] = np.nextafter(x_edges[-1], np.inf)
    y_edges[-1] = np.nextafter(y_edges[-1], np.inf)
    histogram, _, _ = np.histogram2d(data[:, 1], data[:, 0], bins=(y_edges, x_edges))
    cells = 100.0 * histogram / data.shape[0]
    return DecileHeatmap(x_edges=x_edges, y_edges=y_edges, cells=cells)
