"""Per-AS-path RTT statistics and the best-path baseline (Section 4.2).

The paper aggregates a timeline's RTTs into buckets, one per AS path, and
computes the 10th percentile (the *baseline* RTT, below the spikes) and the
90th percentile (spike-inclusive) of each bucket.  The path with the lowest
10th percentile is the timeline's *best* path; the increase of every other
path's percentile over the best path's quantifies the cost of sub-optimal
routing.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.datasets.timeline import TraceTimeline

__all__ = [
    "path_percentiles",
    "best_path_id",
    "rtt_increase_from_best",
    "path_rtt_std",
]

MIN_BUCKET_SAMPLES = 3
"""Buckets smaller than this give meaningless percentiles and are skipped."""


def path_percentiles(timeline: TraceTimeline, q: float) -> Dict[int, float]:
    """The ``q``-th RTT percentile of each AS-path bucket.

    Only usable samples with finite RTTs enter the buckets; buckets with
    fewer than :data:`MIN_BUCKET_SAMPLES` samples are dropped.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    result: Dict[int, float] = {}
    for path_id, rtts in timeline.usable_rtts_by_path().items():
        finite = rtts[np.isfinite(rtts)]
        if finite.size < MIN_BUCKET_SAMPLES:
            continue
        result[path_id] = float(np.percentile(finite, q))
    return result


def path_rtt_std(timeline: TraceTimeline) -> Dict[int, float]:
    """Standard deviation of RTTs per AS-path bucket.

    The paper's alternative best-path criterion (end of Section 4.2).
    """
    result: Dict[int, float] = {}
    for path_id, rtts in timeline.usable_rtts_by_path().items():
        finite = rtts[np.isfinite(rtts)]
        if finite.size < MIN_BUCKET_SAMPLES:
            continue
        result[path_id] = float(np.std(finite))
    return result


def best_path_id(timeline: TraceTimeline, q: float = 10.0) -> Optional[int]:
    """Path id with the lowest ``q``-th RTT percentile.

    "Best" is among paths actually observed, as in the paper; ``None`` when
    no bucket is large enough.
    """
    percentiles = path_percentiles(timeline, q)
    if not percentiles:
        return None
    return min(percentiles, key=lambda path_id: (percentiles[path_id], path_id))


def rtt_increase_from_best(
    timeline: TraceTimeline, q: float = 10.0, best_q: Optional[float] = None
) -> Dict[int, float]:
    """Increase of each sub-optimal path's percentile over the best path's.

    Args:
        timeline: The trace timeline.
        q: Percentile compared (10 for Figure 4, 90 for Figure 5).
        best_q: Percentile used to *select* the best path; defaults to
            ``q`` itself, matching the paper (Figure 5 measures 90th
            percentile increases relative to the path with the lowest 90th
            percentile).

    Returns:
        Mapping of sub-optimal path id to its increase in ms.  Empty when
        the timeline has fewer than two measurable paths.
    """
    select_q = q if best_q is None else best_q
    selection = path_percentiles(timeline, select_q)
    if len(selection) < 2:
        return {}
    best = min(selection, key=lambda path_id: (selection[path_id], path_id))
    measured = path_percentiles(timeline, q)
    return {
        path_id: measured[path_id] - measured[best]
        for path_id in measured
        if path_id != best and best in measured
    }
