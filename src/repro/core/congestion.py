"""The FFT diurnal-congestion detector (Section 5.1).

Following the paper's adaptation of the TSLP trace-processing technique:
apply an FFT to the end-to-end RTT time series, measure the spectral power
concentrated around the one-cycle-per-day frequency, and flag the pair as
experiencing *consistent congestion* when that power is at least 0.3 of
the total (non-DC) power.  The paper pairs the spectral test with a
magnitude test: the 95th-minus-5th percentile RTT spread must exceed
10 ms, since a diurnal wiggle of under 10 ms is noise, not congestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.datasets.timeline import PingTimeline

__all__ = [
    "fill_missing_rtts",
    "diurnal_power_ratio",
    "CongestionDetector",
    "CongestionVerdict",
    "congestion_population_stats",
]

HOURS_PER_DAY = 24.0


def fill_missing_rtts(values: np.ndarray) -> Optional[np.ndarray]:
    """Replace NaNs by linear interpolation (edge values are clamped).

    Public because the streaming detector
    (:mod:`repro.stream.operators`) must apply the *exact* same gap
    filling as this batch FFT detector for the two to agree sample for
    sample.  Returns ``None`` for series with fewer than four finite
    samples (too sparse to interpolate meaningfully).
    """
    finite = np.isfinite(values)
    if finite.sum() < 4:
        return None
    if finite.all():
        return values.astype(float)
    filled = values.astype(float).copy()
    indexes = np.arange(values.size)
    filled[~finite] = np.interp(indexes[~finite], indexes[finite], values[finite])
    return filled


def diurnal_power_ratio(
    times_hours: np.ndarray,
    rtt_ms: np.ndarray,
    band: int = 1,
) -> float:
    """Fraction of spectral power at (and around) the 1/day frequency.

    Args:
        times_hours: Uniform measurement grid.
        rtt_ms: RTT samples (NaNs are interpolated away; series with fewer
            than four finite samples yield NaN).
        band: Also count this many neighbouring FFT bins on each side of
            the daily bin, absorbing spectral leakage from windows that are
            not whole numbers of days.

    Returns:
        Power ratio in ``[0, 1]``; NaN when undefined (too few samples or
        a window shorter than one day).
    """
    times_hours = np.asarray(times_hours, dtype=float)
    rtt = fill_missing_rtts(np.asarray(rtt_ms, dtype=float))
    if rtt is None or times_hours.size != rtt.size:
        return float("nan")
    if times_hours.size < 8:
        return float("nan")
    period = times_hours[1] - times_hours[0]
    duration = period * times_hours.size
    days = duration / HOURS_PER_DAY
    if days < 1.0:
        return float("nan")

    centered = rtt - rtt.mean()
    spectrum = np.abs(np.fft.rfft(centered)) ** 2
    if spectrum.size <= 1:
        return float("nan")
    total = spectrum[1:].sum()
    if total <= 0:
        return 0.0
    daily_bin = int(round(days))
    low = max(1, daily_bin - band)
    high = min(spectrum.size - 1, daily_bin + band)
    if low > high:
        return float("nan")
    return float(spectrum[low : high + 1].sum() / total)


@dataclass(frozen=True)
class CongestionVerdict:
    """Detector output for one pair."""

    spread_ms: float
    power_ratio: float
    spread_exceeds: bool
    diurnal: bool

    @property
    def congested(self) -> bool:
        """Consistent congestion: big spread *and* a strong diurnal."""
        return self.spread_exceeds and self.diurnal


@dataclass
class CongestionDetector:
    """The Section 5.1 detector with the paper's thresholds as defaults."""

    power_ratio_threshold: float = 0.3
    spread_threshold_ms: float = 10.0
    spread_percentiles: Tuple[float, float] = (5.0, 95.0)
    band: int = 1

    def assess_series(self, times_hours: np.ndarray, rtt_ms: np.ndarray) -> CongestionVerdict:
        """Assess one RTT series."""
        rtt = np.asarray(rtt_ms, dtype=float)
        finite = rtt[np.isfinite(rtt)]
        if finite.size == 0:
            spread = float("nan")
        else:
            low, high = self.spread_percentiles
            spread = float(np.percentile(finite, high) - np.percentile(finite, low))
        ratio = diurnal_power_ratio(times_hours, rtt, band=self.band)
        return CongestionVerdict(
            spread_ms=spread,
            power_ratio=ratio,
            spread_exceeds=bool(np.isfinite(spread) and spread > self.spread_threshold_ms),
            diurnal=bool(np.isfinite(ratio) and ratio >= self.power_ratio_threshold),
        )

    def assess(self, timeline: PingTimeline) -> CongestionVerdict:
        """Assess one ping timeline."""
        return self.assess_series(timeline.times_hours, timeline.rtt_ms)


@dataclass
class PopulationStats:
    """Aggregate congestion statistics over many pairs (Section 5.1)."""

    pairs: int
    spread_exceeds: int
    congested: int

    @property
    def spread_fraction(self) -> float:
        """Fraction of pairs with RTT spread above the threshold."""
        return self.spread_exceeds / self.pairs if self.pairs else float("nan")

    @property
    def congested_fraction(self) -> float:
        """Fraction with both a big spread and a strong diurnal."""
        return self.congested / self.pairs if self.pairs else float("nan")


def congestion_population_stats(
    timelines: Iterable[PingTimeline],
    detector: Optional[CongestionDetector] = None,
    min_valid_samples: int = 600,
) -> PopulationStats:
    """Evaluate the detector over a ping population.

    Pairs with fewer than ``min_valid_samples`` answered probes are
    excluded, matching the paper's "at least 600 (of the 672 possible)"
    filter -- the threshold scales down proportionally for shorter grids.
    """
    detector = detector or CongestionDetector()
    pairs = spread_count = congested_count = 0
    for timeline in timelines:
        required = min(min_valid_samples, int(0.9 * timeline.times_hours.size))
        if timeline.valid_count() < required:
            continue
        verdict = detector.assess(timeline)
        pairs += 1
        if verdict.spread_exceeds:
            spread_count += 1
        if verdict.congested:
            congested_count += 1
    return PopulationStats(pairs=pairs, spread_exceeds=spread_count, congested=congested_count)
