"""Measurement-granularity sensitivity (Section 4.3, Figure 7).

The long-term campaign measures every 3 hours; the short-term campaign
every 30 minutes.  To check that the coarse cadence does not distort the
RTT-increase analysis, the paper computes the per-path percentile increases
twice over the short-term data -- once from all traceroutes, once from a
subsample spaced at least 3 hours apart -- and compares the ECDFs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.core.ecdf import ECDF
from repro.core.rttstats import rtt_increase_from_best
from repro.datasets.timeline import TraceTimeline

__all__ = ["GranularityComparison", "subsample_timeline", "compare_granularity"]


@dataclass
class GranularityComparison:
    """Increase ECDFs from full-cadence vs subsampled data."""

    all_increases: ECDF
    subsampled_increases: ECDF

    def max_quantile_gap(self, quantiles: Iterable[float] = (0.25, 0.5, 0.75, 0.9)) -> float:
        """Largest absolute difference between the two ECDFs' quantiles."""
        gaps = [
            abs(self.all_increases.quantile(q) - self.subsampled_increases.quantile(q))
            for q in quantiles
        ]
        finite = [gap for gap in gaps if np.isfinite(gap)]
        return max(finite) if finite else float("nan")

    def ks_distance(self, resolution_ms: float = 1.0) -> float:
        """Kolmogorov-Smirnov distance between the two ECDFs.

        The robust summary of "the two curves nearly coincide": quantile
        gaps blow up in sparse tails, while the KS statistic stays in
        ``[0, 1]`` and directly measures the visual gap in Figure 7.

        Evaluated only above ``resolution_ms``: sub-millisecond increase
        values are percentile jitter below measurement resolution, and the
        two curves crossing steeply inside that noise floor says nothing
        about cadence distortion.
        """
        if len(self.all_increases) == 0 or len(self.subsampled_increases) == 0:
            return float("nan")
        grid = np.unique(
            np.concatenate(
                [self.all_increases.values, self.subsampled_increases.values]
            )
        )
        grid = grid[grid >= resolution_ms]
        if grid.size == 0:
            return 0.0
        gaps = [
            abs(self.all_increases.at(x) - self.subsampled_increases.at(x))
            for x in grid
        ]
        return float(max(gaps))


def subsample_timeline(timeline: TraceTimeline, min_gap_hours: float = 3.0) -> TraceTimeline:
    """Keep only samples spaced at least ``min_gap_hours`` apart.

    Returns a new timeline sharing the parent's path table.
    """
    if min_gap_hours <= 0:
        raise ValueError("minimum gap must be positive")
    times = timeline.times_hours
    keep: List[int] = []
    last = -np.inf
    for index, time in enumerate(times):
        if time - last >= min_gap_hours - 1e-9:
            keep.append(index)
            last = time
    mask = np.asarray(keep, dtype=int)
    return TraceTimeline(
        src_server_id=timeline.src_server_id,
        dst_server_id=timeline.dst_server_id,
        version=timeline.version,
        times_hours=times[mask],
        rtt_ms=timeline.rtt_ms[mask],
        outcome=timeline.outcome[mask],
        path_id=timeline.path_id[mask],
        paths=timeline.paths,
        true_candidate=timeline.true_candidate[mask]
        if timeline.true_candidate.size == times.size
        else timeline.true_candidate,
    )


def compare_granularity(
    timelines: Iterable[TraceTimeline],
    q: float = 10.0,
    min_gap_hours: float = 3.0,
) -> GranularityComparison:
    """Build the Figure 7 comparison over a set of short-term timelines.

    Only AS paths measurable at *both* cadences enter the comparison:
    a path whose subsampled bucket is too small to yield a percentile says
    nothing about cadence distortion, only about sample counts.
    """
    all_values: List[float] = []
    sub_values: List[float] = []
    for timeline in timelines:
        full = rtt_increase_from_best(timeline, q=q)
        subsampled = rtt_increase_from_best(
            subsample_timeline(timeline, min_gap_hours), q=q
        )
        common = sorted(set(full) & set(subsampled))
        all_values.extend(full[path_id] for path_id in common)
        sub_values.extend(subsampled[path_id] for path_id in common)
    return GranularityComparison(
        all_increases=ECDF(all_values),
        subsampled_increases=ECDF(sub_values),
    )
