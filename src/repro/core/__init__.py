"""The paper's analysis pipeline (the primary contribution).

Routing analysis (Section 4):

- :mod:`repro.core.editdist` -- edit distance between AS paths.
- :mod:`repro.core.aspath` -- AS-path utilities (loops, unknown tokens).
- :mod:`repro.core.routechange` -- change detection, lifetimes, prevalence.
- :mod:`repro.core.rttstats` -- per-AS-path RTT buckets and the best path.
- :mod:`repro.core.heatmap` -- lifetime x RTT-delta decile heatmaps
  (Figures 4 and 5).
- :mod:`repro.core.suboptimal` -- prevalence of sub-optimal paths at RTT
  thresholds (Figure 6).
- :mod:`repro.core.granularity` -- 30-minute vs 3-hour sensitivity
  (Figure 7).

Congestion analysis (Section 5):

- :mod:`repro.core.congestion` -- the FFT diurnal detector.
- :mod:`repro.core.localization` -- congested-segment localization via
  Pearson correlation.
- :mod:`repro.core.ownership` -- the six router-ownership heuristics.
- :mod:`repro.core.linkclass` -- internal vs interconnection, p2p vs c2p.
- :mod:`repro.core.overhead` -- congestion overhead estimation (Figure 9).

Protocol comparison (Section 6):

- :mod:`repro.core.dualstack` -- paired IPv4/IPv6 RTT differences
  (Figure 10a).
- :mod:`repro.core.inflation` -- RTT inflation over cRTT (Figure 10b).

Plus :mod:`repro.core.summary` (Table 1) and :mod:`repro.core.ecdf`
(shared empirical-CDF helper).
"""

from repro.core.aspath import has_as_loop, has_unknown, path_to_string
from repro.core.congestion import CongestionDetector, diurnal_power_ratio
from repro.core.dualstack import paired_rtt_differences
from repro.core.ecdf import ECDF
from repro.core.editdist import edit_distance
from repro.core.heatmap import DecileHeatmap, build_heatmap
from repro.core.inflation import inflation_ratio, pair_inflation
from repro.core.linkclass import LinkClass, LinkClassifier
from repro.core.localization import localize_congestion
from repro.core.loss import assess_loss, loss_population_summary, loss_rtt_correlation
from repro.core.overhead import congestion_overhead
from repro.core.ownership import OwnershipInference, infer_ownership
from repro.core.routechange import (
    PathStats,
    analyze_timeline,
    as_path_pair_count,
    change_count,
    path_lifetimes,
    path_prevalence,
)
from repro.core.rttstats import best_path_id, path_percentiles, rtt_increase_from_best
from repro.core.sharedinfra import SharedInfraStudy, shared_infrastructure_study
from repro.core.summary import dataset_summary
from repro.core.suboptimal import suboptimal_prevalence

__all__ = [
    "ECDF",
    "edit_distance",
    "has_as_loop",
    "has_unknown",
    "path_to_string",
    "PathStats",
    "analyze_timeline",
    "change_count",
    "path_lifetimes",
    "path_prevalence",
    "as_path_pair_count",
    "path_percentiles",
    "best_path_id",
    "rtt_increase_from_best",
    "DecileHeatmap",
    "build_heatmap",
    "suboptimal_prevalence",
    "CongestionDetector",
    "diurnal_power_ratio",
    "localize_congestion",
    "OwnershipInference",
    "infer_ownership",
    "LinkClass",
    "LinkClassifier",
    "congestion_overhead",
    "assess_loss",
    "loss_population_summary",
    "loss_rtt_correlation",
    "SharedInfraStudy",
    "shared_infrastructure_study",
    "paired_rtt_differences",
    "inflation_ratio",
    "pair_inflation",
    "dataset_summary",
]
