"""Edit distance between AS paths.

Section 4.1: "we treat the AS paths ... as delimited strings and use the
edit distance between any two AS paths as a measure of the difference
between them.  A zero edit distance implies that the AS paths are the same
(no change), while a non-zero value implies a different AS-level route."

The implementation is the standard Levenshtein dynamic program over
hashable tokens (ASNs here, including the unknown-hop sentinel), with the
usual two-row memory optimization and a common-affix fast path.
"""

from __future__ import annotations

from typing import Hashable, Sequence

__all__ = ["edit_distance", "paths_differ"]


def edit_distance(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Levenshtein distance between two token sequences.

    Unit cost for insertion, deletion and substitution.  Runs in
    ``O(len(a) * len(b))`` time and ``O(min(len(a), len(b)))`` space after
    stripping any common prefix and suffix.
    """
    # Strip common prefix.
    start = 0
    limit = min(len(a), len(b))
    while start < limit and a[start] == b[start]:
        start += 1
    # Strip common suffix (not crossing the prefix).
    end_a, end_b = len(a), len(b)
    while end_a > start and end_b > start and a[end_a - 1] == b[end_b - 1]:
        end_a -= 1
        end_b -= 1
    a = a[start:end_a]
    b = b[start:end_b]

    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # keep the DP row as short as possible

    previous = list(range(len(b) + 1))
    for row, token_a in enumerate(a, start=1):
        current = [row] + [0] * len(b)
        for column, token_b in enumerate(b, start=1):
            cost = 0 if token_a == token_b else 1
            current[column] = min(
                previous[column] + 1,        # deletion
                current[column - 1] + 1,     # insertion
                previous[column - 1] + cost,  # substitution / match
            )
        previous = current
    return previous[len(b)]


def paths_differ(a: Sequence[Hashable], b: Sequence[Hashable]) -> bool:
    """Whether two AS paths differ (non-zero edit distance).

    Cheaper than :func:`edit_distance` when only change detection is
    needed, which is the common case in the change-counting analysis.
    """
    return tuple(a) != tuple(b)
