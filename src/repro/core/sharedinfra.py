"""IPv4/IPv6 shared-infrastructure analysis (the paper's stated next step).

Section 8: "The similarity in performance characteristics over IPv4 and
IPv6 also naturally calls for a study to understand to what extent
infrastructure is shared between IPv4 and IPv6, and we plan on addressing
this question in future work."

Three measurement-side signals of sharing, all computable from the
long-term dataset alone (no ground truth):

1. **Path agreement** -- how often the two protocols' dominant AS paths
   coincide.
2. **Synchronized routing changes** -- a physical event (a failed link)
   takes both protocols' sessions down together, so change rounds that
   coincide across protocols indicate shared links; protocol-local events
   (session resets, policy) do not synchronize.
3. **RTT co-movement** -- correlation between the two protocols' RTT series
   for the pair; shared paths move together through level shifts and
   congestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.routechange import popular_path
from repro.datasets.longterm import LongTermDataset
from repro.datasets.timeline import TraceTimeline
from repro.net.ip import IPVersion

__all__ = [
    "PairSharingSignal",
    "SharedInfraStudy",
    "shared_infrastructure_study",
]


@dataclass(frozen=True)
class PairSharingSignal:
    """Sharing evidence for one server pair."""

    src_server_id: int
    dst_server_id: int
    dominant_paths_match: bool
    synchronized_change_fraction: float
    rtt_correlation: float


def _change_rounds(timeline: TraceTimeline) -> np.ndarray:
    """Indexes of usable rounds whose path differs from the previous one."""
    mask = timeline.usable_mask()
    indexes = np.nonzero(mask)[0]
    ids = timeline.path_id[mask]
    if ids.size < 2:
        return np.empty(0, dtype=int)
    changed = np.nonzero(ids[1:] != ids[:-1])[0] + 1
    return indexes[changed]


def _synchronized_fraction(
    v4: TraceTimeline, v6: TraceTimeline, slack_rounds: int = 1
) -> float:
    """Fraction of IPv4 change rounds matched by an IPv6 change nearby."""
    changes_v4 = _change_rounds(v4)
    changes_v6 = _change_rounds(v6)
    if changes_v4.size == 0 or changes_v6.size == 0:
        return float("nan")
    matched = 0
    for round_index in changes_v4:
        nearest = np.min(np.abs(changes_v6 - round_index))
        if nearest <= slack_rounds:
            matched += 1
    return matched / changes_v4.size


def _rtt_correlation(v4: TraceTimeline, v6: TraceTimeline) -> float:
    both = (
        v4.usable_mask() & v6.usable_mask()
        & np.isfinite(v4.rtt_ms) & np.isfinite(v6.rtt_ms)
    )
    if both.sum() < 30:
        return float("nan")
    a = v4.rtt_ms[both].astype(float)
    b = v6.rtt_ms[both].astype(float)
    if a.std() <= 0 or b.std() <= 0:
        return float("nan")
    return float(np.corrcoef(a, b)[0, 1])


@dataclass
class SharedInfraStudy:
    """Aggregated sharing evidence over all dual-stack pairs."""

    signals: List[PairSharingSignal]

    @property
    def pairs(self) -> int:
        """Number of pairs assessed."""
        return len(self.signals)

    @property
    def dominant_match_fraction(self) -> float:
        """Fraction of pairs whose dominant AS paths agree across protocols."""
        if not self.signals:
            return float("nan")
        return float(np.mean([s.dominant_paths_match for s in self.signals]))

    def median_synchronized_fraction(self) -> float:
        """Median share of v4 changes mirrored by v6 changes."""
        values = [
            s.synchronized_change_fraction
            for s in self.signals
            if np.isfinite(s.synchronized_change_fraction)
        ]
        return float(np.median(values)) if values else float("nan")

    def median_correlation(self, matching_paths: Optional[bool] = None) -> float:
        """Median v4/v6 RTT correlation, optionally split by path agreement."""
        values = [
            s.rtt_correlation
            for s in self.signals
            if np.isfinite(s.rtt_correlation)
            and (matching_paths is None or s.dominant_paths_match == matching_paths)
        ]
        return float(np.median(values)) if values else float("nan")


def shared_infrastructure_study(dataset: LongTermDataset) -> SharedInfraStudy:
    """Assess IPv4/IPv6 infrastructure sharing over a long-term dataset."""
    signals: List[PairSharingSignal] = []
    for src, dst in dataset.pairs():
        key_v4: Tuple[int, int, IPVersion] = (src, dst, IPVersion.V4)
        key_v6: Tuple[int, int, IPVersion] = (src, dst, IPVersion.V6)
        if key_v4 not in dataset.timelines or key_v6 not in dataset.timelines:
            continue
        v4 = dataset.timelines[key_v4]
        v6 = dataset.timelines[key_v6]
        popular_v4, _ = popular_path(v4)
        popular_v6, _ = popular_path(v6)
        if popular_v4 is None or popular_v6 is None:
            continue
        signals.append(
            PairSharingSignal(
                src_server_id=src,
                dst_server_id=dst,
                dominant_paths_match=(
                    v4.paths[popular_v4] == v6.paths[popular_v6]
                ),
                synchronized_change_fraction=_synchronized_fraction(v4, v6),
                rtt_correlation=_rtt_correlation(v4, v6),
            )
        )
    return SharedInfraStudy(signals=signals)
