"""Congestion-overhead estimation (Section 5.4, Figure 9).

The *overhead* of a congestion event is how much it lifts RTT during the
busy period.  Estimated robustly from the daily profile: bin samples by
hour of day, take the median per bin, and report the difference between the
highest and lowest bin medians.  Medians keep isolated spikes out of the
estimate; the min bin tracks the uncongested baseline, the max bin the
busy-hour plateau.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["congestion_overhead", "daily_profile"]

HOURS_PER_DAY = 24


def daily_profile(
    times_hours: np.ndarray, rtt_ms: np.ndarray, bins: int = HOURS_PER_DAY
) -> np.ndarray:
    """Median RTT per hour-of-day bin (NaN for empty bins)."""
    if bins < 2:
        raise ValueError("need at least two bins")
    times_hours = np.asarray(times_hours, dtype=float)
    rtt = np.asarray(rtt_ms, dtype=float)
    hour_of_day = np.mod(times_hours, float(HOURS_PER_DAY))
    bin_index = np.minimum((hour_of_day / HOURS_PER_DAY * bins).astype(int), bins - 1)
    profile = np.full(bins, np.nan)
    for index in range(bins):
        values = rtt[(bin_index == index) & np.isfinite(rtt)]
        if values.size:
            profile[index] = np.median(values)
    return profile


def congestion_overhead(
    times_hours: np.ndarray,
    rtt_ms: np.ndarray,
    bins: int = HOURS_PER_DAY,
    min_bins_present: int = 12,
) -> Optional[float]:
    """Busy-hour RTT lift in ms, or ``None`` when the profile is too sparse.

    Args:
        times_hours: Sample times on a uniform grid.
        rtt_ms: RTT samples (NaNs ignored).
        bins: Hour-of-day bins.
        min_bins_present: Minimum populated bins for a trustworthy profile.
    """
    profile = daily_profile(times_hours, rtt_ms, bins)
    present = profile[np.isfinite(profile)]
    if present.size < min_bins_present:
        return None
    return float(present.max() - present.min())
