"""IPv4 vs IPv6 paired comparison (Section 6, Figure 10a).

Whenever a pair was measured over both protocols in the same round, the
paper computes ``RTTv4 - RTTv6``.  Two populations are reported: all paired
traceroutes, and the subset whose observed AS paths agree across protocols
("Same AS-paths").  Positive values mean IPv6 was faster; the tails beyond
+/-50 ms quantify how much a dual-stack deployment can save by switching
protocols per destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.ecdf import ECDF
from repro.datasets.longterm import LongTermDataset
from repro.net.ip import IPVersion

__all__ = ["DualStackComparison", "paired_rtt_differences"]


@dataclass
class DualStackComparison:
    """The Figure 10a populations.

    Attributes:
        all_diffs: ECDF of ``RTTv4 - RTTv6`` over all paired traceroutes.
        same_path_diffs: Same, restricted to rounds where the observed AS
            paths match across protocols.
        per_pair_median: Median difference per server pair, for per-pair
            tail statistics ("for 3.7% of the endpoint pairs ...").
        paired_samples / same_path_samples: Population sizes.
    """

    all_diffs: ECDF
    same_path_diffs: ECDF
    per_pair_median: Dict[Tuple[int, int], float]
    paired_samples: int
    same_path_samples: int

    def within_band_fraction(self, band_ms: float = 10.0) -> float:
        """Fraction of paired traceroutes with |diff| <= band (the shaded
        region of Figure 10a)."""
        if len(self.all_diffs) == 0:
            return float("nan")
        return self.all_diffs.at(band_ms) - self.all_diffs.at(-band_ms - 1e-9)

    def v6_saves_fraction(self, threshold_ms: float = 50.0) -> float:
        """Fraction of pairs where switching to IPv6 saves >= threshold."""
        values = np.array(list(self.per_pair_median.values()))
        if values.size == 0:
            return float("nan")
        return float(np.mean(values >= threshold_ms))

    def v4_saves_fraction(self, threshold_ms: float = 50.0) -> float:
        """Fraction of pairs where switching to IPv4 saves >= threshold."""
        values = np.array(list(self.per_pair_median.values()))
        if values.size == 0:
            return float("nan")
        return float(np.mean(values <= -threshold_ms))


def paired_rtt_differences(dataset: LongTermDataset) -> DualStackComparison:
    """Compute the paired IPv4/IPv6 comparison over a long-term dataset."""
    all_diffs: List[float] = []
    same_path_diffs: List[float] = []
    per_pair: Dict[Tuple[int, int], float] = {}

    for src, dst in dataset.pairs():
        key_v4 = (src, dst, IPVersion.V4)
        key_v6 = (src, dst, IPVersion.V6)
        if key_v4 not in dataset.timelines or key_v6 not in dataset.timelines:
            continue
        v4 = dataset.timelines[key_v4]
        v6 = dataset.timelines[key_v6]
        both = (
            v4.usable_mask()
            & v6.usable_mask()
            & np.isfinite(v4.rtt_ms)
            & np.isfinite(v6.rtt_ms)
        )
        if not both.any():
            continue
        diffs = (v4.rtt_ms[both] - v6.rtt_ms[both]).astype(float)
        all_diffs.extend(diffs.tolist())
        per_pair[(src, dst)] = float(np.median(diffs))

        # Same-AS-path subset: compare observed paths per round.
        v4_ids = v4.path_id[both]
        v6_ids = v6.path_id[both]
        v4_paths = [v4.paths[int(i)] for i in v4_ids]
        v6_paths = [v6.paths[int(i)] for i in v6_ids]
        same = np.array(
            [p4 == p6 for p4, p6 in zip(v4_paths, v6_paths)], dtype=bool
        )
        if same.any():
            same_path_diffs.extend(diffs[same].tolist())

    return DualStackComparison(
        all_diffs=ECDF(all_diffs),
        same_path_diffs=ECDF(same_path_diffs),
        per_pair_median=per_pair,
        paired_samples=len(all_diffs),
        same_path_samples=len(same_path_diffs),
    )
