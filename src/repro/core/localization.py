"""Congestion localization over traceroute segments (Section 5.2).

A traceroute's *segment* is the path from the vantage point to a given hop;
segment ``i`` contains segment ``i-1`` plus one hop.  For a pair with a
strong end-to-end diurnal signal, the congested link is found by walking the
segments in order and choosing the first whose RTT time series matches the
end-to-end series (Pearson correlation at least 0.5).  An important
consistency property the paper notes -- once a segment crosses the
threshold, later segments correlate at least as strongly -- is exposed for
testing via :attr:`LocalizationResult.correlations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.congestion import CongestionDetector
from repro.datasets.shortterm import SegmentSeries
from repro.net.ip import IPAddress

__all__ = ["LocalizationResult", "localize_congestion", "segment_correlations"]


@dataclass
class LocalizationResult:
    """Outcome of localizing one pair's congestion.

    Attributes:
        congested_hop: Index of the first hop whose segment matches the
            end-to-end diurnal pattern, or ``None``.
        link: The (near, far) hop addresses of the congested link; near is
            ``None`` when the congested hop is the first hop.
        correlations: Pearson correlation per hop (NaN where undefined).
        end_to_end_diurnal: Whether the end-to-end series still shows the
            diurnal signal during this campaign.
    """

    congested_hop: Optional[int]
    link: Optional[Tuple[Optional[IPAddress], IPAddress]]
    correlations: List[float]
    end_to_end_diurnal: bool

    @property
    def located(self) -> bool:
        """Whether a congested link was identified."""
        return self.congested_hop is not None


def _masked_pearson(a: np.ndarray, b: np.ndarray, min_overlap: int = 16) -> float:
    """Pearson correlation over samples where both series are finite."""
    mask = np.isfinite(a) & np.isfinite(b)
    if mask.sum() < min_overlap:
        return float("nan")
    x = a[mask]
    y = b[mask]
    x_std = x.std()
    y_std = y.std()
    if x_std <= 0 or y_std <= 0:
        return float("nan")
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (x_std * y_std))


def segment_correlations(entry: SegmentSeries) -> List[float]:
    """Pearson correlation of each segment's series with the end-to-end."""
    reference = np.asarray(entry.rtt_ms, dtype=float)
    return [
        _masked_pearson(np.asarray(entry.hop_rtt_ms[hop], dtype=float), reference)
        for hop in range(entry.n_hops)
    ]


def localize_congestion(
    entry: SegmentSeries,
    rho_threshold: float = 0.5,
    detector: Optional[CongestionDetector] = None,
) -> LocalizationResult:
    """Find the first congested segment of one pair's path.

    Args:
        entry: Per-hop RTT series from the short-term traceroute campaign.
        rho_threshold: Pearson threshold for declaring a segment congested
            (0.5 in the paper).
        detector: End-to-end diurnal check; localization is only attempted
            when the end-to-end signal is still diurnal, as in the paper
            ("for more than 30% of the ... pairs ... a strong congestion
            signal was present even weeks after").

    Returns:
        A :class:`LocalizationResult`; ``congested_hop`` is ``None`` when
        the end-to-end signal is gone or no segment crosses the threshold.
    """
    detector = detector or CongestionDetector()
    verdict = detector.assess_series(entry.times_hours, entry.rtt_ms)
    correlations = segment_correlations(entry)
    if not verdict.congested:
        return LocalizationResult(
            congested_hop=None,
            link=None,
            correlations=correlations,
            end_to_end_diurnal=verdict.congested,
        )

    # The last hop is the destination itself and correlates with the
    # end-to-end series by construction; a *first* match earlier in the
    # path is the congested link.
    for hop, correlation in enumerate(correlations):
        if np.isfinite(correlation) and correlation >= rho_threshold:
            near = entry.hop_addresses[hop - 1] if hop > 0 else None
            return LocalizationResult(
                congested_hop=hop,
                link=(near, entry.hop_addresses[hop]),
                correlations=correlations,
                end_to_end_diurnal=True,
            )
    return LocalizationResult(
        congested_hop=None,
        link=None,
        correlations=correlations,
        end_to_end_diurnal=True,
    )
