"""Router-ownership inference: the six heuristics of Section 5.3.

Traceroute shows *addresses*, BGP says who *announces* them -- but the
router answering may belong to a different AS (on a customer-provider link
the subnet usually comes from the provider).  The paper labels each
observed interface with candidate owner ASes using six heuristics (Figure
8), then resolves candidates into one owner per interface:

``first``
    IPx followed by IPy, both announced by ASi: IPx is on a router
    possibly owned by ASi.
``noip2as``
    IPy has no mapping but its neighbours IPx and IPz both map to ASi:
    IPy possibly belongs to ASi.
``customer``
    IPx, IPy map to ASi, IPz to ASj, and ASj is a customer of ASi: the
    interconnect interface IPy is on the customer's router (ASj), using
    provider-assigned address space.
``provider``
    IPx maps to ASi, IPy to ASj, and ASj is a provider of ASi: IPy is on
    the provider's router facing its customer (owner ASj).
``back``
    Links IPx1-IPy, IPx2-IPy, IPx3-IPy where IPx1 and IPx2 are already
    labeled ASi: label IPx3 ASi too, provided ASi announces IPx3.
``forward``
    Unlabeled IPx whose observed links all lead to interfaces announced by
    ASj and already labeled: label IPx ASj.

Resolution: a single candidate wins outright; with multiple candidates the
most frequent label wins only if it came from the ``first`` heuristic;
otherwise the interface stays unresolved (the paper: "our method annotates
the likely owner of most, but not all interfaces").
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net.asn import ASN, RelationshipTable
from repro.net.ip import IPAddress

__all__ = ["HopView", "OwnershipInference", "infer_ownership"]

_Label = Tuple[ASN, str]  # (candidate owner, heuristic name)


@dataclass(frozen=True)
class HopView:
    """One responding hop as the analysis sees it: address + BGP mapping."""

    address: IPAddress
    asn: Optional[ASN]


@dataclass
class OwnershipInference:
    """Candidate labels and resolved owners per interface address."""

    labels: Dict[IPAddress, Counter] = field(default_factory=lambda: defaultdict(Counter))
    owners: Dict[IPAddress, Optional[ASN]] = field(default_factory=dict)

    def add_label(self, address: IPAddress, asn: ASN, heuristic: str) -> None:
        """Record one candidate label."""
        self.labels[address][(asn, heuristic)] += 1

    def candidates(self, address: IPAddress) -> Dict[ASN, int]:
        """Total label count per candidate AS for one address."""
        totals: Dict[ASN, int] = defaultdict(int)
        for (asn, _heuristic), count in self.labels.get(address, {}).items():
            totals[asn] += count
        return dict(totals)

    def owner(self, address: IPAddress) -> Optional[ASN]:
        """The resolved owner, or ``None`` when unresolved/unseen."""
        return self.owners.get(address)

    def labeled_addresses(self) -> List[IPAddress]:
        """All addresses with at least one candidate label."""
        return sorted(self.labels, key=lambda address: (int(address.version), address.value))

    def resolve(self) -> None:
        """Turn candidate labels into owners (see module docstring)."""
        for address, counter in self.labels.items():
            distinct = {asn for asn, _ in counter}
            if not distinct:
                self.owners[address] = None
                continue
            if len(distinct) == 1:
                # Singleton set: same element whatever the iteration order.
                self.owners[address] = next(iter(distinct))  # repro: noqa[DET002]
                continue
            (top_asn, top_heuristic), _count = counter.most_common(1)[0]
            if top_heuristic == "first":
                self.owners[address] = top_asn
            else:
                self.owners[address] = None


def _triples(hops: Sequence[HopView]) -> Iterable[Tuple[Optional[HopView], HopView, Optional[HopView]]]:
    """(previous, current, next) windows over a hop sequence."""
    for index, current in enumerate(hops):
        previous = hops[index - 1] if index > 0 else None
        nxt = hops[index + 1] if index + 1 < len(hops) else None
        yield previous, current, nxt


def infer_ownership(
    paths: Iterable[Sequence[HopView]],
    relationships: RelationshipTable,
    passes: int = 2,
) -> OwnershipInference:
    """Run the six heuristics over a set of observed traceroute paths.

    Args:
        paths: Hop sequences (responding hops only; callers should split
            sequences at unresponsive hops *except* single missing hops,
            which are kept as mapping-less :class:`HopView` entries so the
            ``noip2as`` heuristic can see them -- here a hop with
            ``asn=None`` covers both cases).
        relationships: AS relationship data (CAIDA-style; ground truth in
            the simulator).
        passes: Iterations of the graph heuristics (``back``/``forward``),
            which consume labels produced earlier.

    Returns:
        The inference with owners resolved.
    """
    inference = OwnershipInference()
    # Observed adjacencies for the graph heuristics: neighbor sets per hop.
    successors: Dict[IPAddress, Set[IPAddress]] = defaultdict(set)
    predecessors: Dict[IPAddress, Set[IPAddress]] = defaultdict(set)
    mapping: Dict[IPAddress, Optional[ASN]] = {}

    material = [list(path) for path in paths]

    # Pass 1: the four sequence heuristics.
    for hops in material:
        for previous, current, nxt in _triples(hops):
            mapping.setdefault(current.address, current.asn)
            if previous is not None:
                predecessors[current.address].add(previous.address)
                successors[previous.address].add(current.address)

            # first: current and next announced by the same AS.
            if nxt is not None and current.asn is not None and current.asn == nxt.asn:
                inference.add_label(current.address, current.asn, "first")

            # noip2as: unmapped hop between two hops of the same AS.
            if (
                current.asn is None
                and previous is not None
                and nxt is not None
                and previous.asn is not None
                and previous.asn == nxt.asn
            ):
                inference.add_label(current.address, previous.asn, "noip2as")

            # customer: provider-assigned interconnect address on the
            # customer's router.
            if (
                previous is not None
                and nxt is not None
                and previous.asn is not None
                and current.asn is not None
                and nxt.asn is not None
                and previous.asn == current.asn
                and nxt.asn != current.asn
                and relationships.is_customer_of(nxt.asn, current.asn)
            ):
                inference.add_label(current.address, nxt.asn, "customer")

            # provider: the provider-side interface facing its customer.
            if (
                previous is not None
                and previous.asn is not None
                and current.asn is not None
                and previous.asn != current.asn
                and relationships.is_customer_of(previous.asn, current.asn)
            ):
                inference.add_label(current.address, current.asn, "provider")

    # Passes 2+: the graph heuristics, which feed on existing labels.
    for _ in range(max(0, passes - 1)):
        inference.resolve()
        new_labels: List[Tuple[IPAddress, ASN, str]] = []

        # back: several labeled predecessors of the same owner.
        for address, owner in list(inference.owners.items()):
            if owner is None:
                continue
            for follower in successors.get(address, ()):
                siblings = predecessors.get(follower, set())
                labeled_same = [
                    sibling
                    for sibling in siblings
                    if inference.owner(sibling) == owner
                ]
                if len(labeled_same) < 2:
                    continue
                for sibling in siblings:
                    if sibling in inference.owners and inference.owners[sibling] is not None:
                        continue
                    if mapping.get(sibling) == owner:
                        new_labels.append((sibling, owner, "back"))

        # forward: all observed next hops announced by one labeled AS.
        for address in list(successors):
            if inference.owner(address) is not None or inference.labels.get(address):
                continue
            nexts = successors[address]
            next_asns = {mapping.get(nxt) for nxt in nexts}
            if len(nexts) < 2 or len(next_asns) != 1:
                continue
            (next_asn,) = next_asns
            if next_asn is None:
                continue
            if all(inference.owner(nxt) is not None for nxt in nexts):
                new_labels.append((address, next_asn, "forward"))

        if not new_labels:
            break
        for address, asn, heuristic in new_labels:
            inference.add_label(address, asn, heuristic)

    inference.resolve()
    return inference
