"""Canonical scenarios and cached builders.

The paper's campaigns are petabyte-scale; these scenarios reproduce their
*shape* at three sizes:

- ``small``: seconds to build; used by the test suite.
- ``default``: tens of seconds; used by the benchmarks and examples.
- ``large``: a few minutes; closest to the paper's pair counts that a
  single machine comfortably holds.

Builders are memoized per (scenario, seed) so a pytest-benchmark session
constructs each platform and dataset once, however many bench modules use
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datasets.longterm import LongTermConfig, LongTermDataset, build_longterm_dataset
from repro.datasets.shortterm import (
    ShortTermConfig,
    ShortTermPingDataset,
    ShortTermTraceDataset,
    build_shortterm_ping_dataset,
    build_shortterm_trace_dataset,
)
from repro.core.congestion import CongestionDetector
from repro.measurement.congestionmodel import CongestionConfig
from repro.measurement.platform import MeasurementPlatform, PlatformConfig
from repro.obs.log import get_logger
from repro.obs.trace import stage as _obs_stage
from repro.topology.cdn import Server

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "scenario_platform",
           "scenario_longterm", "scenario_ping", "scenario_traces",
           "congested_pairs", "clear_cache"]


@dataclass(frozen=True)
class Scenario:
    """A named, fully-specified experiment scale."""

    name: str
    cluster_count: int
    longterm_days: float
    shortterm_ping_days: float
    shortterm_trace_days: float
    congestion_rich: bool = False
    """Chase congestion on popular links (no anchor-popularity penalty),
    as the paper's Section 5.2/5.3 campaign deliberately did.  Use for
    link-classification studies; leave off when the Section 5.1
    \"congestion is not the norm\" population fractions are the target."""

    def platform_config(self, seed: int = 0) -> PlatformConfig:
        """The platform config for this scenario (window covers all
        campaigns)."""
        duration = max(self.longterm_days, self.shortterm_trace_days, self.shortterm_ping_days)
        config = PlatformConfig(
            seed=seed,
            cluster_count=self.cluster_count,
            duration_hours=duration * 24.0,
        )
        if self.congestion_rich:
            config.congestion = CongestionConfig(
                anchor_fraction=0.7, anchor_popularity_halflife=None
            )
        return config

    def longterm_config(self) -> LongTermConfig:
        """The long-term campaign shape."""
        return LongTermConfig(days=self.longterm_days)

    def shortterm_config(self) -> ShortTermConfig:
        """The short-term campaign shapes."""
        return ShortTermConfig(
            ping_days=self.shortterm_ping_days,
            trace_days=self.shortterm_trace_days,
        )


SCENARIOS: Dict[str, Scenario] = {
    "small": Scenario(
        name="small",
        cluster_count=12,
        longterm_days=90.0,
        shortterm_ping_days=7.0,
        shortterm_trace_days=14.0,
    ),
    "default": Scenario(
        name="default",
        cluster_count=30,
        longterm_days=485.0,
        shortterm_ping_days=7.0,
        shortterm_trace_days=22.0,
    ),
    "large": Scenario(
        name="large",
        cluster_count=60,
        longterm_days=485.0,
        shortterm_ping_days=7.0,
        shortterm_trace_days=22.0,
        congestion_rich=True,
    ),
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name.

    Raises:
        KeyError: Unknown scenario name (the message lists valid names).
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; valid: {sorted(SCENARIOS)}"
        ) from None


_LOG = get_logger("repro.harness.scenarios")

_platform_cache: Dict[Tuple[str, int], MeasurementPlatform] = {}
_longterm_cache: Dict[Tuple[str, int], LongTermDataset] = {}
_ping_cache: Dict[Tuple[str, int], ShortTermPingDataset] = {}
_trace_cache: Dict[Tuple[str, int], ShortTermTraceDataset] = {}


def clear_cache() -> None:
    """Drop all memoized platforms and datasets (frees memory)."""
    _platform_cache.clear()
    _longterm_cache.clear()
    _ping_cache.clear()
    _trace_cache.clear()


def scenario_platform(
    name: str = "default",
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[object] = None,
    timings: Optional[object] = None,
) -> MeasurementPlatform:
    """The (memoized) platform of a scenario.

    Args:
        name / seed: Scenario scale and world seed.
        jobs: Worker processes for route computation on a build.
        cache: Optional :class:`repro.harness.engine.ArtifactCache`; when
            given, the platform is loaded from / stored to disk.
        timings: Optional :class:`repro.harness.engine.Timings` recorder.
    """
    key = (name, seed)
    if key not in _platform_cache:
        config = get_scenario(name).platform_config(seed)
        _LOG.info("scenario.platform", scenario=name, seed=seed, jobs=jobs,
                  cached=cache is not None)
        if cache is not None:
            from repro.harness.engine import cached_platform

            platform, _ = cached_platform(
                config, cache=cache, jobs=jobs, timings=timings
            )
        else:
            platform = MeasurementPlatform(config, timings=timings, jobs=jobs)
        _platform_cache[key] = platform
    return _platform_cache[key]


def scenario_longterm(
    name: str = "default",
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[object] = None,
    timings: Optional[object] = None,
) -> LongTermDataset:
    """The (memoized) long-term dataset of a scenario."""
    key = (name, seed)
    if key not in _longterm_cache:
        scenario = get_scenario(name)
        if cache is not None:
            from repro.harness.engine import cached_longterm

            dataset, _ = cached_longterm(
                scenario.platform_config(seed),
                scenario.longterm_config(),
                platform=scenario_platform(name, seed, jobs=jobs, cache=cache,
                                           timings=timings),
                cache=cache,
                jobs=jobs,
                timings=timings,
            )
        else:
            platform = scenario_platform(name, seed, jobs=jobs, timings=timings)
            _LOG.info("scenario.longterm", scenario=name, seed=seed, jobs=jobs)
            with _obs_stage("longterm-build", timings):
                dataset = build_longterm_dataset(
                    platform, scenario.longterm_config(), jobs=jobs
                )
        _longterm_cache[key] = dataset
    return _longterm_cache[key]


def scenario_ping(
    name: str = "default",
    seed: int = 0,
    jobs: int = 1,
    timings: Optional[object] = None,
) -> ShortTermPingDataset:
    """The (memoized) short-term ping dataset of a scenario."""
    key = (name, seed)
    if key not in _ping_cache:
        platform = scenario_platform(name, seed, jobs=jobs, timings=timings)
        _LOG.info("scenario.ping", scenario=name, seed=seed, jobs=jobs)
        with _obs_stage("ping-build", timings):
            _ping_cache[key] = build_shortterm_ping_dataset(
                platform, get_scenario(name).shortterm_config(), jobs=jobs
            )
    return _ping_cache[key]


def congested_pairs(
    platform: MeasurementPlatform,
    pings: ShortTermPingDataset,
    detector: Optional[CongestionDetector] = None,
) -> List[Tuple[Server, Server]]:
    """Server pairs the ping analysis flags as congested (Section 5.2)."""
    detector = detector or CongestionDetector()
    flagged = set()
    for (src_id, dst_id, _version), timeline in pings.timelines.items():
        if detector.assess(timeline).congested:
            flagged.add((src_id, dst_id))
    servers = {server.server_id: server for server in platform.measurement_servers()}
    return [
        (servers[src_id], servers[dst_id])
        for src_id, dst_id in sorted(flagged)
        if src_id in servers and dst_id in servers
    ]


def scenario_traces(
    name: str = "default",
    seed: int = 0,
    detector: Optional[CongestionDetector] = None,
    jobs: int = 1,
    timings: Optional[object] = None,
) -> ShortTermTraceDataset:
    """The (memoized) short-term traceroute dataset of a scenario.

    As in the paper, the traceroute campaign targets the pairs the ping
    analysis flagged as congested (Section 5.2), so this builder depends on
    the ping dataset.
    """
    key = (name, seed)
    if key not in _trace_cache:
        platform = scenario_platform(name, seed, jobs=jobs, timings=timings)
        pings = scenario_ping(name, seed, jobs=jobs, timings=timings)
        pairs = congested_pairs(platform, pings, detector)
        _LOG.info("scenario.traces", scenario=name, seed=seed, jobs=jobs,
                  congested_pairs=len(pairs))
        with _obs_stage("shorttrace-build", timings):
            _trace_cache[key] = build_shortterm_trace_dataset(
                platform, pairs, get_scenario(name).shortterm_config(), jobs=jobs
            )
    return _trace_cache[key]
