"""Canonical scenarios and cached builders.

The paper's campaigns are petabyte-scale; these scenarios reproduce their
*shape* at three sizes:

- ``small``: seconds to build; used by the test suite.
- ``default``: tens of seconds; used by the benchmarks and examples.
- ``large``: a few minutes; closest to the paper's pair counts that a
  single machine comfortably holds.

Builders are memoized per (scenario, seed) so a pytest-benchmark session
constructs each platform and dataset once, however many bench modules use
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.datasets.longterm import LongTermConfig, LongTermDataset, build_longterm_dataset
from repro.datasets.shortterm import (
    ShortTermConfig,
    ShortTermPingDataset,
    ShortTermTraceDataset,
    build_shortterm_ping_dataset,
    build_shortterm_trace_dataset,
)
from repro.core.congestion import CongestionDetector
from repro.measurement.congestionmodel import CongestionConfig
from repro.measurement.platform import MeasurementPlatform, PlatformConfig

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "scenario_platform",
           "scenario_longterm", "scenario_ping", "scenario_traces", "clear_cache"]


@dataclass(frozen=True)
class Scenario:
    """A named, fully-specified experiment scale."""

    name: str
    cluster_count: int
    longterm_days: float
    shortterm_ping_days: float
    shortterm_trace_days: float
    congestion_rich: bool = False
    """Chase congestion on popular links (no anchor-popularity penalty),
    as the paper's Section 5.2/5.3 campaign deliberately did.  Use for
    link-classification studies; leave off when the Section 5.1
    \"congestion is not the norm\" population fractions are the target."""

    def platform_config(self, seed: int = 0) -> PlatformConfig:
        """The platform config for this scenario (window covers all
        campaigns)."""
        duration = max(self.longterm_days, self.shortterm_trace_days, self.shortterm_ping_days)
        config = PlatformConfig(
            seed=seed,
            cluster_count=self.cluster_count,
            duration_hours=duration * 24.0,
        )
        if self.congestion_rich:
            config.congestion = CongestionConfig(
                anchor_fraction=0.7, anchor_popularity_halflife=None
            )
        return config

    def longterm_config(self) -> LongTermConfig:
        """The long-term campaign shape."""
        return LongTermConfig(days=self.longterm_days)

    def shortterm_config(self) -> ShortTermConfig:
        """The short-term campaign shapes."""
        return ShortTermConfig(
            ping_days=self.shortterm_ping_days,
            trace_days=self.shortterm_trace_days,
        )


SCENARIOS: Dict[str, Scenario] = {
    "small": Scenario(
        name="small",
        cluster_count=12,
        longterm_days=90.0,
        shortterm_ping_days=7.0,
        shortterm_trace_days=14.0,
    ),
    "default": Scenario(
        name="default",
        cluster_count=30,
        longterm_days=485.0,
        shortterm_ping_days=7.0,
        shortterm_trace_days=22.0,
    ),
    "large": Scenario(
        name="large",
        cluster_count=60,
        longterm_days=485.0,
        shortterm_ping_days=7.0,
        shortterm_trace_days=22.0,
        congestion_rich=True,
    ),
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name.

    Raises:
        KeyError: Unknown scenario name (the message lists valid names).
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; valid: {sorted(SCENARIOS)}"
        ) from None


_platform_cache: Dict[Tuple[str, int], MeasurementPlatform] = {}
_longterm_cache: Dict[Tuple[str, int], LongTermDataset] = {}
_ping_cache: Dict[Tuple[str, int], ShortTermPingDataset] = {}
_trace_cache: Dict[Tuple[str, int], ShortTermTraceDataset] = {}


def clear_cache() -> None:
    """Drop all memoized platforms and datasets (frees memory)."""
    _platform_cache.clear()
    _longterm_cache.clear()
    _ping_cache.clear()
    _trace_cache.clear()


def scenario_platform(name: str = "default", seed: int = 0) -> MeasurementPlatform:
    """The (memoized) platform of a scenario."""
    key = (name, seed)
    if key not in _platform_cache:
        _platform_cache[key] = MeasurementPlatform(get_scenario(name).platform_config(seed))
    return _platform_cache[key]


def scenario_longterm(name: str = "default", seed: int = 0) -> LongTermDataset:
    """The (memoized) long-term dataset of a scenario."""
    key = (name, seed)
    if key not in _longterm_cache:
        platform = scenario_platform(name, seed)
        _longterm_cache[key] = build_longterm_dataset(
            platform, get_scenario(name).longterm_config()
        )
    return _longterm_cache[key]


def scenario_ping(name: str = "default", seed: int = 0) -> ShortTermPingDataset:
    """The (memoized) short-term ping dataset of a scenario."""
    key = (name, seed)
    if key not in _ping_cache:
        platform = scenario_platform(name, seed)
        _ping_cache[key] = build_shortterm_ping_dataset(
            platform, get_scenario(name).shortterm_config()
        )
    return _ping_cache[key]


def scenario_traces(
    name: str = "default",
    seed: int = 0,
    detector: Optional[CongestionDetector] = None,
) -> ShortTermTraceDataset:
    """The (memoized) short-term traceroute dataset of a scenario.

    As in the paper, the traceroute campaign targets the pairs the ping
    analysis flagged as congested (Section 5.2), so this builder depends on
    the ping dataset.
    """
    key = (name, seed)
    if key not in _trace_cache:
        platform = scenario_platform(name, seed)
        pings = scenario_ping(name, seed)
        detector = detector or CongestionDetector()
        flagged = set()
        for (src_id, dst_id, _version), timeline in pings.timelines.items():
            if detector.assess(timeline).congested:
                flagged.add((src_id, dst_id))
        servers = {server.server_id: server for server in platform.measurement_servers()}
        pairs = [
            (servers[src_id], servers[dst_id])
            for src_id, dst_id in sorted(flagged)
            if src_id in servers and dst_id in servers
        ]
        _trace_cache[key] = build_shortterm_trace_dataset(
            platform, pairs, get_scenario(name).shortterm_config()
        )
    return _trace_cache[key]
