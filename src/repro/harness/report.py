"""Plain-text rendering: tables, ECDF series, and decile heatmaps.

The benchmarks regenerate the paper's tables and figures as text; these
helpers keep the rendering consistent (and the heatmap axis labels match
the paper's interval style, e.g. ``[3.0, 6.0h)`` and ``[15.9D, 1.0M)``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.ecdf import ECDF
from repro.core.heatmap import DecileHeatmap

__all__ = ["render_table", "render_ecdf", "render_heatmap", "format_duration", "format_ms"]

HOURS_PER_DAY = 24.0
HOURS_PER_MONTH = 24.0 * 30.4


def format_duration(hours: float) -> str:
    """Render a duration the way the paper's heatmap labels do.

    Hours below a day ('h'), days below ~a month ('D'), months above ('M').
    """
    if hours < HOURS_PER_DAY:
        return f"{hours:.1f}h"
    if hours < HOURS_PER_MONTH:
        return f"{hours / HOURS_PER_DAY:.1f}D"
    return f"{hours / HOURS_PER_MONTH:.1f}M"


def format_ms(value: float) -> str:
    """Render a millisecond quantity compactly (switching to seconds)."""
    if value >= 1000.0:
        return f"{value / 1000.0:.1f}s"
    return f"{value:.1f}ms"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A simple aligned text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()
    separator = "  ".join("-" * width for width in widths)
    return "\n".join([line(list(headers)), separator] + [line(row) for row in materialized])


def render_ecdf(
    ecdf: ECDF,
    label: str,
    probe_points: Optional[Sequence[float]] = None,
    unit: str = "",
) -> str:
    """Summarize an ECDF as quantiles plus optional probe evaluations."""
    if len(ecdf) == 0:
        return f"{label}: (empty)"
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.8, 0.9, 0.98)
    parts = [f"p{int(q * 100)}={ecdf.quantile(q):.3g}{unit}" for q in quantiles]
    lines = [f"{label} (n={len(ecdf)}): " + "  ".join(parts)]
    if probe_points:
        probes = "  ".join(f"F({x:g}{unit})={ecdf.at(x):.3f}" for x in probe_points)
        lines.append(f"  {probes}")
    return "\n".join(lines)


def _edge_labels(edges: np.ndarray, formatter) -> List[str]:
    labels = []
    for low, high in zip(edges, edges[1:]):
        labels.append(f"[{formatter(low)}, {formatter(high)})")
    return labels


def render_heatmap(
    heatmap: DecileHeatmap,
    x_title: str = "AS-path lifetime",
    y_title: str = "RTT increase over best path",
) -> str:
    """Render a decile heatmap like the paper's Figures 4/5.

    Rows print top-down from the largest increase decile (matching the
    figures, where the worst rows sit at the top), columns left-to-right
    from the shortest lifetime.
    """
    x_labels = _edge_labels(heatmap.x_edges, format_duration)
    y_labels = _edge_labels(heatmap.y_edges, format_ms)
    headers = [f"{y_title} \\ {x_title}"] + x_labels + ["row%"]
    rows = []
    for row_index in range(heatmap.cells.shape[0] - 1, -1, -1):
        cells = [f"{value:.2f}" for value in heatmap.cells[row_index]]
        rows.append(
            [y_labels[row_index]] + cells + [f"{heatmap.cells[row_index].sum():.1f}"]
        )
    return render_table(headers, rows)
