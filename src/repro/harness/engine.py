"""The dataset-generation engine: artifact cache + stage timing.

Building the paper's campaigns from scratch means simulating a 485-day
world; at the ``default`` scenario scale that takes tens of seconds, at
``large`` scale minutes.  This module makes the pipeline *incremental* and
*observable*:

- :class:`Timings` records per-stage wall time across the whole pipeline
  (topology, routing, congestion assignment, timeline build,
  per-experiment) and renders/serializes it for ``reproduce --timings``
  and the pipeline benchmark.
- :class:`ArtifactCache` persists built platforms and long-term datasets
  on disk, keyed by a stable fingerprint of their configs, so examples
  and benchmarks stop re-simulating identical worlds.  Entries are
  versioned -- a schema or package version bump invalidates them -- and
  written atomically.
- :func:`cached_platform` / :func:`cached_longterm` are the high-level
  entry points: build on miss (optionally in parallel), load on hit.

The cache directory defaults to ``~/.cache/repro`` and can be overridden
per call or via the ``REPRO_CACHE_DIR`` environment variable.  Loaded
artifacts are bit-identical to freshly built ones: construction is fully
deterministic under one seed, and pickling preserves every array.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.datasets.longterm import LongTermConfig, LongTermDataset, build_longterm_dataset
from repro.harness.report import render_table
from repro.measurement.platform import MeasurementPlatform, PlatformConfig
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.trace import get_tracer

__all__ = [
    "Timings",
    "ArtifactCache",
    "config_fingerprint",
    "default_cache_dir",
    "cached_platform",
    "cached_longterm",
    "CACHE_SCHEMA_VERSION",
]

CACHE_SCHEMA_VERSION = 1
"""Bump when the pickled layout of platforms/datasets changes shape."""

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_PathLike = Union[str, Path]

_LOG = get_logger("repro.harness.engine")


class Timings:
    """A lightweight per-stage wall-time recorder.

    Stages append in completion order and may repeat (e.g. one
    ``experiment:`` stage per driver); :meth:`as_dict` aggregates repeats
    by summing.

    Since the ``repro.obs`` layer landed this is a thin shim over tracing
    spans: every :meth:`stage` block also opens a span of the same name on
    the current :class:`repro.obs.trace.Tracer`, so ``--timings`` callers
    keep their flat table while ``--trace-out`` sees the same stages as a
    tree.  The recorded seconds are measured here, not taken from the
    span, so the table's values are exactly what PR 1 produced.
    """

    def __init__(self) -> None:
        self.stages: List[Tuple[str, float]] = []

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and record it under ``name``."""
        obs_live.get_status().set_phase(name)
        started = time.perf_counter()
        try:
            with get_tracer().span(name):
                yield
        finally:
            self.record(name, time.perf_counter() - started)

    def record(self, name: str, seconds: float) -> None:
        """Record an externally-measured stage."""
        self.stages.append((name, float(seconds)))

    def total(self) -> float:
        """Sum of all recorded stage times."""
        return sum(seconds for _, seconds in self.stages)

    def as_dict(self) -> Dict[str, float]:
        """Stage name -> total seconds (repeats summed), insertion order."""
        merged: Dict[str, float] = {}
        for name, seconds in self.stages:
            merged[name] = merged.get(name, 0.0) + seconds
        return merged

    def as_records(self) -> List[Dict[str, float]]:
        """The raw stage list as JSON-ready records, in completion order."""
        return [
            {"stage": name, "seconds": seconds} for name, seconds in self.stages
        ]

    def render(self) -> str:
        """A text table of aggregated stage times."""
        rows = [
            (name, f"{seconds:.3f}s") for name, seconds in self.as_dict().items()
        ]
        rows.append(("total", f"{self.total():.3f}s"))
        return render_table(("stage", "wall time"), rows)


def _canonical(value: object) -> object:
    """A stable, hashable projection of (possibly nested) config objects."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (spec.name, _canonical(getattr(value, spec.name)))
                for spec in dataclasses.fields(value)
            ),
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.value)
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, dict):
        return tuple(
            sorted((repr(key), _canonical(item)) for key, item in value.items())
        )
    if isinstance(value, float):
        return repr(value)
    return value


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports the harness package, so a
    # module-level "from repro import __version__" could run against a
    # half-initialized package.
    import repro

    return getattr(repro, "__version__", "0")


def config_fingerprint(*parts: object) -> str:
    """A stable hex fingerprint of config objects (dataclasses welcome).

    Equal configs always fingerprint equal; any field change -- at any
    nesting depth -- changes it.  The package version and cache schema
    version are mixed in, so upgrading either invalidates old artifacts.
    """
    blob = repr(
        (CACHE_SCHEMA_VERSION, _package_version(),
         tuple(_canonical(part) for part in parts))
    ).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


class ArtifactCache:
    """On-disk pickle store for expensive build artifacts.

    Entries live under ``<directory>/v<schema>/<kind>-<fingerprint>.pkl``.
    Loads never raise on a bad entry -- a corrupt or unreadable pickle
    reads as a miss and the caller rebuilds.  Stores write to a temp file
    and rename, so concurrent readers never observe a partial entry.

    Every load/store outcome is counted in the metrics registry
    (``cache.hit`` / ``cache.miss`` / ``cache.corrupt`` / ``cache.store``)
    and logged, so run manifests account for exactly what the cache did.
    """

    def __init__(self, directory: Optional[_PathLike] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def path(self, kind: str, fingerprint: str) -> Path:
        """Where an artifact of ``kind`` with ``fingerprint`` lives."""
        return self.directory / f"v{CACHE_SCHEMA_VERSION}" / f"{kind}-{fingerprint}.pkl"

    def load(self, kind: str, fingerprint: str) -> Optional[object]:
        """The cached artifact, or ``None`` on miss/corruption."""
        path = self.path(kind, fingerprint)
        try:
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
        except FileNotFoundError:
            obs_metrics.counter("cache.miss").inc()
            _LOG.debug("cache.miss", kind=kind, fingerprint=fingerprint)
            return None
        except Exception:
            # Unreadable, truncated or stale-schema entry: pickle can raise
            # nearly anything on garbage bytes (ValueError, KeyError, ...),
            # so treat every failure as a miss, drop the entry and rebuild.
            try:
                path.unlink()
            except OSError:
                pass
            obs_metrics.counter("cache.corrupt").inc()
            _LOG.warning("cache.corrupt", kind=kind, fingerprint=fingerprint,
                         path=str(path))
            return None
        obs_metrics.counter("cache.hit").inc()
        _LOG.info("cache.hit", kind=kind, fingerprint=fingerprint)
        return artifact

    def store(self, kind: str, fingerprint: str, artifact: object) -> Path:
        """Persist an artifact atomically; returns its path."""
        path = self.path(kind, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(scratch, "wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(scratch, path)
        finally:
            if scratch.exists():
                try:
                    scratch.unlink()
                except OSError:
                    pass
        obs_metrics.counter("cache.store").inc()
        _LOG.info("cache.store", kind=kind, fingerprint=fingerprint,
                  bytes=path.stat().st_size)
        return path

    def clear(self) -> int:
        """Delete every entry of the current schema; returns the count."""
        root = self.directory / f"v{CACHE_SCHEMA_VERSION}"
        removed = 0
        if root.is_dir():
            for entry in root.glob("*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def cached_platform(
    config: Optional[PlatformConfig] = None,
    cache: Optional[ArtifactCache] = None,
    jobs: int = 1,
    timings: Optional[Timings] = None,
    refresh: bool = False,
) -> Tuple[MeasurementPlatform, bool]:
    """A measurement platform for ``config``, loaded from disk when possible.

    Args:
        config: Platform construction parameters.
        cache: Artifact store (the default cache directory otherwise).
        jobs: Workers for route computation on a miss.
        timings: Optional stage recorder; a hit records ``platform-load``,
            a miss the usual construction stages plus ``platform-store``.
        refresh: Force a rebuild even when a cached entry exists.

    Returns:
        ``(platform, cache_hit)``.
    """
    config = config or PlatformConfig()
    cache = cache or ArtifactCache()
    fingerprint = config_fingerprint("platform", config)
    if not refresh:
        with _engine_stage(timings, "platform-load"):
            artifact = cache.load("platform", fingerprint)
        if artifact is not None:
            return artifact, True
    _LOG.info("platform.build", fingerprint=fingerprint, jobs=jobs,
              clusters=config.cluster_count, seed=config.seed)
    platform = MeasurementPlatform(config, timings=timings, jobs=jobs)
    with _engine_stage(timings, "platform-store"):
        cache.store("platform", fingerprint, platform)
    return platform, False


def cached_longterm(
    platform_config: PlatformConfig,
    longterm_config: Optional[LongTermConfig] = None,
    platform: Optional[MeasurementPlatform] = None,
    cache: Optional[ArtifactCache] = None,
    jobs: int = 1,
    timings: Optional[Timings] = None,
    refresh: bool = False,
) -> Tuple[LongTermDataset, bool]:
    """The long-term dataset for a (platform, campaign) config pair.

    On a miss the platform is taken from ``platform`` when given (to avoid
    a duplicate build) or resolved through :func:`cached_platform`, then
    the dataset is built -- with ``jobs`` workers -- and stored.  Any
    ``jobs`` value yields the same bits, so it is *not* part of the key.

    Returns:
        ``(dataset, cache_hit)``.
    """
    longterm_config = longterm_config or LongTermConfig()
    cache = cache or ArtifactCache()
    fingerprint = config_fingerprint("longterm", platform_config, longterm_config)
    if not refresh:
        with _engine_stage(timings, "longterm-load"):
            artifact = cache.load("longterm", fingerprint)
        if artifact is not None:
            return artifact, True
    if platform is None:
        platform, _ = cached_platform(
            platform_config, cache=cache, jobs=jobs, timings=timings
        )
    _LOG.info("longterm.build", fingerprint=fingerprint, jobs=jobs,
              days=longterm_config.days)
    with _engine_stage(timings, "longterm-build"):
        dataset = build_longterm_dataset(platform, longterm_config, jobs=jobs)
    with _engine_stage(timings, "longterm-store"):
        cache.store("longterm", fingerprint, dataset)
    return dataset, False


@contextmanager
def _engine_stage(timings: Optional[Timings], name: str) -> Iterator[None]:
    # Span either way: via the Timings shim when recording, bare otherwise.
    # Either path marks the stage as the live phase for /status.
    if timings is None:
        obs_live.get_status().set_phase(name)
        with get_tracer().span(name):
            yield
    else:
        with timings.stage(name):
            yield
