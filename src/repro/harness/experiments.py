"""Per-figure experiment drivers.

One function per table/figure in the paper's evaluation.  Each returns an
:class:`ExperimentResult` holding (a) machine-readable metrics, each paired
with the value the paper reports, and (b) a rendered text report with the
same rows/series the paper presents.  ``run_all_experiments`` drives the
full reproduction and is what EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.congestion import congestion_population_stats
from repro.core.dualstack import paired_rtt_differences
from repro.core.ecdf import ECDF
from repro.core.granularity import compare_granularity
from repro.core.heatmap import build_heatmap, collect_lifetime_increase_points
from repro.core.inflation import pair_inflation
from repro.core.linkclass import LinkClass, LinkClassifier, LinkMediumClass
from repro.core.localization import localize_congestion
from repro.core.loss import loss_population_summary
from repro.core.sharedinfra import shared_infrastructure_study
from repro.core.overhead import congestion_overhead
from repro.core.ownership import HopView, infer_ownership
from repro.core.routechange import analyze_timeline, as_path_pair_count
from repro.core.suboptimal import suboptimal_prevalence
from repro.core.summary import dataset_summary
from repro.datasets.longterm import LongTermConfig, LongTermDataset, build_longterm_dataset
from repro.datasets.shortterm import ShortTermPingDataset, ShortTermTraceDataset
from repro.harness.report import render_ecdf, render_heatmap, render_table
from repro.measurement.platform import MeasurementPlatform
from repro.net.ip import IPVersion
from repro.obs import trace as obs_trace

__all__ = [
    "Metric",
    "ExperimentResult",
    "experiment_table1",
    "experiment_fig1",
    "experiment_fig2",
    "experiment_fig3",
    "experiment_fig4",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_congestion_norm",
    "experiment_localization",
    "experiment_link_classification",
    "experiment_fig9",
    "experiment_fig10a",
    "experiment_fig10b",
    "experiment_loss",
    "experiment_sharedinfra",
    "run_all_experiments",
]


@dataclass
class Metric:
    """One measured quantity next to the paper's value."""

    name: str
    paper: Optional[float]
    measured: float
    unit: str = ""

    def row(self) -> Tuple[str, str, str]:
        """(name, paper, measured) strings for tabulation."""
        paper = "n/a" if self.paper is None else f"{self.paper:g}{self.unit}"
        return (self.name, paper, f"{self.measured:.4g}{self.unit}")


@dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    metrics: List[Metric] = field(default_factory=list)
    report: str = ""

    def metric(self, name: str) -> Metric:
        """Look up a metric by name.

        Raises:
            KeyError: Unknown metric name.
        """
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(f"no metric {name!r} in {self.experiment_id}")

    def comparison_table(self) -> str:
        """The paper-vs-measured table."""
        return render_table(
            ("metric", "paper", "measured"), [metric.row() for metric in self.metrics]
        )

    def render(self) -> str:
        """Full text report."""
        header = f"== {self.experiment_id}: {self.title} =="
        parts = [header, self.comparison_table()]
        if self.report:
            parts.append(self.report)
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Section 2: the data sets
# ----------------------------------------------------------------------

def experiment_table1(dataset: LongTermDataset) -> ExperimentResult:
    """Table 1: traceroute completeness summary."""
    summaries = dataset_summary(dataset)
    s4, s6 = summaries[IPVersion.V4], summaries[IPVersion.V6]
    metrics = [
        Metric("complete AS-level v4", 70.30, 100 * s4.complete_as_fraction, "%"),
        Metric("complete AS-level v6", 64.03, 100 * s6.complete_as_fraction, "%"),
        Metric("missing AS-level v4", 1.58, 100 * s4.missing_as_fraction, "%"),
        Metric("missing AS-level v6", 3.32, 100 * s6.missing_as_fraction, "%"),
        Metric("missing IP-level v4", 28.12, 100 * s4.missing_ip_fraction, "%"),
        Metric("missing IP-level v6", 32.65, 100 * s6.missing_ip_fraction, "%"),
        Metric("AS-loop rate v4", 2.16, 100 * s4.loop_fraction, "%"),
        Metric("AS-loop rate v6", 5.50, 100 * s6.loop_fraction, "%"),
        Metric("reached destination (all)", 75.0,
               100 * (s4.reached + s6.reached) / max(1, s4.collected + s6.collected), "%"),
    ]
    rows = [
        ("complete AS-level data",
         f"{100 * s4.complete_as_fraction:.2f}% ({s4.complete_as})",
         f"{100 * s6.complete_as_fraction:.2f}% ({s6.complete_as})"),
        ("missing AS-level data",
         f"{100 * s4.missing_as_fraction:.2f}% ({s4.missing_as})",
         f"{100 * s6.missing_as_fraction:.2f}% ({s6.missing_as})"),
        ("missing IP-level data",
         f"{100 * s4.missing_ip_fraction:.2f}% ({s4.missing_ip})",
         f"{100 * s6.missing_ip_fraction:.2f}% ({s6.missing_ip})"),
    ]
    report = render_table(("#traceroutes with", "IPv4", "IPv6"), rows)
    return ExperimentResult("table1", "Traceroute completeness summary", metrics, report)


# ----------------------------------------------------------------------
# Section 3: the illustrative example
# ----------------------------------------------------------------------

def experiment_fig1(
    platform: MeasurementPlatform, dataset: LongTermDataset
) -> ExperimentResult:
    """Figure 1: one long-haul pair with level shifts and a diurnal window.

    Picks the dual-stack pair whose timeline shows the largest baseline
    level shift, and reports its shape: distinct paths, baseline RTT per
    path, and the largest shift magnitude.
    """
    best_key = None
    best_shift = -1.0
    for (src, dst, version), timeline in dataset.timelines.items():
        if version is not IPVersion.V4:
            continue
        buckets = timeline.usable_rtts_by_path()
        if len(buckets) < 2:
            continue
        baselines = [
            float(np.percentile(rtts[np.isfinite(rtts)], 10))
            for rtts in buckets.values()
            if np.isfinite(rtts).sum() >= 3
        ]
        if len(baselines) < 2:
            continue
        shift = max(baselines) - min(baselines)
        if shift > best_shift:
            best_shift = shift
            best_key = (src, dst)

    metrics = [Metric("largest level shift observed", 108.0, best_shift, "ms")]
    lines: List[str] = []
    if best_key is not None:
        src_id, dst_id = best_key
        src = dataset.servers[src_id]
        dst = dataset.servers[dst_id]
        lines.append(f"pair: {src.city} -> {dst.city} (AS{src.asn} -> AS{dst.asn})")
        for version in (IPVersion.V4, IPVersion.V6):
            key = (src_id, dst_id, version)
            if key not in dataset.timelines:
                continue
            timeline = dataset.timelines[key]
            rows = []
            lifetimes = {
                pid: np.isfinite(rtts).sum()
                for pid, rtts in timeline.usable_rtts_by_path().items()
            }
            for pid, rtts in timeline.usable_rtts_by_path().items():
                finite = rtts[np.isfinite(rtts)]
                if finite.size < 3:
                    continue
                rows.append(
                    (f"path#{pid}", f"{np.percentile(finite, 10):.1f}ms",
                     f"{np.percentile(finite, 90):.1f}ms", int(lifetimes[pid]))
                )
            lines.append(f"IPv{int(version)} paths (baseline p10, spikes p90, samples):")
            lines.append(render_table(("path", "p10", "p90", "samples"), rows))
    return ExperimentResult(
        "fig1", "Illustrative server pair: level shifts in RTT", metrics, "\n".join(lines)
    )


# ----------------------------------------------------------------------
# Section 4: routing changes
# ----------------------------------------------------------------------

def experiment_fig2(dataset: LongTermDataset) -> ExperimentResult:
    """Figure 2: unique AS paths per timeline; AS-path pairs per pair."""
    metrics: List[Metric] = []
    reports: List[str] = []
    paper_p80 = {IPVersion.V4: 5, IPVersion.V6: 6}
    paper_frac1 = {IPVersion.V4: 18.0, IPVersion.V6: 16.0}
    for version in (IPVersion.V4, IPVersion.V6):
        counts = [
            analyze_timeline(timeline).unique_paths
            for timeline in dataset.by_version(version)
        ]
        ecdf = ECDF(counts)
        metrics.append(
            Metric(f"paths/timeline p80 v{int(version)}", paper_p80[version],
                   ecdf.quantile(0.8))
        )
        metrics.append(
            Metric(f"single-path timelines v{int(version)}", paper_frac1[version],
                   100 * ecdf.at(1.0), "%")
        )
        reports.append(render_ecdf(ecdf, f"AS paths per trace timeline (IPv{int(version)})",
                                   probe_points=(1, 5, 10)))

    paper_pairs_p80 = {IPVersion.V4: 8, IPVersion.V6: 9}
    for version in (IPVersion.V4, IPVersion.V6):
        pair_counts = []
        seen = set()
        for src, dst in dataset.pairs():
            unordered = (min(src, dst), max(src, dst))
            if unordered in seen:
                continue
            seen.add(unordered)
            fwd_key = (src, dst, version)
            rev_key = (dst, src, version)
            if fwd_key not in dataset.timelines or rev_key not in dataset.timelines:
                continue
            pair_counts.append(
                as_path_pair_count(dataset.timelines[fwd_key], dataset.timelines[rev_key])
            )
        ecdf = ECDF(pair_counts)
        metrics.append(
            Metric(f"AS-path pairs/server pair p80 v{int(version)}",
                   paper_pairs_p80[version], ecdf.quantile(0.8))
        )
        reports.append(render_ecdf(ecdf, f"AS-path pairs per server pair (IPv{int(version)})",
                                   probe_points=(1, 8, 9)))
    return ExperimentResult(
        "fig2", "Unique AS paths and AS-path pairs over the study", metrics,
        "\n".join(reports),
    )


def experiment_fig3(dataset: LongTermDataset) -> ExperimentResult:
    """Figure 3: prevalence of popular paths; number of route changes."""
    metrics: List[Metric] = []
    reports: List[str] = []
    for version in (IPVersion.V4, IPVersion.V6):
        stats = [analyze_timeline(timeline) for timeline in dataset.by_version(version)]
        prevalences = [s.popular_prevalence for s in stats if s.popular_path_id is not None]
        prevalence_ecdf = ECDF(prevalences)
        dominant = 100 * prevalence_ecdf.tail_fraction(0.5)
        metrics.append(
            Metric(f"timelines with dominant path (prev>=50%) v{int(version)}",
                   80.0, dominant, "%")
        )
        changes = [s.changes for s in stats]
        changes_ecdf = ECDF(changes)
        metrics.append(
            Metric(f"no-change timelines v{int(version)}",
                   18.0 if version is IPVersion.V4 else 16.0,
                   100 * changes_ecdf.at(0.0), "%")
        )
        metrics.append(
            Metric(f"changes/timeline p90 v{int(version)}", 30.0,
                   changes_ecdf.quantile(0.9))
        )
        reports.append(render_ecdf(prevalence_ecdf,
                                   f"prevalence of popular AS path (IPv{int(version)})",
                                   probe_points=(0.5,)))
        reports.append(render_ecdf(changes_ecdf,
                                   f"route changes per trace timeline (IPv{int(version)})",
                                   probe_points=(0, 30)))
    return ExperimentResult(
        "fig3", "Popular-path prevalence and route-change frequency", metrics,
        "\n".join(reports),
    )


def _heatmap_experiment(
    dataset: LongTermDataset, q: float, experiment_id: str, title: str,
    paper_tail_v4: float, paper_tail_v6: float,
) -> ExperimentResult:
    metrics: List[Metric] = []
    reports: List[str] = []
    paper_tails = {IPVersion.V4: paper_tail_v4, IPVersion.V6: paper_tail_v6}
    for version in (IPVersion.V4, IPVersion.V6):
        points = collect_lifetime_increase_points(dataset.by_version(version), q=q)
        if not points:
            continue
        heatmap = build_heatmap(points)
        increases = ECDF([increase for _, increase in points])
        metrics.append(
            Metric(f"p90 of RTT increase v{int(version)} (10% of paths exceed)",
                   paper_tails[version], increases.quantile(0.9), "ms")
        )
        metrics.append(
            Metric(f"p80 of RTT increase v{int(version)} (20% of paths exceed)",
                   25.0 if q == 10.0 else None, increases.quantile(0.8), "ms")
        )
        # The paper's qualitative headline: among large-increase paths, the
        # short-lived half of lifetimes dominates.
        lifetime_values = np.array([lifetime for lifetime, _ in points])
        median_lifetime = float(np.median(lifetime_values))
        large = [
            (lifetime, increase)
            for lifetime, increase in points
            if increase >= increases.quantile(0.9)
        ]
        short_share = (
            100.0 * np.mean([lifetime <= median_lifetime for lifetime, _ in large])
            if large else float("nan")
        )
        metrics.append(
            Metric(f"short-lived share of worst-decile paths v{int(version)}",
                   None, short_share, "%")
        )
        reports.append(f"IPv{int(version)}:")
        reports.append(render_heatmap(heatmap))
    return ExperimentResult(experiment_id, title, metrics, "\n".join(reports))


def experiment_fig4(dataset: LongTermDataset) -> ExperimentResult:
    """Figure 4: lifetime x increase-in-10th-percentile heatmaps."""
    return _heatmap_experiment(
        dataset, 10.0, "fig4",
        "AS-path lifetime vs increase in baseline (10th pct) RTT",
        paper_tail_v4=48.3, paper_tail_v6=59.0,
    )


def experiment_fig5(dataset: LongTermDataset) -> ExperimentResult:
    """Figure 5: lifetime x increase-in-90th-percentile heatmaps."""
    return _heatmap_experiment(
        dataset, 90.0, "fig5",
        "AS-path lifetime vs increase in 90th-percentile RTT",
        paper_tail_v4=71.3, paper_tail_v6=79.6,
    )


def experiment_fig6(dataset: LongTermDataset) -> ExperimentResult:
    """Figure 6: prevalence of sub-optimal AS paths at RTT thresholds."""
    metrics: List[Metric] = []
    reports: List[str] = []
    paper = {
        (IPVersion.V4, 20.0): (0.30, 10.0),   # threshold: (prevalence probe, paper %)
        (IPVersion.V6, 20.0): (0.50, 10.0),
        (IPVersion.V4, 100.0): (0.20, 1.1),
        (IPVersion.V6, 100.0): (0.40, 1.3),
    }
    for version in (IPVersion.V4, IPVersion.V6):
        ecdfs = suboptimal_prevalence(dataset.by_version(version))
        for threshold, ecdf in sorted(ecdfs.items()):
            reports.append(
                render_ecdf(
                    ecdf,
                    f"prevalence of sub-optimal paths, >= {threshold:g}ms (IPv{int(version)})",
                    probe_points=(0.2, 0.3, 0.5),
                )
            )
            key = (version, threshold)
            if key in paper:
                probe, paper_pct = paper[key]
                metrics.append(
                    Metric(
                        f"timelines with >= {threshold:g}ms paths at prevalence >= {probe:g} "
                        f"v{int(version)}",
                        paper_pct,
                        100 * ecdf.tail_fraction(probe),
                        "%",
                    )
                )
    return ExperimentResult("fig6", "Sub-optimal AS-path prevalence", metrics,
                            "\n".join(reports))


def experiment_fig7(
    platform: MeasurementPlatform, days: float = 22.0, jobs: int = 1
) -> ExperimentResult:
    """Figure 7: 30-minute vs 3-hour-subsampled increase ECDFs."""
    dataset = build_longterm_dataset(
        platform, LongTermConfig(days=days, period_hours=0.5), jobs=jobs
    )
    metrics: List[Metric] = []
    reports: List[str] = []
    for version in (IPVersion.V4, IPVersion.V6):
        for q, label in ((10.0, "10th"), (90.0, "90th")):
            comparison = compare_granularity(dataset.by_version(version), q=q)
            metrics.append(
                Metric(
                    f"KS distance, {label} pct v{int(version)}", 0.0,
                    comparison.ks_distance(),
                )
            )
            metrics.append(
                Metric(
                    f"median gap, {label} pct v{int(version)}", 0.0,
                    abs(
                        comparison.all_increases.quantile(0.5)
                        - comparison.subsampled_increases.quantile(0.5)
                    ),
                    "ms",
                )
            )
            reports.append(render_ecdf(
                comparison.all_increases,
                f"IPv{int(version)} {label}-pct increases (all 30-min samples)"))
            reports.append(render_ecdf(
                comparison.subsampled_increases,
                f"IPv{int(version)} {label}-pct increases (3h subsample)"))
    return ExperimentResult(
        "fig7", "Granularity sensitivity: 30 minutes vs 3 hours", metrics,
        "\n".join(reports),
    )


# ----------------------------------------------------------------------
# Section 5: congestion
# ----------------------------------------------------------------------

def experiment_congestion_norm(pings: ShortTermPingDataset) -> ExperimentResult:
    """Section 5.1: is consistent congestion the norm?"""
    metrics: List[Metric] = []
    rows = []
    paper_spread = {IPVersion.V4: 9.5, IPVersion.V6: 4.0}
    paper_congested = {IPVersion.V4: 2.0, IPVersion.V6: 0.6}
    for version in (IPVersion.V4, IPVersion.V6):
        stats = congestion_population_stats(pings.by_version(version))
        metrics.append(
            Metric(f"pairs with >10ms p95-p5 spread v{int(version)}",
                   paper_spread[version], 100 * stats.spread_fraction, "%")
        )
        metrics.append(
            Metric(f"pairs with strong diurnal + spread v{int(version)}",
                   paper_congested[version], 100 * stats.congested_fraction, "%")
        )
        rows.append((f"IPv{int(version)}", stats.pairs, stats.spread_exceeds, stats.congested))
    report = render_table(("protocol", "pairs", "spread>10ms", "consistent congestion"), rows)
    return ExperimentResult("congestion-norm", "Congestion is not the norm (Section 5.1)",
                            metrics, report)


def experiment_localization(
    traces: ShortTermTraceDataset, platform: MeasurementPlatform
) -> ExperimentResult:
    """Section 5.2: locate the congested segment; score against ground truth."""
    located = persistent = attempted = correct = 0
    for entry in traces.entries.values():
        if not entry.static_path:
            continue
        attempted += 1
        result = localize_congestion(entry)
        if result.end_to_end_diurnal:
            persistent += 1
        if not result.located:
            continue
        located += 1
        key = entry.segment_keys[result.congested_hop]
        congested_keys = set(platform.congestion.congested_keys())
        # Congestion anywhere up to the located hop counts as correct when
        # the located segment is the first truly congested one.
        truly_congested = [
            index for index, segment in enumerate(entry.segment_keys)
            if segment in congested_keys
        ]
        if truly_congested and truly_congested[0] == result.congested_hop:
            correct += 1
    metrics = [
        Metric("pairs with persistent diurnal weeks later", 30.0,
               100 * persistent / attempted if attempted else float("nan"), "%"),
        Metric("localization accuracy vs ground truth", None,
               100 * correct / located if located else float("nan"), "%"),
        Metric("located pairs", None, float(located)),
    ]
    report = (
        f"static-path entries: {attempted}; persistent diurnal: {persistent}; "
        f"located: {located}; ground-truth-correct: {correct}"
    )
    return ExperimentResult("localization", "Locating congestion (Section 5.2)",
                            metrics, report)


def _build_ownership(traces: ShortTermTraceDataset, platform: MeasurementPlatform):
    """Ownership inference over the whole traceroute corpus.

    The paper "processed all traceroute paths as a set" -- the label graph
    is built from every measured path, not only the congested pairs'.
    """
    paths = []
    for entry in traces.entries.values():
        paths.append(
            [HopView(address=address, asn=asn)
             for address, asn in zip(entry.hop_addresses, entry.hop_mapped_asn)]
        )
    for src, dst in platform.server_pairs():
        for version in (IPVersion.V4, IPVersion.V6):
            # Both the steady-state path and the first alternate: routing
            # changes during a 16-month campaign expose alternates too, and
            # the label graph is much better connected with them.
            for candidate in (0, 1):
                realization = platform.realization(src, dst, version, candidate)
                if realization is None:
                    continue
                paths.append(
                    [HopView(address=hop.address, asn=hop.mapped_asn)
                     for hop in realization.hops]
                )
    return infer_ownership(paths, platform.graph.relationships, passes=3)


def experiment_link_classification(
    traces: ShortTermTraceDataset, platform: MeasurementPlatform
) -> ExperimentResult:
    """Section 5.3: classify congested links by ownership inference."""
    ownership = _build_ownership(traces, platform)
    ixp_prefixes = list(platform.plan.ixp_lan_v4.values()) + list(
        platform.plan.ixp_lan_v6.values()
    )
    classifier = LinkClassifier(
        relationships=platform.graph.relationships,
        ownership=ownership,
        ixp_prefixes=ixp_prefixes,
    )
    for entry in traces.entries.values():
        if not entry.static_path:
            continue
        result = localize_congestion(entry)
        if result.located and result.link is not None:
            classifier.add(*result.link)

    counts = classifier.counts()
    weighted = classifier.weighted_counts()
    media = classifier.medium_counts()
    internal = counts.get(LinkClass.INTERNAL, 0)
    p2p = counts.get(LinkClass.INTERCONNECTION_P2P, 0)
    c2p = counts.get(LinkClass.INTERCONNECTION_C2P, 0)
    unknown = counts.get(LinkClass.UNKNOWN, 0)
    interconnection = p2p + c2p
    weighted_internal = weighted.get(LinkClass.INTERNAL, 0)
    weighted_inter = weighted.get(LinkClass.INTERCONNECTION_P2P, 0) + weighted.get(
        LinkClass.INTERCONNECTION_C2P, 0
    )
    private = media.get(LinkMediumClass.PRIVATE, 0)
    public = media.get(LinkMediumClass.PUBLIC_IXP, 0)

    def ratio(numerator: float, denominator: float) -> float:
        return numerator / denominator if denominator else float("nan")

    metrics = [
        Metric("internal/interconnection count ratio", 1768 / 1121,
               ratio(internal, interconnection)),
        Metric("p2p share of interconnection", 100 * 658 / 1121,
               100 * ratio(p2p, interconnection), "%"),
        Metric("interconnection/internal weighted ratio > 1", None,
               ratio(weighted_inter, max(1, weighted_internal))),
        Metric("private share of congested interconnects", None,
               100 * ratio(private, private + public), "%"),
    ]
    rows = [
        ("internal", internal, weighted.get(LinkClass.INTERNAL, 0)),
        ("interconnection p2p", p2p,
         weighted.get(LinkClass.INTERCONNECTION_P2P, 0)),
        ("interconnection c2p", c2p,
         weighted.get(LinkClass.INTERCONNECTION_C2P, 0)),
        ("unknown", unknown, weighted.get(LinkClass.UNKNOWN, 0)),
        ("private interconnects", private, ""),
        ("public (IXP) interconnects", public, ""),
    ]
    report = render_table(("congested link class", "links", "weighted by pairs"), rows)
    return ExperimentResult(
        "link-classification", "Congested link classification (Section 5.3)",
        metrics, report,
    )


def experiment_fig9(
    traces: ShortTermTraceDataset, platform: MeasurementPlatform
) -> ExperimentResult:
    """Figure 9: density of the congestion overhead."""
    ownership = _build_ownership(traces, platform)
    classifier = LinkClassifier(
        relationships=platform.graph.relationships,
        ownership=ownership,
        ixp_prefixes=list(platform.plan.ixp_lan_v4.values())
        + list(platform.plan.ixp_lan_v6.values()),
    )
    groups: Dict[str, List[float]] = {
        "all interconnection": [],
        "all internal": [],
        "US-US interconnection": [],
        "US-US internal": [],
        "transcontinental": [],
    }
    servers = {server.server_id: server for server in platform.measurement_servers()}
    for entry in traces.entries.values():
        if not entry.static_path:
            continue
        result = localize_congestion(entry)
        if not result.located or result.link is None:
            continue
        overhead = congestion_overhead(entry.times_hours, entry.rtt_ms)
        if overhead is None:
            continue
        link = classifier.add(*result.link)
        src = servers.get(entry.src_server_id)
        dst = servers.get(entry.dst_server_id)
        us_us = bool(
            src and dst and src.city.country == "US" and dst.city.country == "US"
        )
        transcontinental = bool(src and dst and src.city.continent != dst.city.continent)
        if link.link_class.is_interconnection:
            groups["all interconnection"].append(overhead)
            if us_us:
                groups["US-US interconnection"].append(overhead)
        elif link.link_class is LinkClass.INTERNAL:
            groups["all internal"].append(overhead)
            if us_us:
                groups["US-US internal"].append(overhead)
        if transcontinental:
            groups["transcontinental"].append(overhead)

    metrics: List[Metric] = []
    rows = []
    for name, values in groups.items():
        if not values:
            rows.append((name, 0, "-", "-", "-"))
            continue
        array = np.asarray(values)
        in_band = 100 * np.mean((array >= 18.0) & (array <= 32.0))
        rows.append(
            (name, len(values), f"{np.median(array):.1f}ms",
             f"{in_band:.0f}%", f"{np.percentile(array, 90):.1f}ms")
        )
    all_located = groups["all interconnection"] + groups["all internal"]
    if all_located:
        array = np.asarray(all_located)
        metrics.append(
            Metric("typical congestion overhead (median)", 25.0,
                   float(np.median(array)), "ms")
        )
        metrics.append(
            Metric("share of overheads in 20-30ms band", 60.0,
                   float(100 * np.mean((array >= 18.0) & (array <= 32.0))), "%")
        )
    us = groups["US-US interconnection"] + groups["US-US internal"]
    if us:
        array = np.asarray(us)
        metrics.append(
            Metric("US-US share in 20-30ms band", 90.0,
                   float(100 * np.mean((array >= 18.0) & (array <= 32.0))), "%")
        )
    if groups["transcontinental"]:
        metrics.append(
            Metric("transcontinental overhead (median)", 60.0,
                   float(np.median(groups["transcontinental"])), "ms")
        )
    report = render_table(
        ("group", "events", "median", "in ~20-30ms band", "p90"), rows
    )
    return ExperimentResult("fig9", "Congestion overhead density", metrics, report)


# ----------------------------------------------------------------------
# Section 6: IPv4 vs IPv6
# ----------------------------------------------------------------------

def experiment_fig10a(dataset: LongTermDataset) -> ExperimentResult:
    """Figure 10a: paired RTT differences between protocols."""
    comparison = paired_rtt_differences(dataset)
    metrics = [
        Metric("traceroutes with |RTTv4-RTTv6| <= 10ms", 50.0,
               100 * comparison.within_band_fraction(10.0), "%"),
        Metric("pairs where IPv6 saves >= 50ms", 3.7,
               100 * comparison.v6_saves_fraction(50.0), "%"),
        Metric("pairs where IPv4 saves >= 50ms", 8.5,
               100 * comparison.v4_saves_fraction(50.0), "%"),
    ]
    report = "\n".join(
        [
            render_ecdf(comparison.all_diffs, "RTTv4 - RTTv6, all paired traceroutes",
                        probe_points=(-50, -10, 10, 50), unit="ms"),
            render_ecdf(comparison.same_path_diffs, "RTTv4 - RTTv6, same AS paths",
                        probe_points=(-10, 10), unit="ms"),
        ]
    )
    return ExperimentResult("fig10a", "IPv4 vs IPv6 paired RTT differences", metrics, report)


def experiment_fig10b(dataset: LongTermDataset) -> ExperimentResult:
    """Figure 10b: RTT inflation over the speed-of-light bound."""
    study = pair_inflation(dataset)
    metrics = [
        Metric("median inflation v4", 3.01, study.median(IPVersion.V4)),
        Metric("median inflation v6", 3.10, study.median(IPVersion.V6)),
        Metric("p90 inflation v4", 5.3, study.ecdf(IPVersion.V4).quantile(0.9)),
        Metric("p90 inflation v6", 5.9, study.ecdf(IPVersion.V6).quantile(0.9)),
    ]
    us_median = study.ecdf(IPVersion.V4, us_only=True).quantile(0.5)
    trans_median = study.ecdf(IPVersion.V4, transcontinental_only=True).quantile(0.5)
    metrics.append(Metric("US-US median inflation v4", None, us_median))
    metrics.append(Metric("transcontinental median inflation v4", None, trans_median))
    report = "\n".join(
        [
            render_ecdf(study.ecdf(IPVersion.V4), "inflation IPv4"),
            render_ecdf(study.ecdf(IPVersion.V6), "inflation IPv6"),
            render_ecdf(study.ecdf(IPVersion.V4, us_only=True), "inflation IPv4 US<->US"),
            render_ecdf(
                study.ecdf(IPVersion.V4, transcontinental_only=True),
                "inflation IPv4 transcontinental",
            ),
        ]
    )
    return ExperimentResult("fig10b", "RTT inflation over cRTT", metrics, report)


# ----------------------------------------------------------------------
# Extensions: the follow-up studies the paper's conclusion calls for
# ----------------------------------------------------------------------

def experiment_loss(pings: ShortTermPingDataset) -> ExperimentResult:
    """Extension: packet loss (Section 8's suggested follow-up).

    Losses on server-to-server paths are rare overall, but on congested
    pairs they concentrate in the busy hours and track the RTT lift.
    """
    metrics: List[Metric] = []
    rows = []
    for version in (IPVersion.V4, IPVersion.V6):
        summary = loss_population_summary(pings.by_version(version))
        metrics.append(
            Metric(f"median loss rate v{int(version)}", None,
                   100 * summary.median_loss_rate, "%")
        )
        metrics.append(
            Metric(f"pairs with busy-hour loss v{int(version)}", None,
                   100 * summary.diurnal_loss_fraction, "%")
        )
        metrics.append(
            Metric(f"loss/RTT correlation on those pairs v{int(version)}", None,
                   summary.median_correlation_diurnal)
        )
        rows.append(
            (f"IPv{int(version)}", summary.pairs,
             f"{100 * summary.median_loss_rate:.2f}%",
             summary.diurnal_loss_pairs,
             f"{summary.median_correlation_diurnal:.2f}")
        )
    report = render_table(
        ("protocol", "pairs", "median loss", "diurnal-loss pairs",
         "median loss/RTT corr"),
        rows,
    )
    return ExperimentResult(
        "ext-loss", "Extension: packet loss follows congestion", metrics, report
    )


def experiment_sharedinfra(dataset: LongTermDataset) -> ExperimentResult:
    """Extension: IPv4/IPv6 infrastructure sharing (Section 8's question)."""
    study = shared_infrastructure_study(dataset)
    metrics = [
        Metric("dual-stack pairs assessed", None, float(study.pairs)),
        Metric("dominant AS paths agree", None,
               100 * study.dominant_match_fraction, "%"),
        Metric("median synchronized-change fraction", None,
               study.median_synchronized_fraction()),
        Metric("median RTT correlation, same dominant path", None,
               study.median_correlation(matching_paths=True)),
        Metric("median RTT correlation, different dominant path", None,
               study.median_correlation(matching_paths=False)),
    ]
    report = (
        "Sharing evidence: pairs whose dominant AS path agrees across\n"
        "protocols show routing changes that fire together and RTT series\n"
        "that move together; pairs on divergent paths do not."
    )
    return ExperimentResult(
        "ext-sharedinfra", "Extension: IPv4/IPv6 infrastructure sharing",
        metrics, report,
    )


# ----------------------------------------------------------------------
# The full reproduction
# ----------------------------------------------------------------------

def run_all_experiments(
    platform: MeasurementPlatform,
    longterm: LongTermDataset,
    pings: ShortTermPingDataset,
    traces: ShortTermTraceDataset,
    include_fig7: bool = True,
    jobs: int = 1,
    timings: Optional[object] = None,
) -> List[ExperimentResult]:
    """Run every table/figure experiment and return their results.

    Args:
        platform / longterm / pings / traces: The assembled inputs.
        include_fig7: Whether to run the (dataset-building) granularity
            experiment.
        jobs: Worker processes for experiments that build datasets (fig7).
        timings: Optional :class:`repro.harness.engine.Timings`; records
            one ``experiment:<id>`` stage per driver.  A span of the same
            name is opened on the current tracer either way.
    """
    drivers = [
        ("table1", lambda: experiment_table1(longterm)),
        ("fig1", lambda: experiment_fig1(platform, longterm)),
        ("fig2", lambda: experiment_fig2(longterm)),
        ("fig3", lambda: experiment_fig3(longterm)),
        ("fig4", lambda: experiment_fig4(longterm)),
        ("fig5", lambda: experiment_fig5(longterm)),
        ("fig6", lambda: experiment_fig6(longterm)),
    ]
    if include_fig7:
        drivers.append(("fig7", lambda: experiment_fig7(platform, jobs=jobs)))
    drivers.extend(
        [
            ("congestion-norm", lambda: experiment_congestion_norm(pings)),
            ("localization", lambda: experiment_localization(traces, platform)),
            ("link-classification",
             lambda: experiment_link_classification(traces, platform)),
            ("fig9", lambda: experiment_fig9(traces, platform)),
            ("fig10a", lambda: experiment_fig10a(longterm)),
            ("fig10b", lambda: experiment_fig10b(longterm)),
            ("ext-loss", lambda: experiment_loss(pings)),
            ("ext-sharedinfra", lambda: experiment_sharedinfra(longterm)),
        ]
    )
    results: List[ExperimentResult] = []
    for name, driver in drivers:
        started = time.perf_counter()
        with obs_trace.span(f"experiment:{name}"):
            result = driver()
        if timings is not None:
            timings.record(
                f"experiment:{result.experiment_id}", time.perf_counter() - started
            )
        results.append(result)
    return results
