"""Text-mode curve rendering: ECDF plots and RTT timelines.

The paper's figures are ECDFs and time series; these renderers draw them
as character grids so a terminal-only reproduction can still *show* the
curves, not just quantiles.  Used by the examples and available to any
report that wants a visual.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ecdf import ECDF
from repro.datasets.timeline import TraceTimeline

__all__ = ["plot_ecdfs", "plot_timeline"]

_MARKS = "#*o+x%@&"


def _format_axis_value(value: float) -> str:
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.1f}"
    return f"{value:.2f}"


def plot_ecdfs(
    curves: Sequence[Tuple[str, ECDF]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    log_x: bool = False,
) -> str:
    """Draw one or more ECDFs on a shared character grid.

    Args:
        curves: ``(label, ecdf)`` pairs; empty ECDFs are skipped.
        width / height: Grid size in characters.
        x_label: Axis caption appended below the grid.
        log_x: Log-scale the x axis (the paper does for path counts).

    Returns:
        A multi-line string: the grid, an x-axis line, and a legend.
    """
    drawable = [(label, ecdf) for label, ecdf in curves if len(ecdf) > 0]
    if not drawable:
        return "(no data)"
    lows = [ecdf.values[0] for _, ecdf in drawable]
    highs = [ecdf.values[-1] for _, ecdf in drawable]
    x_min, x_max = min(lows), max(highs)
    if log_x:
        x_min = max(x_min, 1e-9)
        x_max = max(x_max, x_min * 10)
    if x_max <= x_min:
        x_max = x_min + 1.0

    def x_position(value: float) -> int:
        if log_x:
            fraction = (np.log10(max(value, x_min)) - np.log10(x_min)) / (
                np.log10(x_max) - np.log10(x_min)
            )
        else:
            fraction = (value - x_min) / (x_max - x_min)
        return min(width - 1, max(0, int(round(fraction * (width - 1)))))

    grid = [[" "] * width for _ in range(height)]
    for curve_index, (_, ecdf) in enumerate(drawable):
        mark = _MARKS[curve_index % len(_MARKS)]
        for column in range(width):
            if log_x:
                x = 10 ** (
                    np.log10(x_min)
                    + column / (width - 1) * (np.log10(x_max) - np.log10(x_min))
                )
            else:
                x = x_min + column / (width - 1) * (x_max - x_min)
            probability = ecdf.at(x)
            row = height - 1 - min(
                height - 1, max(0, int(round(probability * (height - 1))))
            )
            if grid[row][column] == " ":
                grid[row][column] = mark

    lines: List[str] = []
    for row_index, row in enumerate(grid):
        probability = 1.0 - row_index / (height - 1)
        prefix = f"{probability:4.2f} |" if row_index % 5 == 0 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    left = _format_axis_value(x_min)
    right = _format_axis_value(x_max)
    axis = f"      {left}" + " " * max(1, width - len(left) - len(right) - 1) + right
    lines.append(axis)
    if x_label:
        lines.append(f"      x: {x_label}" + ("  (log scale)" if log_x else ""))
    legend = "  ".join(
        f"{_MARKS[index % len(_MARKS)]} {label}"
        for index, (label, _) in enumerate(drawable)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def plot_timeline(
    timeline: TraceTimeline,
    width: int = 72,
    height: int = 14,
    title: Optional[str] = None,
) -> str:
    """Draw one trace timeline's RTT series, marking path changes.

    RTT samples render as ``.``; columns where the observed AS path differs
    from the previous column's get a ``|`` marker on the top row -- the
    level-shift view of the paper's Figure 1a.
    """
    usable = timeline.usable_mask() & np.isfinite(timeline.rtt_ms)
    if not usable.any():
        return "(no usable samples)"
    times = timeline.times_hours
    rtts = np.where(usable, timeline.rtt_ms, np.nan)
    buckets = np.array_split(np.arange(times.size), width)

    column_rtt = np.full(width, np.nan)
    column_path = np.full(width, -1, dtype=int)
    for index, bucket in enumerate(buckets):
        if bucket.size == 0:
            continue
        values = rtts[bucket]
        finite = values[np.isfinite(values)]
        if finite.size:
            column_rtt[index] = float(np.median(finite))
        ids = timeline.path_id[bucket]
        ids = ids[ids >= 0]
        if ids.size:
            column_path[index] = int(np.bincount(ids).argmax())

    finite = column_rtt[np.isfinite(column_rtt)]
    low, high = float(finite.min()), float(finite.max())
    if high <= low:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]
    previous_path = -1
    for column in range(width):
        if column_path[column] >= 0:
            if previous_path >= 0 and column_path[column] != previous_path:
                grid[0][column] = "|"
            previous_path = column_path[column]
        value = column_rtt[column]
        if not np.isfinite(value):
            continue
        fraction = (value - low) / (high - low)
        row = height - 1 - min(height - 1, max(0, int(round(fraction * (height - 2)))))
        grid[row][column] = "."

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{_format_axis_value(high):>8} ms")
    lines.extend("     " + "".join(row) for row in grid)
    lines.append(f"{_format_axis_value(low):>8} ms   "
                 f"[{times[0]:.0f}h .. {times[-1]:.0f}h]   '|' = AS-path change")
    return "\n".join(lines)
