"""Experiment harness: scenarios, per-figure drivers, and report rendering.

- :mod:`repro.harness.scenarios` -- canonical scaled scenario configs and a
  cached builder, so the benchmarks and examples share platforms/datasets.
- :mod:`repro.harness.experiments` -- one driver per paper table/figure;
  each returns a structured result plus a rendered text report with the
  paper's value next to the measured one.
- :mod:`repro.harness.report` -- plain-text tables, ECDF series and decile
  heatmaps in the style the paper prints them.
- :mod:`repro.harness.engine` -- the on-disk artifact cache and per-stage
  wall-time recorder behind ``reproduce --cache`` / ``--timings``.
"""

from repro.harness.engine import (
    ArtifactCache,
    Timings,
    cached_longterm,
    cached_platform,
    config_fingerprint,
    default_cache_dir,
)
from repro.harness.experiments import (
    ExperimentResult,
    run_all_experiments,
)
from repro.harness.report import (
    format_duration,
    render_ecdf,
    render_heatmap,
    render_table,
)
from repro.harness.scenarios import (
    Scenario,
    congested_pairs,
    get_scenario,
    scenario_platform,
)

__all__ = [
    "Scenario",
    "get_scenario",
    "scenario_platform",
    "congested_pairs",
    "ExperimentResult",
    "run_all_experiments",
    "render_table",
    "render_ecdf",
    "render_heatmap",
    "format_duration",
    "Timings",
    "ArtifactCache",
    "config_fingerprint",
    "default_cache_dir",
    "cached_platform",
    "cached_longterm",
]
