"""repro.faults -- deterministic fault injection + recovery policies.

Stdlib-only (no numpy): the plane must be importable from forked shard
workers, the service supervisor, and the linter alike.
"""

from repro.faults.completeness import (
    CompletenessView,
    DataCompleteness,
    MissingUnit,
)
from repro.faults.plane import (
    FaultsConfig,
    FaultSchedule,
    InjectedFault,
    RetryPolicy,
    SupervisionPolicy,
    backoff_delay,
    faults_config_from_dict,
    get_plane,
    install,
    load_faults_config,
    retry_policy_from_dict,
    supervision_policy_from_dict,
    uninstall,
)

__all__ = [
    "CompletenessView",
    "DataCompleteness",
    "FaultSchedule",
    "FaultsConfig",
    "InjectedFault",
    "MissingUnit",
    "RetryPolicy",
    "SupervisionPolicy",
    "backoff_delay",
    "faults_config_from_dict",
    "get_plane",
    "install",
    "load_faults_config",
    "retry_policy_from_dict",
    "supervision_policy_from_dict",
    "uninstall",
]
