"""Deterministic fault-injection plane.

Reproducing a measurement platform means reproducing its *failures*:
probe loss, dead vantage points, and torn snapshots are the normal
operating condition at CDN scale, and a robustness layer that can only
be exercised by real crashes cannot be tested deterministically.  This
module derives every injected fault from a named seed through the same
SplitMix64 counter-hash style as :mod:`repro.stream.mesh`, so a fault
schedule is a pure function of ``(seed, fault kind, unit index)`` --
bit-reproducible across shard counts, process restarts, and resumes.

Decisions are keyed on the *unit index*, never the shard id: the same
unit misbehaves identically whether the source runs 1, 2, or 4 shards,
which is what lets the chaos suite assert byte-identical figures at any
worker count.  Each injector is *attempt-gated*: a unit scheduled to
crash does so for its first ``crash_repeats`` attempts and then
succeeds, so bounded retry deterministically heals the run.

The plane is installed process-globally (:func:`install`) and inherited
by forked shard workers; code under test consults :func:`get_plane`
and does nothing when no plane is installed, so the production path
pays one ``None`` check per unit.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "FaultsConfig",
    "FaultSchedule",
    "InjectedFault",
    "RetryPolicy",
    "SupervisionPolicy",
    "backoff_delay",
    "faults_config_from_dict",
    "get_plane",
    "install",
    "load_faults_config",
    "retry_policy_from_dict",
    "supervision_policy_from_dict",
    "uninstall",
]

_MASK = (1 << 64) - 1
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9
_MIX_C = 0x94D049BB133111EB


def _mix64(value: int) -> int:
    """SplitMix64 finalizer over pure Python ints (wrapping uint64)."""
    z = (value + _MIX_A) & _MASK
    z = ((z ^ (z >> 30)) * _MIX_B) & _MASK
    z = ((z ^ (z >> 27)) * _MIX_C) & _MASK
    return z ^ (z >> 31)


def _uniform01(word: int) -> float:
    """Map a 64-bit word onto [0, 1) with full 53-bit precision."""
    return (word >> 11) * (2.0 ** -53)


# Fixed integer tags per fault kind.  Python's ``hash()`` is salted per
# process (PYTHONHASHSEED), so kind tags must be literal constants for
# the schedule to reproduce across runs.
_KIND_CRASH = 0x11
_KIND_STALL = 0x22
_KIND_TRANSIENT = 0x33
_KIND_CORRUPT = 0x44
_KIND_SKEW = 0x55
_KIND_JITTER = 0x66


class InjectedFault(RuntimeError):
    """Raised (or simulated) by an injector; carries the fault kind."""

    def __init__(self, kind: str, detail: str):
        super().__init__(f"injected fault [{kind}]: {detail}")
        self.kind = kind


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def _check_positive_int(name: str, value: int) -> None:
    if not isinstance(value, int) or value < 1:
        raise ValueError(f"{name} must be an integer >= 1, got {value!r}")


def _check_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def _index_tuple(name: str, value) -> Tuple[int, ...]:
    items = tuple(value)
    for item in items:
        if not isinstance(item, int) or item < 0:
            raise ValueError(
                f"{name} entries must be integers >= 0, got {item!r}"
            )
    return items


@dataclass(frozen=True)
class FaultsConfig:
    """Seeded fault schedule parameters.

    Each injector has a probabilistic knob (``*_rate``, hashed per unit
    index) and a targeted knob (``*_units`` / ``*_saves``, exact
    indices) -- targeted faults make tests and CI smoke runs exact
    rather than statistical.  ``*_repeats`` is how many attempts at a
    scheduled unit fail before the injector lets it through, which is
    what a bounded retry budget deterministically absorbs.
    """

    seed: int = 0
    # Worker crash (os._exit mid-unit) ------------------------------
    crash_rate: float = 0.0
    crash_units: Tuple[int, ...] = ()
    crash_repeats: int = 1
    # Queue stall (slow shard) --------------------------------------
    stall_rate: float = 0.0
    stall_units: Tuple[int, ...] = ()
    stall_s: float = 0.25
    stall_repeats: int = 1
    # Transient unit-build exception --------------------------------
    transient_rate: float = 0.0
    transient_units: Tuple[int, ...] = ()
    transient_repeats: int = 1
    # Checkpoint corruption/truncation ------------------------------
    corrupt_rate: float = 0.0
    corrupt_saves: Tuple[int, ...] = ()
    # Clock-skewed cadence ticks ------------------------------------
    skew_rate: float = 0.0
    skew_max_s: float = 0.0

    def __post_init__(self):
        if not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        _check_rate("crash_rate", self.crash_rate)
        _check_rate("stall_rate", self.stall_rate)
        _check_rate("transient_rate", self.transient_rate)
        _check_rate("corrupt_rate", self.corrupt_rate)
        _check_rate("skew_rate", self.skew_rate)
        _check_positive_int("crash_repeats", self.crash_repeats)
        _check_positive_int("stall_repeats", self.stall_repeats)
        _check_positive_int("transient_repeats", self.transient_repeats)
        _check_non_negative("stall_s", self.stall_s)
        _check_non_negative("skew_max_s", self.skew_max_s)
        object.__setattr__(
            self, "crash_units", _index_tuple("crash_units", self.crash_units)
        )
        object.__setattr__(
            self, "stall_units", _index_tuple("stall_units", self.stall_units)
        )
        object.__setattr__(
            self, "transient_units",
            _index_tuple("transient_units", self.transient_units),
        )
        object.__setattr__(
            self, "corrupt_saves",
            _index_tuple("corrupt_saves", self.corrupt_saves),
        )

    @property
    def active(self) -> bool:
        """True when any injector can ever fire."""
        return bool(
            self.crash_rate or self.crash_units
            or self.stall_rate or self.stall_units
            or self.transient_rate or self.transient_units
            or self.corrupt_rate or self.corrupt_saves
            or (self.skew_rate and self.skew_max_s)
        )


class FaultSchedule:
    """Pure decision functions over a :class:`FaultsConfig`.

    Every method is deterministic: same config, same arguments, same
    answer -- in the parent, in a forked worker, and after a resume.
    """

    def __init__(self, config: FaultsConfig):
        self.config = config
        self._crash_units = frozenset(config.crash_units)
        self._stall_units = frozenset(config.stall_units)
        self._transient_units = frozenset(config.transient_units)
        self._corrupt_saves = frozenset(config.corrupt_saves)

    # -- internal hashing -------------------------------------------
    def _word(self, kind: int, value: int) -> int:
        z = _mix64((self.config.seed ^ (kind * _MIX_A)) & _MASK)
        return _mix64((z + value) & _MASK)

    def _word_str(self, kind: int, tag: str, value: int) -> int:
        z = _mix64((self.config.seed ^ (kind * _MIX_A)) & _MASK)
        for byte in tag.encode("utf-8"):
            z = _mix64((z + byte + 1) & _MASK)
        return _mix64((z + value) & _MASK)

    # -- injector decisions -----------------------------------------
    def crash(self, unit_index: int, attempt: int) -> bool:
        """Should attempt ``attempt`` (0-based) at this unit crash?"""
        cfg = self.config
        if attempt >= cfg.crash_repeats:
            return False
        if unit_index in self._crash_units:
            return True
        if cfg.crash_rate <= 0.0:
            return False
        return _uniform01(self._word(_KIND_CRASH, unit_index)) < cfg.crash_rate

    def stall_s_for(self, unit_index: int, attempt: int) -> float:
        """Seconds this attempt should stall (0.0 = no stall)."""
        cfg = self.config
        if attempt >= cfg.stall_repeats:
            return 0.0
        if unit_index in self._stall_units:
            return cfg.stall_s
        if cfg.stall_rate <= 0.0:
            return 0.0
        word = self._word(_KIND_STALL, unit_index)
        return cfg.stall_s if _uniform01(word) < cfg.stall_rate else 0.0

    def transient(self, unit_index: int, attempt: int) -> bool:
        """Should this attempt raise a transient build exception?"""
        cfg = self.config
        if attempt >= cfg.transient_repeats:
            return False
        if unit_index in self._transient_units:
            return True
        if cfg.transient_rate <= 0.0:
            return False
        word = self._word(_KIND_TRANSIENT, unit_index)
        return _uniform01(word) < cfg.transient_rate

    def corrupt(self, tag: str, save_ordinal: int) -> bool:
        """Should the ``save_ordinal``-th save of store ``tag`` corrupt?"""
        cfg = self.config
        if save_ordinal in self._corrupt_saves:
            return True
        if cfg.corrupt_rate <= 0.0:
            return False
        word = self._word_str(_KIND_CORRUPT, tag, save_ordinal)
        return _uniform01(word) < cfg.corrupt_rate

    def cadence_skew_s(self, name: str, cycle: int) -> float:
        """Signed cadence-tick skew in [-skew_max_s, +skew_max_s]."""
        cfg = self.config
        if cfg.skew_rate <= 0.0 or cfg.skew_max_s <= 0.0:
            return 0.0
        gate = self._word_str(_KIND_SKEW, name, cycle)
        if _uniform01(gate) >= cfg.skew_rate:
            return 0.0
        magnitude = self._word_str(_KIND_SKEW, name, cycle ^ _MASK)
        return (2.0 * _uniform01(magnitude) - 1.0) * cfg.skew_max_s


# -- process-global plane -------------------------------------------
_PLANE: Optional[FaultSchedule] = None


def install(config: FaultsConfig) -> FaultSchedule:
    """Install a fault plane process-wide (inherited by forked workers)."""
    global _PLANE
    _PLANE = FaultSchedule(config)
    return _PLANE


def get_plane() -> Optional[FaultSchedule]:
    """The installed fault plane, or None in production runs."""
    return _PLANE


def uninstall() -> None:
    """Remove the installed fault plane (tests)."""
    global _PLANE
    _PLANE = None


# -- recovery policies ----------------------------------------------
@dataclass(frozen=True)
class SupervisionPolicy:
    """How :class:`~repro.stream.source.ShardedSource` supervises shards.

    ``stall_timeout_s`` is measured from when the *merge* began waiting
    on a shard's next in-order unit, so a shard that is merely
    backpressured by a slow consumer is never misdiagnosed as hung.
    ``max_restarts`` bounds per-shard restarts before quarantine;
    ``unit_attempts`` bounds in-worker retries of a unit whose build
    raises before the unit is declared failed.
    """

    stall_timeout_s: float = 5.0
    poll_s: float = 0.05
    max_restarts: int = 2
    restart_backoff_s: float = 0.05
    backoff_ceiling_s: float = 2.0
    unit_attempts: int = 2

    def __post_init__(self):
        if self.stall_timeout_s <= 0:
            raise ValueError("stall_timeout_s must be > 0")
        if self.poll_s <= 0:
            raise ValueError("poll_s must be > 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff_s < 0:
            raise ValueError("restart_backoff_s must be >= 0")
        if self.backoff_ceiling_s < 0:
            raise ValueError("backoff_ceiling_s must be >= 0")
        _check_positive_int("unit_attempts", self.unit_attempts)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-campaign cycle retry budget for the service supervisor.

    ``max_attempts`` consecutive cycle failures park the campaign in a
    ``degraded`` state (crash-loop detection) instead of killing the
    whole service; any successful cycle resets the count.
    """

    max_attempts: int = 3
    backoff_s: float = 1.0
    backoff_ceiling_s: float = 30.0

    def __post_init__(self):
        _check_positive_int("max_attempts", self.max_attempts)
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_ceiling_s < 0:
            raise ValueError("backoff_ceiling_s must be >= 0")


def backoff_delay(
    base_s: float,
    ceiling_s: float,
    failures: int,
    seed: int,
    key: int,
) -> float:
    """Deterministic exponential backoff with hash-jitter.

    ``failures`` is 1-based (first retry waits ~``base_s``).  The
    jitter multiplier lives in [0.5, 1.5) and is a pure function of
    ``(seed, key, failures)``, so restart timing -- like everything
    else in this plane -- reproduces exactly.
    """
    if base_s <= 0:
        return 0.0
    exponent = max(0, failures - 1)
    # Cap the exponent so huge failure counts can't overflow floats.
    delay = base_s * (2.0 ** min(exponent, 32))
    if ceiling_s > 0:
        delay = min(delay, ceiling_s)
    word = _mix64((seed ^ (_KIND_JITTER * _MIX_A)) & _MASK)
    word = _mix64((word + key) & _MASK)
    word = _mix64((word + failures) & _MASK)
    return delay * (0.5 + _uniform01(word))


# -- strict JSON loaders --------------------------------------------
_FAULTS_FIELDS = frozenset(FaultsConfig.__dataclass_fields__)
_SUPERVISION_FIELDS = frozenset(SupervisionPolicy.__dataclass_fields__)
_RETRY_FIELDS = frozenset(RetryPolicy.__dataclass_fields__)


def _strict_kwargs(payload: dict, fields: frozenset, label: str) -> dict:
    if not isinstance(payload, dict):
        raise ValueError(f"{label} must be an object, got {payload!r}")
    unknown = sorted(set(payload) - fields)
    if unknown:
        raise ValueError(f"unknown {label} keys: {', '.join(unknown)}")
    return dict(payload)


def faults_config_from_dict(payload: dict) -> FaultsConfig:
    """Build a :class:`FaultsConfig` from parsed JSON, rejecting typos."""
    return FaultsConfig(
        **_strict_kwargs(payload, _FAULTS_FIELDS, "faults config")
    )


def supervision_policy_from_dict(payload: dict) -> SupervisionPolicy:
    """Build a :class:`SupervisionPolicy` from parsed JSON."""
    return SupervisionPolicy(
        **_strict_kwargs(payload, _SUPERVISION_FIELDS, "supervision policy")
    )


def retry_policy_from_dict(payload: dict) -> RetryPolicy:
    """Build a :class:`RetryPolicy` from parsed JSON."""
    return RetryPolicy(
        **_strict_kwargs(payload, _RETRY_FIELDS, "retry policy")
    )


def load_faults_config(path, seed: Optional[int] = None) -> FaultsConfig:
    """Load a faults config JSON file, optionally overriding its seed."""
    with open(path) as handle:
        payload = json.load(handle)
    config = faults_config_from_dict(payload)
    if seed is not None:
        config = dataclasses.replace(config, seed=seed)
    return config
