"""Data-completeness accounting for degraded runs.

When a shard is quarantined or a unit exhausts its retry budget, the
merge keeps going -- but downstream figures must be able to report
*coverage* instead of silently shifting.  :class:`DataCompleteness` is
the accountant: it counts delivered units and records exactly which
``(unit index, shard)`` slots went missing and why, yielding a
machine-readable deficit report that is byte-stable under JSON
canonicalization (sorted keys, missing rows ordered by unit index).

The expected-unit total is derived (``delivered + missing``) rather
than pre-registered, which makes the accountant resume-safe: a
checkpointed run restores its state and keeps counting without
re-declaring units it already processed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["CompletenessView", "DataCompleteness", "MissingUnit"]


@dataclass(frozen=True)
class MissingUnit:
    """A unit the supervised merge could not deliver.

    Yielded by the supervised :class:`~repro.stream.source.ShardedSource`
    in place of the real :class:`~repro.stream.source.StreamUnit` so the
    consumer's unit counter (and therefore checkpoint/resume offsets)
    stays aligned with unit indices.  ``key`` is the unit's logical
    identity -- for platform sources the ``(src, dst, version)`` task,
    for the mesh the ``(cycle, block, rounds)`` tuple -- when the source
    can name it without building the unit.
    """

    index: int
    shard: int
    reason: str
    key: Optional[tuple] = None


class DataCompleteness:
    """Thread-safe delivered/missing accountant for one run or campaign."""

    def __init__(self):
        self._lock = threading.Lock()
        self._delivered = 0
        self._missing: Dict[int, dict] = {}

    # -- recording ---------------------------------------------------
    def deliver(self, index: int) -> None:
        """Count one delivered unit (healing a prior missing record)."""
        with self._lock:
            self._delivered += 1
            self._missing.pop(index, None)

    def record_missing(self, missing: MissingUnit) -> None:
        """Record one undeliverable unit (idempotent per index)."""
        row = {
            "index": missing.index,
            "shard": missing.shard,
            "reason": missing.reason,
            "key": list(missing.key) if missing.key is not None else None,
        }
        with self._lock:
            self._missing[missing.index] = row

    # -- queries -----------------------------------------------------
    @property
    def delivered(self) -> int:
        with self._lock:
            return self._delivered

    @property
    def missing_count(self) -> int:
        with self._lock:
            return len(self._missing)

    @property
    def complete(self) -> bool:
        """True when every expected unit was delivered."""
        with self._lock:
            return not self._missing

    def coverage(self) -> float:
        """Delivered fraction of expected units (1.0 when nothing ran)."""
        with self._lock:
            expected = self._delivered + len(self._missing)
            if expected == 0:
                return 1.0
            return self._delivered / expected

    def missing_indices(self) -> List[int]:
        with self._lock:
            return sorted(self._missing)

    def report(self) -> dict:
        """The machine-readable deficit: expected/delivered/missing rows."""
        with self._lock:
            missing = [self._missing[index] for index in sorted(self._missing)]
            expected = self._delivered + len(missing)
            coverage = 1.0 if expected == 0 else self._delivered / expected
            return {
                "expected": expected,
                "delivered": self._delivered,
                "missing": missing,
                "coverage": coverage,
            }

    # -- checkpoint round-trip ---------------------------------------
    def state(self) -> dict:
        """Picklable snapshot for checkpoint payloads."""
        with self._lock:
            return {
                "delivered": self._delivered,
                "missing": [
                    self._missing[index] for index in sorted(self._missing)
                ],
            }

    @classmethod
    def from_state(cls, state: Optional[dict]) -> "DataCompleteness":
        """Rebuild an accountant from :meth:`state` (None = fresh)."""
        accountant = cls()
        if not state:
            return accountant
        accountant._delivered = int(state.get("delivered", 0))
        for row in state.get("missing", ()):
            accountant._missing[int(row["index"])] = {
                "index": int(row["index"]),
                "shard": int(row["shard"]),
                "reason": str(row["reason"]),
                "key": list(row["key"]) if row.get("key") is not None else None,
            }
        return accountant

    def adopt(self, state: Optional[dict]) -> None:
        """Replace this accountant's contents with a checkpoint snapshot."""
        fresh = DataCompleteness.from_state(state)
        with self._lock:
            self._delivered = fresh._delivered
            self._missing = fresh._missing

    def offset_view(self, offset: int) -> "CompletenessView":
        """A recording view that shifts unit indices by ``offset``.

        Multi-cycle campaigns (and multi-phase streams) reuse per-source
        unit indices starting at 0, so the accountant that spans them
        needs each cycle's indices mapped into a disjoint global range --
        otherwise cycle 1's ``deliver(3)`` would heal cycle 0's genuine
        miss of unit 3.
        """
        return CompletenessView(self, offset)

    def shard_missing(self, shard: int) -> List[int]:
        """Unit indices recorded missing against one shard (for tests)."""
        with self._lock:
            return sorted(
                index for index, row in self._missing.items()
                if row["shard"] == shard
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"DataCompleteness(delivered={self._delivered}, "
                f"missing={len(self._missing)})"
            )


class CompletenessView:
    """Index-shifted recording facade over a :class:`DataCompleteness`.

    Exposes only the recording half of the accountant's interface
    (what a :class:`~repro.stream.source.ShardedSource` and its consumer
    call); queries and checkpointing go through the parent.  The
    ``key``/``shard``/``reason`` of a missing row pass through
    unchanged -- only the global index moves.
    """

    def __init__(self, parent: DataCompleteness, offset: int) -> None:
        self.parent = parent
        self.offset = int(offset)

    def deliver(self, index: int) -> None:
        self.parent.deliver(index + self.offset)

    def record_missing(self, missing: MissingUnit) -> None:
        self.parent.record_missing(
            MissingUnit(
                index=missing.index + self.offset,
                shard=missing.shard,
                reason=missing.reason,
                key=missing.key,
            )
        )
