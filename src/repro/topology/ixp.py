"""IXP helpers: queries over the public-peering side of the topology.

The IXP descriptors themselves are produced by
:func:`repro.topology.generator.generate_topology` and their peering-LAN
prefixes by :func:`repro.topology.addressing.allocate_addresses`; this module
adds the convenience queries the benchmarks and reports use when breaking
congested links down by medium (Section 5.3: "around 60 links ... established
over the public switching fabric of IXPs experienced congestion").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.asn import ASN
from repro.topology.generator import ASGraph, IXPDescriptor, LinkMedium

__all__ = ["IXPDescriptor", "public_peering_edges", "ixp_membership_counts"]


def public_peering_edges(graph: ASGraph) -> List[Tuple[ASN, ASN, int]]:
    """All public peering edges as ``(asn_a, asn_b, ixp_id)`` triples."""
    result = []
    for edge, medium in graph.edge_media.items():
        if medium is LinkMedium.IXP:
            a, b = edge
            result.append((a, b, graph.edge_ixp[edge]))
    return sorted(result)


def ixp_membership_counts(graph: ASGraph) -> Dict[int, int]:
    """Member count per IXP id."""
    return {ixp_id: len(descriptor.members) for ixp_id, descriptor in graph.ixps.items()}
