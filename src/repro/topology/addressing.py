"""Address allocation: per-AS prefixes, infrastructure space, and the BGP RIB.

Three properties of real addressing matter to the paper's pipeline, and all
three are reproduced here:

1. *IP-to-ASN mapping via BGP.*  Each AS announces address blocks; the
   traceroute analysis maps hop IPs to the origin AS of the longest matching
   announced prefix (:meth:`AddressPlan.origin`).
2. *Unannounced infrastructure space.*  Every AS's infrastructure block has
   an announced half and an unannounced half; a small fraction of link
   subnets (and a fraction of IXP peering LANs) come from unannounced
   space, which yields the paper's "missing AS-level data" rows in Table 1.
3. *Link-address allocation conventions.*  On a customer-provider link the
   subnet is carved from the provider's space, so the customer-side
   interface maps (via BGP) to the provider while the router belongs to the
   customer -- the ambiguity the Section 5.3 ownership heuristics resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.net.asn import ASN
from repro.net.ip import IPAddress, IPVersion
from repro.net.prefix import Prefix, PrefixTrie
from repro.seeds import ADDRESSING_SEED
from repro.topology.generator import ASGraph

__all__ = ["AddressingConfig", "ASAddressing", "AddressPlan", "allocate_addresses"]

# Pool layout (arbitrary but stable): announced unicast blocks, infrastructure
# blocks and IXP LANs come from disjoint super-blocks so tests can assert
# which pool an address belongs to.
_POOL_ANNOUNCED_V4 = Prefix.parse("16.0.0.0/4")      # /16 per AS
_POOL_INFRA_V4 = Prefix.parse("100.0.0.0/8")         # /22 per AS
_POOL_IXP_V4 = Prefix.parse("193.0.0.0/12")          # /22 per IXP
_POOL_ANNOUNCED_V6 = Prefix.parse("2600::/12")       # /32 per AS
_POOL_INFRA_V6 = Prefix.parse("2a00::/12")           # /48 per AS
_POOL_IXP_V6 = Prefix.parse("2001:7f0::/28")         # /64 per IXP

_AS_BLOCK_V4_LEN = 16
_INFRA_BLOCK_V4_LEN = 22
_IXP_LAN_V4_LEN = 22
_AS_BLOCK_V6_LEN = 32
_INFRA_BLOCK_V6_LEN = 48
_IXP_LAN_V6_LEN = 64

_LINK_SUBNET_V4_LEN = 30
_LINK_SUBNET_V6_LEN = 126

# Host addresses (servers, internal router interfaces) are carved from the
# announced block starting at this offset, leaving room for network gear.
_HOST_OFFSET = 256

LinkSpaceOwner = Union[ASN, Tuple[str, int]]
"""Either an ASN, or ``("ixp", ixp_id)`` for IXP peering-LAN space."""


@dataclass
class AddressingConfig:
    """Knobs of the address allocator."""

    link_unannounced_probability_v4: float = 0.012
    """Chance a v4 link subnet comes from the owner's unannounced space."""

    link_unannounced_probability_v6: float = 0.02
    """Chance for v6; higher to reproduce Table 1's larger missing-AS-level
    share on IPv6 (3.32% vs 1.58%)."""

    ixp_lan_announced_probability: float = 0.9
    """Probability that an IXP announces its peering LAN in BGP."""

    def validate(self) -> None:
        """Raise :class:`ValueError` on out-of-range probabilities."""
        for name in (
            "link_unannounced_probability_v4",
            "link_unannounced_probability_v6",
            "ixp_lan_announced_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


@dataclass(frozen=True)
class ASAddressing:
    """Address blocks assigned to one AS.

    The infrastructure block is split in half: the low half is announced in
    BGP alongside the main block, the high half is kept private (the pool
    unannounced link subnets are drawn from).
    """

    asn: ASN
    announced_v4: Prefix
    infra_v4: Prefix
    announced_v6: Optional[Prefix]
    infra_v6: Optional[Prefix]

    def infra_half(self, version: IPVersion, announced: bool) -> Prefix:
        """The announced (low) or unannounced (high) infrastructure half."""
        if version is IPVersion.V4:
            block = self.infra_v4
        else:
            if self.infra_v6 is None:
                raise KeyError(f"AS{self.asn} has no IPv6 infrastructure block")
            block = self.infra_v6
        return block.subprefix(block.length + 1, 0 if announced else 1)


@dataclass
class AddressPlan:
    """The complete allocation, plus the BGP RIB built from it.

    The RIB (:attr:`bgp_v4` / :attr:`bgp_v6`) contains only *announced*
    prefixes; :meth:`origin` is the IP-to-ASN primitive the analysis
    pipeline uses, and it returns ``None`` for unannounced space.
    """

    config: AddressingConfig = field(default_factory=AddressingConfig)
    per_as: Dict[ASN, ASAddressing] = field(default_factory=dict)
    bgp_v4: PrefixTrie = field(default_factory=lambda: PrefixTrie(IPVersion.V4))
    bgp_v6: PrefixTrie = field(default_factory=lambda: PrefixTrie(IPVersion.V6))
    ixp_lan_v4: Dict[int, Prefix] = field(default_factory=dict)
    ixp_lan_v6: Dict[int, Prefix] = field(default_factory=dict)
    ixp_lan_announced: Dict[int, bool] = field(default_factory=dict)
    _link_counters: Dict[Tuple[object, IPVersion, bool], int] = field(default_factory=dict)
    _host_counters: Dict[Tuple[ASN, IPVersion], int] = field(default_factory=dict)
    _origin_cache: Dict[IPAddress, Optional[ASN]] = field(default_factory=dict)

    def origin(self, address: IPAddress) -> Optional[ASN]:
        """Origin ASN of the longest announced prefix covering ``address``.

        This is the IP-to-ASN mapping of Section 2.1; ``None`` models "no
        known IP-to-ASN mapping".  Lookups are memoized: the RIB is frozen
        once the plan is built, and path realization hits the same server
        and router addresses for every pair that crosses them.
        """
        if address in self._origin_cache:
            return self._origin_cache[address]
        table = self.bgp_v4 if address.version is IPVersion.V4 else self.bgp_v6
        result = table.lookup(address)
        self._origin_cache[address] = result
        return result

    def _link_pool(
        self, owner: LinkSpaceOwner, version: IPVersion, unannounced: bool
    ) -> Tuple[Prefix, int]:
        """The block link subnets for ``owner`` are carved from."""
        subnet_len = _LINK_SUBNET_V4_LEN if version is IPVersion.V4 else _LINK_SUBNET_V6_LEN
        if isinstance(owner, tuple):
            _, ixp_id = owner
            lans = self.ixp_lan_v4 if version is IPVersion.V4 else self.ixp_lan_v6
            if ixp_id not in lans:
                raise KeyError(f"IXP {ixp_id} has no IPv{int(version)} peering LAN")
            return lans[ixp_id], subnet_len
        addressing = self.per_as.get(owner)
        if addressing is None:
            raise KeyError(f"unknown AS{owner}")
        return addressing.infra_half(version, announced=not unannounced), subnet_len

    def allocate_link_subnet(
        self, owner: LinkSpaceOwner, version: IPVersion, unannounced: bool = False
    ) -> Prefix:
        """Carve the next point-to-point subnet from ``owner``'s space.

        Args:
            owner: The AS (or IXP) whose space the subnet comes from.
            unannounced: Draw from the owner's unannounced infrastructure
                half (ignored for IXP space, whose announcement status is a
                property of the whole LAN).

        Raises:
            KeyError: Unknown owner, or owner lacks space for the version.
            ValueError: Owner's block is exhausted.
        """
        pool, subnet_len = self._link_pool(owner, version, unannounced)
        key = (owner, version, unannounced)
        index = self._link_counters.get(key, 0)
        capacity = 1 << (subnet_len - pool.length)
        if index >= capacity:
            raise ValueError(f"link-subnet pool exhausted for {owner} IPv{int(version)}")
        self._link_counters[key] = index + 1
        return pool.subprefix(subnet_len, index)

    def allocate_host(self, asn: ASN, version: IPVersion) -> IPAddress:
        """Allocate the next host address from the AS's announced block."""
        addressing = self.per_as[asn]
        if version is IPVersion.V4:
            block = addressing.announced_v4
        else:
            if addressing.announced_v6 is None:
                raise KeyError(f"AS{asn} has no announced IPv6 block")
            block = addressing.announced_v6
        key = (asn, version)
        index = self._host_counters.get(key, 0)
        # IPv6 announced blocks are huge; the v4 bound is the real constraint.
        if _HOST_OFFSET + index >= block.num_addresses:
            raise ValueError(f"host pool exhausted for AS{asn} IPv{int(version)}")
        self._host_counters[key] = index + 1
        return block.address(_HOST_OFFSET + index)

    def announced_by(self, asn: ASN) -> Tuple[Prefix, ...]:
        """All prefixes announced by ``asn`` (for reporting/tests)."""
        result = []
        for table in (self.bgp_v4, self.bgp_v6):
            for prefix, origin in table.items():
                if origin == asn:
                    result.append(prefix)
        return tuple(result)


def allocate_addresses(
    graph: ASGraph,
    config: Optional[AddressingConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> AddressPlan:
    """Allocate address blocks to every AS and IXP in ``graph``.

    Allocation order is the sorted ASN order, so the plan is a pure function
    of the graph and the RNG state.
    """
    config = config or AddressingConfig()
    config.validate()
    rng = rng if rng is not None else np.random.default_rng(ADDRESSING_SEED)
    plan = AddressPlan(config=config)

    for index, asn in enumerate(graph.asns()):
        system = graph.ases[asn]
        announced_v4 = _POOL_ANNOUNCED_V4.subprefix(_AS_BLOCK_V4_LEN, index)
        infra_v4 = _POOL_INFRA_V4.subprefix(_INFRA_BLOCK_V4_LEN, index)
        announced_v6: Optional[Prefix] = None
        infra_v6: Optional[Prefix] = None
        if system.ipv6_capable:
            announced_v6 = _POOL_ANNOUNCED_V6.subprefix(_AS_BLOCK_V6_LEN, index)
            infra_v6 = _POOL_INFRA_V6.subprefix(_INFRA_BLOCK_V6_LEN, index)
        addressing = ASAddressing(
            asn=asn,
            announced_v4=announced_v4,
            infra_v4=infra_v4,
            announced_v6=announced_v6,
            infra_v6=infra_v6,
        )
        plan.per_as[asn] = addressing
        plan.bgp_v4.insert(announced_v4, asn)
        plan.bgp_v4.insert(addressing.infra_half(IPVersion.V4, announced=True), asn)
        if announced_v6 is not None:
            plan.bgp_v6.insert(announced_v6, asn)
            plan.bgp_v6.insert(addressing.infra_half(IPVersion.V6, announced=True), asn)

    # IXP peering LANs.  An "IXP ASN" well above the AS range originates the
    # LAN when it is announced at all; unannounced LANs produce unmappable
    # hops at public peering points.
    ixp_asn_base = max(graph.asns(), default=0) + 10_000
    for ixp_id, _descriptor in sorted(graph.ixps.items()):
        lan_v4 = _POOL_IXP_V4.subprefix(_IXP_LAN_V4_LEN, ixp_id)
        lan_v6 = _POOL_IXP_V6.subprefix(_IXP_LAN_V6_LEN, ixp_id)
        announced = bool(rng.random() < config.ixp_lan_announced_probability)
        plan.ixp_lan_v4[ixp_id] = lan_v4
        plan.ixp_lan_v6[ixp_id] = lan_v6
        plan.ixp_lan_announced[ixp_id] = announced
        if announced:
            plan.bgp_v4.insert(lan_v4, ixp_asn_base + ixp_id)
            plan.bgp_v6.insert(lan_v6, ixp_asn_base + ixp_id)

    return plan
