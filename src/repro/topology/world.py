"""World model: cities, regions, and CDN placement weights.

The long-term study (Section 2.1) selected ~600 dual-stack servers from 70+
countries with ~39% in the USA; Australia, Germany, India, Japan and Canada
together contribute another ~19%.  The :data:`WORLD_CITIES` table and the
per-country placement weights below reproduce that mix when the CDN
deployment samples cluster locations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.net.geo import GeoLocation

__all__ = [
    "WORLD_CITIES",
    "COUNTRY_WEIGHTS",
    "cities_by_country",
    "cities_by_continent",
    "sample_city",
    "sample_cities",
]

# City, country, continent, latitude, longitude.  Coordinates are approximate
# city centers; they only need to be accurate enough for realistic
# great-circle distances.
_CITY_ROWS: Sequence[Tuple[str, str, str, float, float]] = (
    # --- North America ---
    ("New York", "US", "NA", 40.71, -74.01),
    ("Ashburn", "US", "NA", 39.04, -77.49),
    ("Chicago", "US", "NA", 41.88, -87.63),
    ("Dallas", "US", "NA", 32.78, -96.80),
    ("Los Angeles", "US", "NA", 34.05, -118.24),
    ("San Jose", "US", "NA", 37.34, -121.89),
    ("Seattle", "US", "NA", 47.61, -122.33),
    ("Miami", "US", "NA", 25.76, -80.19),
    ("Atlanta", "US", "NA", 33.75, -84.39),
    ("Denver", "US", "NA", 39.74, -104.99),
    ("Boston", "US", "NA", 42.36, -71.06),
    ("Phoenix", "US", "NA", 33.45, -112.07),
    ("Houston", "US", "NA", 29.76, -95.37),
    ("Minneapolis", "US", "NA", 44.98, -93.27),
    ("Kansas City", "US", "NA", 39.10, -94.58),
    ("Toronto", "CA", "NA", 43.65, -79.38),
    ("Montreal", "CA", "NA", 45.50, -73.57),
    ("Vancouver", "CA", "NA", 49.28, -123.12),
    ("Mexico City", "MX", "NA", 19.43, -99.13),
    # --- South America ---
    ("Sao Paulo", "BR", "SA", -23.55, -46.63),
    ("Rio de Janeiro", "BR", "SA", -22.91, -43.17),
    ("Buenos Aires", "AR", "SA", -34.60, -58.38),
    ("Santiago", "CL", "SA", -33.45, -70.67),
    ("Bogota", "CO", "SA", 4.71, -74.07),
    # --- Europe ---
    ("London", "GB", "EU", 51.51, -0.13),
    ("Frankfurt", "DE", "EU", 50.11, 8.68),
    ("Berlin", "DE", "EU", 52.52, 13.41),
    ("Munich", "DE", "EU", 48.14, 11.58),
    ("Amsterdam", "NL", "EU", 52.37, 4.90),
    ("Paris", "FR", "EU", 48.86, 2.35),
    ("Madrid", "ES", "EU", 40.42, -3.70),
    ("Milan", "IT", "EU", 45.46, 9.19),
    ("Stockholm", "SE", "EU", 59.33, 18.07),
    ("Warsaw", "PL", "EU", 52.23, 21.01),
    ("Vienna", "AT", "EU", 48.21, 16.37),
    ("Zurich", "CH", "EU", 47.38, 8.54),
    ("Dublin", "IE", "EU", 53.35, -6.26),
    ("Prague", "CZ", "EU", 50.08, 14.44),
    ("Moscow", "RU", "EU", 55.76, 37.62),
    ("Istanbul", "TR", "EU", 41.01, 28.98),
    # --- Asia ---
    ("Tokyo", "JP", "AS", 35.68, 139.69),
    ("Osaka", "JP", "AS", 34.69, 135.50),
    ("Seoul", "KR", "AS", 37.57, 126.98),
    ("Hong Kong", "HK", "AS", 22.32, 114.17),
    ("Singapore", "SG", "AS", 1.35, 103.82),
    ("Taipei", "TW", "AS", 25.03, 121.57),
    ("Mumbai", "IN", "AS", 19.08, 72.88),
    ("Chennai", "IN", "AS", 13.08, 80.27),
    ("New Delhi", "IN", "AS", 28.61, 77.21),
    ("Bangalore", "IN", "AS", 12.97, 77.59),
    ("Shanghai", "CN", "AS", 31.23, 121.47),
    ("Beijing", "CN", "AS", 39.90, 116.41),
    ("Jakarta", "ID", "AS", -6.21, 106.85),
    ("Bangkok", "TH", "AS", 13.76, 100.50),
    ("Kuala Lumpur", "MY", "AS", 3.14, 101.69),
    ("Manila", "PH", "AS", 14.60, 120.98),
    ("Tel Aviv", "IL", "AS", 32.09, 34.78),
    ("Dubai", "AE", "AS", 25.20, 55.27),
    # --- Oceania ---
    ("Sydney", "AU", "OC", -33.87, 151.21),
    ("Melbourne", "AU", "OC", -37.81, 144.96),
    ("Brisbane", "AU", "OC", -27.47, 153.03),
    ("Perth", "AU", "OC", -31.95, 115.86),
    ("Auckland", "NZ", "OC", -36.85, 174.76),
    # --- Africa ---
    ("Johannesburg", "ZA", "AF", -26.20, 28.05),
    ("Cape Town", "ZA", "AF", -33.92, 18.42),
    ("Nairobi", "KE", "AF", -1.29, 36.82),
    ("Lagos", "NG", "AF", 6.52, 3.38),
    ("Cairo", "EG", "AF", 30.04, 31.24),
)

WORLD_CITIES: Tuple[GeoLocation, ...] = tuple(
    GeoLocation(city=c, country=cc, continent=cont, latitude=lat, longitude=lon)
    for c, cc, cont, lat, lon in _CITY_ROWS
)
"""All cities in the world model, as immutable :class:`GeoLocation` values."""

# Per-country CDN placement weights, calibrated to Section 2.1: ~39% of
# servers in the US; AU, DE, IN, JP and CA together ~19%; the long tail
# spread over the remaining countries.
COUNTRY_WEIGHTS: Dict[str, float] = {
    "US": 39.0,
    "AU": 4.5,
    "DE": 4.2,
    "IN": 3.8,
    "JP": 3.5,
    "CA": 3.0,
    "GB": 2.8,
    "FR": 2.2,
    "NL": 2.2,
    "BR": 2.2,
    "SG": 2.0,
    "HK": 2.0,
    "KR": 1.8,
    "IT": 1.6,
    "ES": 1.5,
    "SE": 1.4,
    "PL": 1.3,
    "RU": 1.4,
    "CN": 1.6,
    "TW": 1.3,
    "MX": 1.2,
    "AR": 1.1,
    "CL": 1.0,
    "CO": 0.9,
    "AT": 1.0,
    "CH": 1.0,
    "IE": 1.0,
    "CZ": 0.9,
    "TR": 1.0,
    "ID": 1.0,
    "TH": 0.9,
    "MY": 0.9,
    "PH": 0.8,
    "IL": 0.8,
    "AE": 0.8,
    "NZ": 0.8,
    "ZA": 1.0,
    "KE": 0.6,
    "NG": 0.6,
    "EG": 0.6,
}


def cities_by_country(country: str) -> List[GeoLocation]:
    """All world-model cities in the given country code."""
    return [city for city in WORLD_CITIES if city.country == country]


def cities_by_continent(continent: str) -> List[GeoLocation]:
    """All world-model cities on the given continent code."""
    return [city for city in WORLD_CITIES if city.continent == continent]


def _city_weights() -> np.ndarray:
    """Per-city sampling weights: country weight split evenly across its cities."""
    counts: Dict[str, int] = {}
    for city in WORLD_CITIES:
        counts[city.country] = counts.get(city.country, 0) + 1
    weights = np.array(
        [COUNTRY_WEIGHTS.get(city.country, 0.5) / counts[city.country] for city in WORLD_CITIES],
        dtype=float,
    )
    return weights / weights.sum()


_CITY_WEIGHTS = _city_weights()


def sample_city(rng: np.random.Generator) -> GeoLocation:
    """Draw one city according to the CDN placement weights."""
    index = int(rng.choice(len(WORLD_CITIES), p=_CITY_WEIGHTS))
    return WORLD_CITIES[index]


def sample_cities(rng: np.random.Generator, count: int, unique: bool = False) -> List[GeoLocation]:
    """Draw ``count`` cities according to the placement weights.

    Args:
        rng: Source of randomness.
        count: Number of cities to draw.
        unique: When true, draw without replacement (``count`` must not
            exceed the number of world cities).
    """
    if unique and count > len(WORLD_CITIES):
        raise ValueError(
            f"cannot draw {count} unique cities from a world of {len(WORLD_CITIES)}"
        )
    indexes = rng.choice(len(WORLD_CITIES), size=count, replace=not unique, p=_CITY_WEIGHTS)
    return [WORLD_CITIES[int(index)] for index in indexes]
