"""Synthetic Internet + CDN topology substrate.

The paper's measurement platform is a proprietary CDN embedded in the real
Internet.  This subpackage builds the closest laptop-scale equivalent:

- :mod:`repro.topology.world` -- a world model of cities with coordinates,
  weighted so CDN server placement matches the paper's country mix.
- :mod:`repro.topology.generator` -- an AS-level graph with tiers (tier-1
  clique, transit, stub), customer-provider and peering edges, and per-AS
  geographic footprints.
- :mod:`repro.topology.addressing` -- IPv4/IPv6 prefix allocation per AS,
  including deliberately unannounced infrastructure space.
- :mod:`repro.topology.ixp` -- Internet exchange points with shared peering
  fabrics and (often unannounced) peering-LAN prefixes.
- :mod:`repro.topology.routers` -- the router-level topology: border/core
  routers per (AS, city), interdomain link instances with concrete interface
  addresses, and the ground-truth owner of every interface.
- :mod:`repro.topology.cdn` -- the CDN deployment: server clusters placed in
  cities, dual-stack servers, and the designated measurement server per
  cluster.
"""

from repro.topology.cdn import CDNDeployment, Cluster, Server, deploy_cdn
from repro.topology.generator import (
    ASGraph,
    ASTier,
    AutonomousSystem,
    TopologyConfig,
    generate_topology,
)
from repro.topology.routers import Interface, InterdomainLink, Router, RouterTopology

__all__ = [
    "ASGraph",
    "ASTier",
    "AutonomousSystem",
    "TopologyConfig",
    "generate_topology",
    "CDNDeployment",
    "Cluster",
    "Server",
    "deploy_cdn",
    "Interface",
    "InterdomainLink",
    "Router",
    "RouterTopology",
]
