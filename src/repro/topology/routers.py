"""Router-level topology: routers, interfaces, and interdomain link instances.

The AS graph says *who connects to whom*; this module decides *where* (which
cities) and *with which addresses*.  Every AS gets one border router per
footprint city; every AS-level edge is realized by one or more concrete link
instances between border routers, each with a point-to-point subnet whose
allocation follows real-world conventions:

- customer-provider link: subnet carved from the **provider's** space,
- private peering: subnet from either peer (coin flip),
- public peering: subnet from the IXP peering LAN.

The ground-truth owner of every interface is recorded, which is what lets
the test suite score the paper's Section 5.3 ownership heuristics, and lets
the congestion benchmarks compare inferred congested-link classes against
the links that were actually congested in the simulation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.asn import ASN, ASRelationship
from repro.net.geo import GeoLocation
from repro.net.ip import IPAddress, IPVersion
from repro.net.prefix import Prefix
from repro.seeds import ROUTERS_SEED
from repro.topology.addressing import AddressPlan, LinkSpaceOwner
from repro.topology.generator import ASGraph, LinkMedium

__all__ = [
    "Router",
    "Interface",
    "InterdomainLink",
    "RouterTopology",
    "build_router_topology",
]


@dataclass(frozen=True)
class Router:
    """A router: ground-truth owner AS, location, and probing behaviour.

    Attributes:
        router_id: Unique id within the topology.
        owner: The AS that operates the router (ground truth).
        city: Where the router sits; drives propagation delay.
        respond_probability: Chance the router answers a traceroute probe;
            heterogeneous across routers to model ICMP rate limiting, the
            source of Table 1's "missing IP-level data" rows.
    """

    router_id: int
    owner: ASN
    city: GeoLocation
    respond_probability: float


@dataclass(frozen=True)
class Interface:
    """One addressed interface on a router."""

    address: IPAddress
    router_id: int
    owner: ASN
    """Ground-truth owner (the router's operator, not the address allocator)."""


@dataclass(frozen=True)
class InterdomainLink:
    """A concrete instance of an AS-level edge between two border routers.

    ``a``/``b`` ordering is by ASN.  ``subnet_owner`` records whose space the
    point-to-point subnet came from (an ASN, or ``("ixp", id)``).
    """

    link_id: int
    asn_a: ASN
    asn_b: ASN
    router_a: int
    router_b: int
    medium: LinkMedium
    subnet_owner: LinkSpaceOwner
    subnet_v4: Prefix
    interface_a_v4: IPAddress
    interface_b_v4: IPAddress
    subnet_v6: Optional[Prefix]
    interface_a_v6: Optional[IPAddress]
    interface_b_v6: Optional[IPAddress]

    def far_interface(self, from_asn: ASN, version: IPVersion) -> Optional[IPAddress]:
        """Ingress interface seen when crossing the link *out of* ``from_asn``."""
        if from_asn == self.asn_a:
            return self.interface_b_v4 if version is IPVersion.V4 else self.interface_b_v6
        if from_asn == self.asn_b:
            return self.interface_a_v4 if version is IPVersion.V4 else self.interface_a_v6
        raise ValueError(f"AS{from_asn} is not an endpoint of link {self.link_id}")

    def router_in(self, asn: ASN) -> int:
        """The endpoint router belonging to ``asn``."""
        if asn == self.asn_a:
            return self.router_a
        if asn == self.asn_b:
            return self.router_b
        raise ValueError(f"AS{asn} is not an endpoint of link {self.link_id}")

    def supports_ipv6(self) -> bool:
        """Whether the link instance carries IPv6."""
        return self.subnet_v6 is not None


_CityKey = Tuple[str, str]


def _city_key(city: GeoLocation) -> _CityKey:
    return (city.city, city.country)


@dataclass
class RouterTopology:
    """The complete router-level topology.

    Attributes:
        routers: All routers by id.
        border: Border router id per (ASN, city key).
        links: Link instances per sorted AS pair.
        interfaces: Every addressed interface, keyed by address.
        internal_v4 / internal_v6: Internal (intra-AS) interface of each
            router, used as the hop address for intra-AS traceroute hops.
    """

    routers: Dict[int, Router] = field(default_factory=dict)
    border: Dict[Tuple[ASN, _CityKey], int] = field(default_factory=dict)
    core: Dict[Tuple[ASN, _CityKey], int] = field(default_factory=dict)
    links: Dict[Tuple[ASN, ASN], List[InterdomainLink]] = field(default_factory=dict)
    interfaces: Dict[IPAddress, Interface] = field(default_factory=dict)
    internal_v4: Dict[int, IPAddress] = field(default_factory=dict)
    internal_v6: Dict[int, Optional[IPAddress]] = field(default_factory=dict)

    def border_router(self, asn: ASN, city: GeoLocation) -> Router:
        """The border router of ``asn`` in ``city``."""
        router_id = self.border[(asn, _city_key(city))]
        return self.routers[router_id]

    def core_router(self, asn: ASN, city: GeoLocation) -> Router:
        """The core (aggregation) router of ``asn`` in ``city``."""
        router_id = self.core[(asn, _city_key(city))]
        return self.routers[router_id]

    def border_cities(self, asn: ASN) -> List[GeoLocation]:
        """Cities where ``asn`` has a border router."""
        return [
            self.routers[router_id].city
            for (owner, _), router_id in self.border.items()
            if owner == asn
        ]

    def link_instances(self, a: ASN, b: ASN) -> List[InterdomainLink]:
        """All link instances realizing the AS edge ``a``-``b``."""
        key = (a, b) if a < b else (b, a)
        return self.links.get(key, [])

    def interface_owner(self, address: IPAddress) -> Optional[ASN]:
        """Ground-truth owner of the router holding ``address``."""
        interface = self.interfaces.get(address)
        return interface.owner if interface else None

    def all_links(self) -> List[InterdomainLink]:
        """Every interdomain link instance, ordered by link id."""
        return sorted(
            (link for instances in self.links.values() for link in instances),
            key=lambda link: link.link_id,
        )


def _nearest_city_pair(
    cities_a: Tuple[GeoLocation, ...], cities_b: Tuple[GeoLocation, ...]
) -> Tuple[GeoLocation, GeoLocation]:
    """The geographically closest (city_a, city_b) pair across two footprints."""
    best: Optional[Tuple[float, GeoLocation, GeoLocation]] = None
    for city_a, city_b in itertools.product(cities_a, cities_b):
        distance = city_a.distance_km(city_b)
        if best is None or distance < best[0]:
            best = (distance, city_a, city_b)
    assert best is not None
    return best[1], best[2]


def _shared_cities(
    cities_a: Tuple[GeoLocation, ...], cities_b: Tuple[GeoLocation, ...]
) -> List[GeoLocation]:
    shared = set(cities_a) & set(cities_b)
    return sorted(shared, key=lambda city: (city.city, city.country))


def _draw_respond_probability(rng: np.random.Generator) -> float:
    """Heterogeneous per-router probe responsiveness.

    Unresponsiveness in the wild is mostly a *persistent* router property
    (filtering, aggressive ICMP rate limits), not per-probe chance -- which
    matters because a path through a never-answering router has a stable
    observed AS path instead of flapping between variants.  The mixture
    below (3.2% never answer, 0.4% flaky, the rest always answer) gives a
    ~13-hop path a ~25-30% chance of at least one unresponsive hop,
    matching Table 1's missing-IP-level shares.
    """
    draw = rng.random()
    if draw < 0.028:
        return float(rng.uniform(0.0, 0.01))
    if draw < 0.032:
        return float(rng.uniform(0.90, 0.98))
    return 1.0


def build_router_topology(
    graph: ASGraph,
    plan: AddressPlan,
    rng: Optional[np.random.Generator] = None,
    max_instances_per_edge: int = 2,
) -> RouterTopology:
    """Materialize the router level of the topology.

    Args:
        graph: The AS-level topology.
        plan: The address plan (consumed for link subnets and internal
            interface addresses).
        rng: Randomness source; defaults to a fixed seed.
        max_instances_per_edge: Upper bound on parallel link instances per
            AS edge (edges between ASes sharing several cities get more).

    Returns:
        A fully addressed :class:`RouterTopology`.
    """
    rng = rng if rng is not None else np.random.default_rng(ROUTERS_SEED)
    topology = RouterTopology()
    next_router_id = itertools.count(0)
    next_link_id = itertools.count(0)

    def register_interface(address: Optional[IPAddress], router_id: int, owner: ASN) -> None:
        if address is None:
            return
        topology.interfaces[address] = Interface(
            address=address, router_id=router_id, owner=owner
        )

    # One border and one core router per (AS, footprint city), with internal
    # addresses from the AS's announced space.  Core routers are what probes
    # see between a network's ingress and egress; their presence gives the
    # ownership heuristics same-AS anchor hops, as real paths have.
    for asn in graph.asns():
        system = graph.ases[asn]
        for city in system.cities:
            for registry in (topology.border, topology.core):
                router_id = next(next_router_id)
                router = Router(
                    router_id=router_id,
                    owner=asn,
                    city=city,
                    respond_probability=_draw_respond_probability(rng),
                )
                topology.routers[router_id] = router
                registry[(asn, _city_key(city))] = router_id
                internal_v4 = plan.allocate_host(asn, IPVersion.V4)
                topology.internal_v4[router_id] = internal_v4
                register_interface(internal_v4, router_id, asn)
                internal_v6: Optional[IPAddress] = None
                if system.ipv6_capable:
                    internal_v6 = plan.allocate_host(asn, IPVersion.V6)
                    register_interface(internal_v6, router_id, asn)
                topology.internal_v6[router_id] = internal_v6

    # Link instances per AS edge.
    for a, b in graph.edges():
        system_a, system_b = graph.ases[a], graph.ases[b]
        relationship = graph.relationships.get(a, b)
        medium = graph.medium(a, b)
        edge_ipv6 = graph.edge_supports_ipv6(a, b)

        if medium is LinkMedium.IXP:
            ixp = graph.ixps[graph.edge_ixp[(a, b)]]
            sites: List[Tuple[GeoLocation, GeoLocation]] = [(ixp.city, ixp.city)]
        else:
            shared = _shared_cities(system_a.cities, system_b.cities)
            if shared:
                count = min(len(shared), max_instances_per_edge)
                sites = [(city, city) for city in shared[:count]]
            else:
                city_a, city_b = _nearest_city_pair(system_a.cities, system_b.cities)
                sites = [(city_a, city_b)]

        instances: List[InterdomainLink] = []
        for city_a, city_b in sites:
            router_a = topology.border[(a, _city_key(city_a))]
            router_b = topology.border[(b, _city_key(city_b))]

            # Whose space does the point-to-point subnet come from?
            if medium is LinkMedium.IXP:
                subnet_owner: LinkSpaceOwner = ("ixp", graph.edge_ixp[(a, b)])
            elif relationship is ASRelationship.CUSTOMER:
                subnet_owner = a  # b is a's customer: provider a allocates
            elif relationship is ASRelationship.PROVIDER:
                subnet_owner = b  # b is a's provider: provider b allocates
            else:
                subnet_owner = a if rng.random() < 0.5 else b

            from_as_space = not isinstance(subnet_owner, tuple)
            unannounced_v4 = from_as_space and bool(
                rng.random() < plan.config.link_unannounced_probability_v4
            )
            subnet_v4 = plan.allocate_link_subnet(
                subnet_owner, IPVersion.V4, unannounced=unannounced_v4
            )
            interface_a_v4 = subnet_v4.address(1)
            interface_b_v4 = subnet_v4.address(2)

            subnet_v6: Optional[Prefix] = None
            interface_a_v6: Optional[IPAddress] = None
            interface_b_v6: Optional[IPAddress] = None
            if edge_ipv6:
                unannounced_v6 = from_as_space and bool(
                    rng.random() < plan.config.link_unannounced_probability_v6
                )
                try:
                    subnet_v6 = plan.allocate_link_subnet(
                        subnet_owner, IPVersion.V6, unannounced=unannounced_v6
                    )
                except KeyError:
                    subnet_v6 = None  # allocator AS is v4-only; link stays v4
                if subnet_v6 is not None:
                    interface_a_v6 = subnet_v6.address(1)
                    interface_b_v6 = subnet_v6.address(2)

            link = InterdomainLink(
                link_id=next(next_link_id),
                asn_a=a,
                asn_b=b,
                router_a=router_a,
                router_b=router_b,
                medium=medium,
                subnet_owner=subnet_owner,
                subnet_v4=subnet_v4,
                interface_a_v4=interface_a_v4,
                interface_b_v4=interface_b_v4,
                subnet_v6=subnet_v6,
                interface_a_v6=interface_a_v6,
                interface_b_v6=interface_b_v6,
            )
            instances.append(link)
            register_interface(interface_a_v4, router_a, a)
            register_interface(interface_b_v4, router_b, b)
            register_interface(interface_a_v6, router_a, a)
            register_interface(interface_b_v6, router_b, b)

        topology.links[(a, b)] = instances

    return topology
