"""CDN deployment: clusters of servers embedded in the synthetic Internet.

Stands in for the paper's measurement platform (Section 2): a CDN operating
server clusters in thousands of locations, most servers dual-stack, with one
designated measurement server per cluster performing the traceroutes and
pings.  Cluster placement follows the world-model country weights so the
server mix matches the paper's reported distribution (~39% US, etc.).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.asn import ASN
from repro.net.geo import GeoLocation
from repro.net.ip import IPAddress, IPVersion
from repro.seeds import CDN_SEED
from repro.topology.addressing import AddressPlan
from repro.topology.generator import ASGraph, ASTier
from repro.topology.world import sample_city

__all__ = ["Server", "Cluster", "CDNDeployment", "deploy_cdn"]


@dataclass(frozen=True)
class Server:
    """One CDN server.

    Attributes:
        server_id: Unique id across the deployment.
        cluster_id: Id of the owning cluster.
        asn: Host AS of the cluster.
        city: Cluster location.
        ipv4: The server's IPv4 address.
        ipv6: The server's IPv6 address, or ``None`` for v4-only servers.
    """

    server_id: int
    cluster_id: int
    asn: ASN
    city: GeoLocation
    ipv4: IPAddress
    ipv6: Optional[IPAddress]

    @property
    def dual_stack(self) -> bool:
        """Whether the server has both address families."""
        return self.ipv6 is not None

    def address(self, version: IPVersion) -> Optional[IPAddress]:
        """The server's address for ``version`` (``None`` if unavailable)."""
        return self.ipv4 if version is IPVersion.V4 else self.ipv6


@dataclass(frozen=True)
class Cluster:
    """A server cluster at one location inside one host AS.

    The first server in :attr:`servers` is the designated measurement server
    (Section 2: "one server at each cluster is utilized to perform
    measurements").
    """

    cluster_id: int
    asn: ASN
    city: GeoLocation
    servers: Tuple[Server, ...]

    @property
    def measurement_server(self) -> Server:
        """The cluster's designated measurement server."""
        return self.servers[0]


@dataclass
class CDNDeployment:
    """The full CDN: clusters, servers, and lookup helpers."""

    clusters: Dict[int, Cluster] = field(default_factory=dict)
    servers: Dict[int, Server] = field(default_factory=dict)
    _by_address: Dict[IPAddress, int] = field(default_factory=dict)

    def add(self, cluster: Cluster) -> None:
        """Register ``cluster`` and index its servers."""
        if cluster.cluster_id in self.clusters:
            raise ValueError(f"duplicate cluster id {cluster.cluster_id}")
        self.clusters[cluster.cluster_id] = cluster
        for server in cluster.servers:
            self.servers[server.server_id] = server
            self._by_address[server.ipv4] = server.server_id
            if server.ipv6 is not None:
                self._by_address[server.ipv6] = server.server_id

    def server_by_address(self, address: IPAddress) -> Optional[Server]:
        """The server holding ``address``, if any."""
        server_id = self._by_address.get(address)
        return self.servers[server_id] if server_id is not None else None

    def measurement_servers(self, dual_stack_only: bool = False) -> List[Server]:
        """One measurement server per cluster, in cluster-id order."""
        result = []
        for cluster_id in sorted(self.clusters):
            server = self.clusters[cluster_id].measurement_server
            if dual_stack_only and not server.dual_stack:
                continue
            result.append(server)
        return result

    def country_mix(self) -> Dict[str, float]:
        """Fraction of clusters per country (for calibration checks)."""
        counts: Dict[str, int] = {}
        for cluster in self.clusters.values():
            counts[cluster.city.country] = counts.get(cluster.city.country, 0) + 1
        total = max(1, len(self.clusters))
        return {country: count / total for country, count in counts.items()}


def _candidate_hosts(
    graph: ASGraph, city: GeoLocation, dual_stack: bool
) -> List[ASN]:
    """ASes that could host a cluster in ``city`` (stubs preferred)."""
    stubs, transits = [], []
    for asn in graph.asns():
        system = graph.ases[asn]
        if dual_stack and not system.ipv6_capable:
            continue
        if city not in system.cities:
            continue
        if system.tier is ASTier.STUB:
            stubs.append(asn)
        elif system.tier is ASTier.TRANSIT:
            transits.append(asn)
    return stubs or transits


def deploy_cdn(
    graph: ASGraph,
    plan: AddressPlan,
    cluster_count: int,
    servers_per_cluster: int = 1,
    dual_stack_fraction: float = 0.9,
    rng: Optional[np.random.Generator] = None,
    max_attempts_factor: int = 200,
) -> CDNDeployment:
    """Place CDN clusters across the synthetic Internet.

    Args:
        graph: The AS topology.
        plan: Address plan used to assign server addresses from the host
            AS's announced space.
        cluster_count: Number of clusters to create.
        servers_per_cluster: Servers in each cluster (the first is the
            measurement server).
        dual_stack_fraction: Fraction of clusters that must be dual-stack
            (hosted in a v6-capable AS, servers given both families).
        rng: Randomness source; defaults to a fixed seed.
        max_attempts_factor: Abort after ``cluster_count * factor`` failed
            placement attempts (host AS not found in a sampled city).

    Raises:
        RuntimeError: If placement cannot be completed, which indicates a
            topology far too small for the requested deployment.
    """
    if cluster_count < 1 or servers_per_cluster < 1:
        raise ValueError("cluster_count and servers_per_cluster must be positive")
    if not 0.0 <= dual_stack_fraction <= 1.0:
        raise ValueError("dual_stack_fraction must be a probability")
    rng = rng if rng is not None else np.random.default_rng(CDN_SEED)
    deployment = CDNDeployment()
    next_server_id = itertools.count(0)

    dual_stack_quota = int(round(cluster_count * dual_stack_fraction))
    attempts_left = cluster_count * max_attempts_factor

    for cluster_id in range(cluster_count):
        needs_dual_stack = cluster_id < dual_stack_quota
        host: Optional[ASN] = None
        city: Optional[GeoLocation] = None
        while attempts_left > 0:
            attempts_left -= 1
            city = sample_city(rng)
            candidates = _candidate_hosts(graph, city, needs_dual_stack)
            if candidates:
                host = candidates[int(rng.integers(len(candidates)))]
                break
        if host is None or city is None:
            raise RuntimeError(
                f"could not place cluster {cluster_id}: topology has no host AS "
                "in the sampled cities (grow the topology or lower cluster_count)"
            )

        host_system = graph.ases[host]
        servers = []
        for _ in range(servers_per_cluster):
            ipv4 = plan.allocate_host(host, IPVersion.V4)
            ipv6 = (
                plan.allocate_host(host, IPVersion.V6)
                if needs_dual_stack and host_system.ipv6_capable
                else None
            )
            servers.append(
                Server(
                    server_id=next(next_server_id),
                    cluster_id=cluster_id,
                    asn=host,
                    city=city,
                    ipv4=ipv4,
                    ipv6=ipv6,
                )
            )
        deployment.add(
            Cluster(cluster_id=cluster_id, asn=host, city=city, servers=tuple(servers))
        )

    return deployment
