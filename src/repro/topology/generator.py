"""AS-level topology generator.

Produces a policy-annotated AS graph with the coarse structure of the real
Internet core:

- a clique of tier-1 providers peering with each other,
- regional transit providers buying transit from tier-1s (and occasionally
  from each other) and peering among themselves,
- stub/edge ASes multihomed to one or two transit providers,
- public peering edges established over IXP fabrics, private peering edges
  established over cross-connects (the distinction matters for the paper's
  Section 5.3 finding that congested interconnections are mostly private).

Every AS has a geographic footprint (a set of world-model cities); edges are
placed preferentially between ASes with nearby footprints so that AS paths
traverse geographically plausible routes and the RTT model produces
realistic propagation delays.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.asn import ASN, ASRelationship, RelationshipTable
from repro.net.geo import GeoLocation
from repro.seeds import TOPOLOGY_SEED
from repro.topology.world import cities_by_continent, sample_cities

__all__ = [
    "ASTier",
    "LinkMedium",
    "AutonomousSystem",
    "TopologyConfig",
    "ASGraph",
    "IXPDescriptor",
    "generate_topology",
]


class ASTier(enum.Enum):
    """Coarse role of an AS in the hierarchy."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    STUB = "stub"


class LinkMedium(enum.Enum):
    """How an interdomain edge is physically realized (Section 5.3)."""

    PRIVATE = "private"
    """Private interconnect (cross-connect or private line)."""

    IXP = "ixp"
    """Public peering over an IXP switching fabric."""


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS in the synthetic topology.

    Attributes:
        asn: The AS number.
        tier: Hierarchy role.
        cities: Geographic footprint; border routers exist in each city.
        ipv6_capable: Whether the AS participates in the IPv6 topology.
    """

    asn: ASN
    tier: ASTier
    cities: Tuple[GeoLocation, ...]
    ipv6_capable: bool

    @property
    def home_city(self) -> GeoLocation:
        """Primary city of the AS (first footprint entry)."""
        return self.cities[0]


@dataclass(frozen=True)
class IXPDescriptor:
    """An Internet exchange point: a city plus the member ASes peering there."""

    ixp_id: int
    city: GeoLocation
    members: FrozenSet[ASN]


@dataclass
class TopologyConfig:
    """Knobs of the AS-graph generator.

    The defaults build a ~170-AS Internet, large enough for hundreds of
    distinct AS paths between CDN sites yet small enough that full
    path-vector routing over it is instantaneous.
    """

    n_tier1: int = 8
    n_transit: int = 45
    n_stub: int = 120
    first_asn: int = 100
    transit_providers: Tuple[int, int] = (1, 3)
    stub_providers: Tuple[int, int] = (1, 2)
    transit_peer_probability: float = 0.18
    stub_peer_probability: float = 0.02
    ixp_count: int = 6
    ixp_member_probability: float = 0.55
    ixp_public_peer_probability: float = 0.25
    ipv6_capable_probability: float = 0.92
    edge_ipv6_probability: float = 0.92
    tier1_cities: Tuple[int, int] = (8, 14)
    transit_cities: Tuple[int, int] = (3, 7)
    stub_cities: Tuple[int, int] = (1, 2)

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent settings."""
        if self.n_tier1 < 2:
            raise ValueError("need at least two tier-1 ASes")
        if self.n_transit < 1 or self.n_stub < 1:
            raise ValueError("need at least one transit and one stub AS")
        for name, (low, high) in (
            ("transit_providers", self.transit_providers),
            ("stub_providers", self.stub_providers),
            ("tier1_cities", self.tier1_cities),
            ("transit_cities", self.transit_cities),
            ("stub_cities", self.stub_cities),
        ):
            if low < 1 or high < low:
                raise ValueError(f"invalid range for {name}: ({low}, {high})")
        for name, probability in (
            ("transit_peer_probability", self.transit_peer_probability),
            ("stub_peer_probability", self.stub_peer_probability),
            ("ixp_member_probability", self.ixp_member_probability),
            ("ixp_public_peer_probability", self.ixp_public_peer_probability),
            ("ipv6_capable_probability", self.ipv6_capable_probability),
            ("edge_ipv6_probability", self.edge_ipv6_probability),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{name} must be a probability, got {probability}")


_Edge = Tuple[ASN, ASN]


def _edge_key(a: ASN, b: ASN) -> _Edge:
    return (a, b) if a < b else (b, a)


@dataclass
class ASGraph:
    """The generated AS-level topology.

    Attributes:
        ases: All ASes, keyed by ASN.
        relationships: Ground-truth business relationships (the analog of a
            CAIDA relationship table, but exact).
        edge_media: Physical realization of each edge; keys are sorted pairs.
        edge_ixp: For IXP edges, the hosting IXP id.
        edge_ipv6: Whether the edge carries IPv6 (both endpoints capable and
            the session is configured for v6).
        ixps: IXP descriptors, keyed by IXP id.
    """

    ases: Dict[ASN, AutonomousSystem] = field(default_factory=dict)
    relationships: RelationshipTable = field(default_factory=RelationshipTable)
    edge_media: Dict[_Edge, LinkMedium] = field(default_factory=dict)
    edge_ixp: Dict[_Edge, int] = field(default_factory=dict)
    edge_ipv6: Dict[_Edge, bool] = field(default_factory=dict)
    ixps: Dict[int, IXPDescriptor] = field(default_factory=dict)

    def asns(self, tier: Optional[ASTier] = None) -> List[ASN]:
        """All ASNs, optionally filtered by tier, in ascending order."""
        return sorted(
            asn for asn, system in self.ases.items() if tier is None or system.tier is tier
        )

    def edges(self) -> List[_Edge]:
        """All interdomain edges as sorted ASN pairs."""
        return sorted(self.edge_media)

    def has_edge(self, a: ASN, b: ASN) -> bool:
        """Whether an interdomain edge exists between ``a`` and ``b``."""
        return _edge_key(a, b) in self.edge_media

    def medium(self, a: ASN, b: ASN) -> LinkMedium:
        """Physical medium of the edge between ``a`` and ``b``."""
        return self.edge_media[_edge_key(a, b)]

    def edge_supports_ipv6(self, a: ASN, b: ASN) -> bool:
        """Whether the edge between ``a`` and ``b`` carries IPv6."""
        return self.edge_ipv6.get(_edge_key(a, b), False)

    def neighbors(self, asn: ASN, ipv6: bool = False) -> List[ASN]:
        """Neighbors of ``asn``; restricted to v6-capable edges when asked."""
        result = []
        for neighbor in self.relationships.neighbors(asn):
            if ipv6 and not self.edge_supports_ipv6(asn, neighbor):
                continue
            result.append(neighbor)
        return sorted(result)

    def validate(self) -> None:
        """Internal consistency checks; raises :class:`ValueError` on failure."""
        for a, b in self.edge_media:
            if self.relationships.get(a, b) is None:
                raise ValueError(f"edge AS{a}-AS{b} has a medium but no relationship")
        for a, b, _ in self.relationships.pairs():
            if _edge_key(a, b) not in self.edge_media:
                raise ValueError(f"relationship AS{a}-AS{b} has no edge medium")
        for asn, system in self.ases.items():
            if asn != system.asn:
                raise ValueError(f"AS key {asn} does not match record {system.asn}")
            if not system.cities:
                raise ValueError(f"AS{asn} has an empty footprint")


def _footprint_distance(a: Sequence[GeoLocation], b: Sequence[GeoLocation]) -> float:
    """Minimum city-to-city distance between two footprints, in km."""
    return min(x.distance_km(y) for x in a for y in b)


def _sample_footprint(
    rng: np.random.Generator,
    tier: ASTier,
    config: TopologyConfig,
) -> Tuple[GeoLocation, ...]:
    """Draw a footprint for an AS of the given tier.

    Tier-1s are global; transit providers are regional (cities drawn mostly
    from one continent); stubs sit in one or two nearby cities.
    """
    if tier is ASTier.TIER1:
        count = int(rng.integers(config.tier1_cities[0], config.tier1_cities[1] + 1))
        return tuple(sample_cities(rng, count, unique=True))
    home = sample_cities(rng, 1)[0]
    regional = cities_by_continent(home.continent)
    if tier is ASTier.TRANSIT:
        count = int(rng.integers(config.transit_cities[0], config.transit_cities[1] + 1))
    else:
        count = int(rng.integers(config.stub_cities[0], config.stub_cities[1] + 1))
    footprint: List[GeoLocation] = [home]
    candidates = [city for city in regional if city != home]
    rng.shuffle(candidates)  # type: ignore[arg-type]
    for city in candidates:
        if len(footprint) >= count:
            break
        footprint.append(city)
    # Small footprint continents (e.g. OC) may not fill the quota; accept it.
    return tuple(footprint)


def _pick_providers(
    rng: np.random.Generator,
    customer: AutonomousSystem,
    candidates: Sequence[AutonomousSystem],
    count_range: Tuple[int, int],
) -> List[ASN]:
    """Choose providers for ``customer``, weighted by geographic proximity."""
    count = int(rng.integers(count_range[0], count_range[1] + 1))
    count = min(count, len(candidates))
    distances = np.array(
        [_footprint_distance(customer.cities, provider.cities) for provider in candidates]
    )
    # Closer providers are much more likely; 1/(500km + d) gives strong
    # locality without making remote providers impossible.
    weights = 1.0 / (500.0 + distances)
    weights /= weights.sum()
    chosen = rng.choice(len(candidates), size=count, replace=False, p=weights)
    return [candidates[int(index)].asn for index in chosen]


def generate_topology(
    config: Optional[TopologyConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> ASGraph:
    """Generate a synthetic AS-level Internet.

    Args:
        config: Generator knobs; defaults to :class:`TopologyConfig`.
        rng: Source of randomness; defaults to a fixed-seed generator so the
            zero-argument call is reproducible.

    Returns:
        A validated :class:`ASGraph`.
    """
    config = config or TopologyConfig()
    config.validate()
    rng = rng if rng is not None else np.random.default_rng(TOPOLOGY_SEED)
    graph = ASGraph()

    next_asn = itertools.count(config.first_asn)

    def make_as(tier: ASTier) -> AutonomousSystem:
        asn = next(next_asn)
        capable = tier is ASTier.TIER1 or bool(
            rng.random() < config.ipv6_capable_probability
        )
        system = AutonomousSystem(
            asn=asn,
            tier=tier,
            cities=_sample_footprint(rng, tier, config),
            ipv6_capable=capable,
        )
        graph.ases[asn] = system
        return system

    tier1s = [make_as(ASTier.TIER1) for _ in range(config.n_tier1)]
    transits = [make_as(ASTier.TRANSIT) for _ in range(config.n_transit)]
    stubs = [make_as(ASTier.STUB) for _ in range(config.n_stub)]

    def add_edge(a: ASN, b: ASN, relationship: ASRelationship, medium: LinkMedium,
                 ixp_id: Optional[int] = None) -> None:
        graph.relationships.add(a, b, relationship)
        key = _edge_key(a, b)
        graph.edge_media[key] = medium
        if ixp_id is not None:
            graph.edge_ixp[key] = ixp_id
        both_capable = graph.ases[a].ipv6_capable and graph.ases[b].ipv6_capable
        graph.edge_ipv6[key] = bool(
            both_capable and rng.random() < config.edge_ipv6_probability
        )

    # Tier-1 clique: all pairs peer privately.
    for first, second in itertools.combinations(tier1s, 2):
        add_edge(first.asn, second.asn, ASRelationship.PEER, LinkMedium.PRIVATE)

    # Transit providers buy transit from tier-1s (and occasionally from other
    # transit providers created before them, giving a shallow hierarchy).
    for index, transit in enumerate(transits):
        candidates: List[AutonomousSystem] = list(tier1s)
        candidates.extend(transits[: index // 2])
        providers = _pick_providers(rng, transit, candidates, config.transit_providers)
        for provider in providers:
            add_edge(provider, transit.asn, ASRelationship.CUSTOMER, LinkMedium.PRIVATE)

    # Stubs buy transit from geographically nearby transit providers.
    for stub in stubs:
        providers = _pick_providers(rng, stub, transits, config.stub_providers)
        for provider in providers:
            add_edge(provider, stub.asn, ASRelationship.CUSTOMER, LinkMedium.PRIVATE)

    # Private peering among transit providers with nearby footprints.
    for first, second in itertools.combinations(transits, 2):
        if graph.has_edge(first.asn, second.asn):
            continue
        distance = _footprint_distance(first.cities, second.cities)
        probability = config.transit_peer_probability * (500.0 / (500.0 + distance))
        if rng.random() < probability:
            add_edge(first.asn, second.asn, ASRelationship.PEER, LinkMedium.PRIVATE)

    # IXPs: pick host cities, enroll members present in (or near) the city,
    # and create public peering edges between member pairs.
    ixp_cities = sample_cities(rng, config.ixp_count, unique=True)
    for ixp_id, city in enumerate(ixp_cities):
        members: List[ASN] = []
        for system in itertools.chain(tier1s, transits, stubs):
            near = any(city.distance_km(own) < 100.0 for own in system.cities)
            if near and rng.random() < config.ixp_member_probability:
                members.append(system.asn)
        graph.ixps[ixp_id] = IXPDescriptor(ixp_id=ixp_id, city=city, members=frozenset(members))
        for a, b in itertools.combinations(members, 2):
            if graph.has_edge(a, b):
                continue
            tier_a, tier_b = graph.ases[a].tier, graph.ases[b].tier
            if ASTier.TIER1 in (tier_a, tier_b):
                continue  # tier-1s do not open public peering
            if rng.random() < config.ixp_public_peer_probability:
                add_edge(a, b, ASRelationship.PEER, LinkMedium.IXP, ixp_id=ixp_id)

    # A handful of direct stub-stub private peerings (content/eyeball style).
    for first, second in itertools.combinations(stubs, 2):
        if graph.has_edge(first.asn, second.asn):
            continue
        distance = _footprint_distance(first.cities, second.cities)
        if distance < 200.0 and rng.random() < config.stub_peer_probability:
            add_edge(first.asn, second.asn, ASRelationship.PEER, LinkMedium.PRIVATE)

    _normalize_ipv6_capability(graph)
    graph.validate()
    return graph


def _normalize_ipv6_capability(graph: ASGraph) -> None:
    """Make IPv6 capability mean IPv6 *reachability*.

    Three passes:

    1. Demote (to v4-only) any non-tier-1 AS with no IPv6-capable provider;
       capability without upstream transit is vacuous.  Iterate to fixpoint
       since demotions cascade down provider chains.
    2. Clear the v6 flag of edges touching a demoted AS.
    3. Force one provider edge per capable AS to carry v6, so capability
       always implies a v6 transit path -- the paper's dual-stack servers
       have working IPv6 by construction.
    """
    from dataclasses import replace

    changed = True
    while changed:
        changed = False
        for asn in graph.asns():
            system = graph.ases[asn]
            if system.tier is ASTier.TIER1 or not system.ipv6_capable:
                continue
            has_capable_provider = any(
                graph.ases[provider].ipv6_capable
                for provider in graph.relationships.providers(asn)
            )
            if not has_capable_provider:
                graph.ases[asn] = replace(system, ipv6_capable=False)
                changed = True

    for key in graph.edge_ipv6:
        a, b = key
        if not (graph.ases[a].ipv6_capable and graph.ases[b].ipv6_capable):
            graph.edge_ipv6[key] = False

    for asn in graph.asns():
        system = graph.ases[asn]
        if system.tier is ASTier.TIER1 or not system.ipv6_capable:
            continue
        capable_providers = [
            provider
            for provider in sorted(graph.relationships.providers(asn))
            if graph.ases[provider].ipv6_capable
        ]
        if capable_providers and not any(
            graph.edge_supports_ipv6(asn, provider) for provider in capable_providers
        ):
            graph.edge_ipv6[_edge_key(asn, capable_providers[0])] = True
