"""Named default RNG seeds: the single home for literal seed values.

Each zero-argument entry point that builds part of the world
(``generate_topology()``, ``allocate_addresses()``, ...) falls back to
its own fixed seed so the call is reproducible *and* the default streams
stay disjoint from one another.  Those literals used to be magic numbers
scattered across call sites; they live here now, and DET001 enforces it:
``repro.seeds`` is the only module where an integer literal may be
passed to ``np.random.default_rng`` (the ``SEED_LITERAL_WHITELIST`` in
:mod:`repro.lint.rules.determinism`).

Seeded platform builds never touch these -- the platform derives every
stream from its config seed via ``_stream_seed`` hashing.  The constants
only matter when a component is exercised standalone with ``rng=None``.

The values are frozen history, not tunables: changing one changes every
default-built artifact (and its cache fingerprint stays put, because the
seed is not a config field -- which is exactly why they must never
drift).
"""

from __future__ import annotations

__all__ = [
    "PLATFORM_SEED",
    "TOPOLOGY_SEED",
    "ADDRESSING_SEED",
    "ROUTERS_SEED",
    "CDN_SEED",
    "OUTAGES_SEED",
    "FLAPS_SEED",
    "CONGESTION_SEED",
    "DEFAULT_SEEDS",
]

PLATFORM_SEED = 0
"""Default for :class:`repro.measurement.platform.PlatformConfig`'s base
seed, from which every platform stream is derived via ``_stream_seed``
hashing.  DET010 tracks the field interprocedurally into those streams,
so the default must be a named constant, not a literal at the field."""

TOPOLOGY_SEED = 0
"""Default for :func:`repro.topology.generator.generate_topology`."""

ADDRESSING_SEED = 1
"""Default for :func:`repro.topology.addressing.allocate_addresses`."""

ROUTERS_SEED = 2
"""Default for :func:`repro.topology.routers.build_router_topology`."""

CDN_SEED = 3
"""Default for :func:`repro.topology.cdn.deploy_cdn`."""

OUTAGES_SEED = 4
"""Default for :func:`repro.routing.dynamics.sample_edge_outages`."""

FLAPS_SEED = 5
"""Default for :func:`repro.routing.dynamics.sample_pair_flaps`."""

CONGESTION_SEED = 6
"""Default for :func:`repro.measurement.congestionmodel.assign_congestion`."""

DEFAULT_SEEDS = {
    "topology": TOPOLOGY_SEED,
    "addressing": ADDRESSING_SEED,
    "routers": ROUTERS_SEED,
    "cdn": CDN_SEED,
    "outages": OUTAGES_SEED,
    "flaps": FLAPS_SEED,
    "congestion": CONGESTION_SEED,
}
"""Component name -> default seed, for docs and audit tooling."""
