"""Path-vector route computation over the AS graph.

For each destination AS the classic three-phase propagation computes the
best policy-compliant route at every other AS:

1. customer routes climb from the destination along customer-to-provider
   edges (everyone "above" the destination hears it from a customer);
2. peer routes cross one peering edge from any AS holding a customer route;
3. provider routes descend along provider-to-customer edges.

Preference is customer > peer > provider, then shortest AS path, then a
deterministic tie-break.  On top of the per-AS best routes,
:func:`compute_route_table` derives the *ranked alternatives* a source AS
holds toward each destination: one candidate per neighbor that would export
its best route to the source.  The alternative set is what the
routing-dynamics layer switches between when links fail, producing the AS
path changes the paper studies.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.net.asn import ASN
from repro.net.ip import IPVersion
from repro.routing.policy import RouteClass, export_allowed, route_class
from repro.routing.table import CandidateRoute, RouteTable
from repro.topology.generator import ASGraph

__all__ = ["compute_best_routes", "compute_route_table"]

# Best route at an AS toward the current destination: (class, path).
_BestRoute = Tuple[RouteClass, Tuple[ASN, ...]]


def _adjacency(graph: ASGraph, version: IPVersion) -> Dict[ASN, Set[ASN]]:
    """Neighbor sets, restricted to the IPv6 sub-topology when asked."""
    ipv6 = version is IPVersion.V6
    adjacency: Dict[ASN, Set[ASN]] = {}
    for asn in graph.asns():
        if ipv6 and not graph.ases[asn].ipv6_capable:
            adjacency[asn] = set()
            continue
        neighbors = set()
        for neighbor in graph.neighbors(asn, ipv6=ipv6):
            if ipv6 and not graph.ases[neighbor].ipv6_capable:
                continue
            neighbors.add(neighbor)
        adjacency[asn] = neighbors
    return adjacency


def _route_sort_key(route: _BestRoute) -> Tuple[int, int, Tuple[ASN, ...]]:
    route_class_, path = route
    return (-int(route_class_), len(path), path)


def _pair_jitter(salt: int, path: Tuple[ASN, ...]) -> float:
    """Deterministic tie-break jitter in ``[0, 1)`` for one candidate path.

    A pure function of ``(salt, path)`` rather than a sequential RNG draw,
    so the jitter a pair's candidates receive does not depend on which
    other sources/destinations are in scope or on iteration order.  That
    makes scoped tables exact slices of full tables and lets destinations
    be computed in parallel without changing any result.
    """
    digest = hashlib.blake2b(
        repr((salt, path)).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


def compute_best_routes(
    graph: ASGraph,
    destination: ASN,
    adjacency: Optional[Dict[ASN, Set[ASN]]] = None,
    version: IPVersion = IPVersion.V4,
) -> Dict[ASN, _BestRoute]:
    """Best policy route from every AS to ``destination``.

    Returns:
        Mapping of AS to ``(route_class, as_path)``; the destination maps to
        ``(SELF, (destination,))``.  ASes with no policy-compliant route are
        absent.
    """
    relationships = graph.relationships
    adjacency = adjacency if adjacency is not None else _adjacency(graph, version)
    if destination not in adjacency:
        return {}

    best: Dict[ASN, _BestRoute] = {destination: (RouteClass.SELF, (destination,))}

    # Phase 1: customer routes climb provider-ward, breadth-first so shorter
    # paths win; ties broken by lowest announcing-customer ASN (queue order).
    frontier = deque([destination])
    while frontier:
        current = frontier.popleft()
        _, current_path = best[current]
        for provider in sorted(relationships.providers(current)):
            if provider in best or provider not in adjacency[current]:
                continue
            best[provider] = (RouteClass.CUSTOMER, (provider,) + current_path)
            frontier.append(provider)

    # Phase 2: peer routes: one peering edge from any AS with a customer (or
    # self) route.  Evaluated against a snapshot so peer routes do not chain.
    customer_holders = dict(best)
    peer_routes: Dict[ASN, _BestRoute] = {}
    for holder, (holder_class, holder_path) in customer_holders.items():
        if holder_class not in (RouteClass.SELF, RouteClass.CUSTOMER):
            continue
        for peer in sorted(relationships.peers(holder)):
            if peer in best or peer not in adjacency[holder]:
                continue
            candidate = (RouteClass.PEER, (peer,) + holder_path)
            incumbent = peer_routes.get(peer)
            if incumbent is None or _route_sort_key(candidate) < _route_sort_key(incumbent):
                peer_routes[peer] = candidate
    best.update(peer_routes)

    # Phase 3: provider routes descend customer-ward, breadth-first from all
    # ASes that already have a route, shortest-extension first.
    frontier = deque(sorted(best, key=lambda asn: len(best[asn][1])))
    while frontier:
        current = frontier.popleft()
        _, current_path = best[current]
        for customer in sorted(relationships.customers(current)):
            if customer in best or customer not in adjacency[current]:
                continue
            best[customer] = (RouteClass.PROVIDER, (customer,) + current_path)
            frontier.append(customer)

    return best


# Sort key: preference class (descending), then path length, then tier
# (steady-state routes win ties), then jitter.
_Option = Tuple[Tuple[int, int, int, float], Tuple[ASN, ...], RouteClass, int]

_Pair = Tuple[ASN, ASN]
_Candidates = Tuple[CandidateRoute, ...]


def _destination_candidates(
    graph: ASGraph,
    destination: ASN,
    sources: List[ASN],
    adjacency: Dict[ASN, Set[ASN]],
    version: IPVersion,
    max_alternatives: int,
    jitter_salt: Optional[int],
) -> List[Tuple[_Pair, _Candidates]]:
    """Ranked candidates from every in-scope source toward one destination."""
    relationships = graph.relationships
    results: List[Tuple[_Pair, _Candidates]] = []
    if destination not in adjacency:
        return results
    best = compute_best_routes(graph, destination, adjacency=adjacency, version=version)
    for source in sources:
        if source not in adjacency:
            continue
        if source == destination:
            route = CandidateRoute.make((source,), RouteClass.SELF, 0)
            results.append(((source, destination), (route,)))
            continue
        if not adjacency[source]:
            continue
        options: List[_Option] = []
        seen_paths: Set[Tuple[ASN, ...]] = set()

        def add_option(path: Tuple[ASN, ...], own_class: RouteClass, tier: int) -> None:
            if path in seen_paths:
                return
            seen_paths.add(path)
            jitter = _pair_jitter(jitter_salt, path) if jitter_salt is not None else 0.0
            options.append(
                ((-int(own_class), len(path), tier, jitter), path, own_class, tier)
            )

        for neighbor in sorted(adjacency[source]):
            neighbor_best = best.get(neighbor)
            if neighbor_best is None:
                continue
            own_class = route_class(relationships, source, neighbor)

            neighbor_class, neighbor_path = neighbor_best
            if source not in neighbor_path and export_allowed(
                relationships, neighbor, source, neighbor_class
            ):
                add_option((source,) + neighbor_path, own_class, tier=0)

            # Tier 1: what the neighbor would use if its primary failed.
            for second in sorted(adjacency[neighbor]):
                if second == source:
                    continue
                second_best = best.get(second)
                if second_best is None:
                    continue
                second_class, second_path = second_best
                if source in second_path or neighbor in second_path:
                    continue
                if not export_allowed(relationships, second, neighbor, second_class):
                    continue
                class_at_neighbor = route_class(relationships, neighbor, second)
                if not export_allowed(relationships, neighbor, source, class_at_neighbor):
                    continue
                add_option((source, neighbor) + second_path, own_class, tier=1)

        if not options:
            continue
        options.sort(key=lambda item: item[0])
        # Index 0 must be the steady-state selection: the best tier-0
        # option.  Failure-response order (the rest) stays flat.
        primary_position = next(
            (index for index, option in enumerate(options) if option[3] == 0), None
        )
        if primary_position is None:
            continue  # no steady-state route: destination unreachable
        ordered = [options[primary_position]] + [
            option
            for index, option in enumerate(options)
            if index != primary_position
        ]
        candidates = tuple(
            CandidateRoute.make(path, own_class, rank, tier=tier)
            for rank, (_, path, own_class, tier) in enumerate(
                ordered[:max_alternatives]
            )
        )
        results.append(((source, destination), candidates))
    return results


def compute_route_table(
    graph: ASGraph,
    version: IPVersion = IPVersion.V4,
    sources: Optional[List[ASN]] = None,
    destinations: Optional[List[ASN]] = None,
    max_alternatives: int = 8,
    rng: Optional[np.random.Generator] = None,
    jobs: int = 1,
) -> RouteTable:
    """Compute ranked candidate routes between AS pairs.

    Candidates come in two tiers.  Tier 0 are the routes the source's
    neighbors advertise in steady state (each neighbor's best path); the
    best of these, at index 0, is what BGP selects with everything up.
    Tier 1 extends one level deeper -- the routes a neighbor would fall back
    to (its *other* neighbors' best paths) if its primary broke -- giving
    the routing-dynamics layer realistic mid-path alternatives, not just
    first-hop ones.  All candidates are valley-free by construction: every
    hop-to-hop advertisement is checked against the Gao-Rexford export
    rules.

    Scoping and parallelism are both exact: the tie-break jitter is a pure
    function of a single salt drawn from ``rng`` and the candidate path, so
    a table computed over a subset of sources/destinations is the literal
    slice of the full table, and sharding destinations across workers
    cannot change any entry.

    Args:
        graph: The AS topology.
        version: ``V4`` uses the full graph; ``V6`` the IPv6 sub-topology.
        sources: Source ASes to include (default: all).
        destinations: Destination ASes to include (default: all).
        max_alternatives: Keep at most this many candidates per pair.
        rng: Optional tie-break jitter between equally-preferred candidates;
            giving IPv4 and IPv6 different generators yields the occasional
            protocol-path divergence studied in Section 6.  Exactly one
            draw is consumed, however large the scope.
        jobs: Worker processes for the per-destination propagation loop
            (``<= 1`` serial; ``0``/``None`` all cores).

    Returns:
        A :class:`RouteTable` whose index-0 candidate per pair is the route
        BGP selects with everything up.
    """
    from repro.datasets.parallel import fork_map
    from repro.obs import metrics as obs_metrics

    if max_alternatives < 1:
        raise ValueError("max_alternatives must be positive")
    # The adjacency is built once and shared by every per-destination
    # propagation (and, under fork, by every worker).
    adjacency = _adjacency(graph, version)
    sources = list(sources) if sources is not None else graph.asns()
    destinations = list(destinations) if destinations is not None else graph.asns()
    jitter_salt = int(rng.integers(1 << 63)) if rng is not None else None
    table = RouteTable(version=version)

    def run_destination(destination: ASN) -> List[Tuple[_Pair, _Candidates]]:
        return _destination_candidates(
            graph, destination, sources, adjacency, version, max_alternatives,
            jitter_salt,
        )

    obs_metrics.counter("bgp.destinations").inc(len(destinations))
    for shard in fork_map(run_destination, destinations, jobs, label="routes"):
        for pair, candidates in shard:
            table.candidates[pair] = candidates
    obs_metrics.counter("bgp.pairs").inc(len(table.candidates))
    return table
