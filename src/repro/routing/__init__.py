"""BGP routing substrate: policy, path computation, and dynamics.

- :mod:`repro.routing.policy` -- Gao-Rexford export rules and route
  preference (customer > peer > provider).
- :mod:`repro.routing.bgp` -- path-vector route computation over the AS
  graph: per-destination best routes at every AS, and ranked alternative
  routes per (source, destination) pair.
- :mod:`repro.routing.table` -- the resulting route tables.
- :mod:`repro.routing.dynamics` -- link outages and local flaps over
  simulated time, turning static candidate sets into per-pair AS-path
  timelines (the level shifts of the paper's Figure 1a).
"""

from repro.routing.bgp import compute_route_table
from repro.routing.dynamics import (
    EdgeOutage,
    PairFlap,
    PathEpoch,
    RoutingDynamicsConfig,
    RoutingSchedule,
    build_routing_schedule,
)
from repro.routing.policy import RouteClass, export_allowed, route_class
from repro.routing.table import CandidateRoute, RouteTable

__all__ = [
    "CandidateRoute",
    "RouteTable",
    "RouteClass",
    "route_class",
    "export_allowed",
    "compute_route_table",
    "RoutingDynamicsConfig",
    "RoutingSchedule",
    "EdgeOutage",
    "PairFlap",
    "PathEpoch",
    "build_routing_schedule",
]
