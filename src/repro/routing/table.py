"""Route tables: ranked candidate AS paths per (source, destination) pair."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.net.asn import ASN
from repro.net.ip import IPVersion
from repro.routing.policy import RouteClass

__all__ = ["CandidateRoute", "RouteTable"]

_Edge = Tuple[ASN, ASN]


def _path_edges(path: Tuple[ASN, ...]) -> FrozenSet[_Edge]:
    return frozenset(
        (a, b) if a < b else (b, a) for a, b in zip(path, path[1:])
    )


@dataclass(frozen=True)
class CandidateRoute:
    """One candidate AS path from a source AS to a destination AS.

    Attributes:
        path: AS path including both endpoints.
        route_class: Preference class of the first hop, from the source's
            point of view.
        rank: Position in the source's preference order (0 = best).
        via: The next-hop AS (``path[1]``, or the source itself for the
            self route).
        tier: ``0`` for routes the next hop advertises in steady state (its
            own best path); ``1`` for the next hop's fallback routes, which
            only become visible when its primary breaks.
        edges: The AS-level edges the path uses, for outage matching.
    """

    path: Tuple[ASN, ...]
    route_class: RouteClass
    rank: int
    via: ASN
    tier: int = 0
    edges: FrozenSet[_Edge] = field(default=frozenset())

    @staticmethod
    def make(
        path: Tuple[ASN, ...], route_class: RouteClass, rank: int, tier: int = 0
    ) -> "CandidateRoute":
        """Build a candidate with its edge set derived from the path."""
        via = path[1] if len(path) > 1 else path[0]
        return CandidateRoute(
            path=path,
            route_class=route_class,
            rank=rank,
            via=via,
            tier=tier,
            edges=_path_edges(path),
        )

    def uses_edge(self, a: ASN, b: ASN) -> bool:
        """Whether the path traverses the AS edge ``a``-``b``."""
        key = (a, b) if a < b else (b, a)
        return key in self.edges


@dataclass
class RouteTable:
    """Candidate routes for every ordered AS pair, for one IP version.

    ``candidates[(src, dst)]`` is ordered by preference; index 0 is the path
    BGP selects when everything is up.
    """

    version: IPVersion
    candidates: Dict[Tuple[ASN, ASN], Tuple[CandidateRoute, ...]] = field(default_factory=dict)

    def routes(self, src: ASN, dst: ASN) -> Tuple[CandidateRoute, ...]:
        """All candidates from ``src`` to ``dst`` (empty if unreachable)."""
        return self.candidates.get((src, dst), ())

    def best(self, src: ASN, dst: ASN) -> Optional[CandidateRoute]:
        """The preferred route, or ``None`` when ``dst`` is unreachable."""
        routes = self.routes(src, dst)
        return routes[0] if routes else None

    def reachable_pairs(self) -> List[Tuple[ASN, ASN]]:
        """All ordered pairs with at least one route."""
        return sorted(pair for pair, routes in self.candidates.items() if routes)
