"""Routing dynamics: outages and flaps turning static routes into timelines.

The paper observes AS-path level shifts (Figure 1a) whose lifetimes range
from 3 hours to the full 16 months (Figures 4/5), with most trace timelines
dominated by a single path (Figure 3a) and 18%/16% seeing no change at all
(Figure 3b).  This module reproduces those dynamics:

- **Edge outages** take an AS-level edge down for a sampled duration; every
  pair whose currently-selected path uses the edge falls back to its best
  unaffected alternative, and returns when the outage ends.  Outages are
  shared between IPv4 and IPv6 (shared physical infrastructure), so the two
  protocols often shift together, as in the paper's illustrative example.
- **Pair flaps** demote a pair's primary route for a sampled window,
  modelling local policy changes and session resets that affect only one
  pair of endpoints (and one protocol).

Per-edge outage rates are heterogeneous (lognormal): most edges almost
never fail, a few fail often -- which is what produces the paper's wide
spread in per-timeline change counts.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.asn import ASN
from repro.routing.table import RouteTable
from repro.seeds import FLAPS_SEED, OUTAGES_SEED
from repro.topology.generator import ASGraph

__all__ = [
    "RoutingDynamicsConfig",
    "EdgeOutage",
    "PairFlap",
    "PathEpoch",
    "RoutingSchedule",
    "sample_edge_outages",
    "sample_pair_flaps",
    "build_routing_schedule",
]

_Edge = Tuple[ASN, ASN]
_Pair = Tuple[ASN, ASN]

HOURS_PER_MONTH = 24.0 * 30.4


@dataclass
class RoutingDynamicsConfig:
    """Knobs of the routing-dynamics sampler.

    Rates are per month of simulated time so scenarios of any duration can
    share a calibration.  Outage durations are a three-component lognormal
    mixture: mostly hours, sometimes days, occasionally weeks-to-months
    (the long tail behind the paper's long-lived sub-optimal paths).
    """

    mean_outages_per_edge_per_month: float = 0.10
    edge_rate_sigma: float = 1.1
    """Lognormal sigma of per-edge rate heterogeneity."""

    duration_mixture: Tuple[Tuple[float, float, float], ...] = (
        (0.73, 6.0, 0.9),     # weight, median hours, sigma: short (hours)
        (0.25, 60.0, 0.8),    # medium (days)
        (0.02, 900.0, 0.7),   # long (weeks to months)
    )

    flaps_per_pair_per_month: float = 0.04
    flap_duration_median_hours: float = 24.0
    flap_duration_sigma: float = 1.2

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent settings."""
        if self.mean_outages_per_edge_per_month < 0 or self.flaps_per_pair_per_month < 0:
            raise ValueError("rates must be non-negative")
        total_weight = sum(weight for weight, _, _ in self.duration_mixture)
        if not np.isclose(total_weight, 1.0):
            raise ValueError(f"duration mixture weights sum to {total_weight}, expected 1")


@dataclass(frozen=True)
class EdgeOutage:
    """One AS-level edge unavailable during ``[start_hour, end_hour)``."""

    edge: _Edge
    start_hour: float
    end_hour: float


@dataclass(frozen=True)
class PairFlap:
    """One pair's primary route demoted during ``[start_hour, end_hour)``."""

    pair: _Pair
    start_hour: float
    end_hour: float


@dataclass(frozen=True)
class PathEpoch:
    """A maximal interval during which a pair uses one candidate route.

    ``candidate_index`` indexes the pair's candidate tuple in the route
    table; ``-1`` means the destination was unreachable.
    """

    start_hour: float
    end_hour: float
    candidate_index: int


@dataclass
class RoutingSchedule:
    """Per-AS-pair path timelines over the study window."""

    duration_hours: float
    timelines: Dict[_Pair, Tuple[PathEpoch, ...]] = field(default_factory=dict)
    outages: Tuple[EdgeOutage, ...] = ()
    flaps: Tuple[PairFlap, ...] = ()

    def epochs(self, pair: _Pair) -> Tuple[PathEpoch, ...]:
        """The path timeline of ``pair`` (empty if the pair is unknown)."""
        return self.timelines.get(pair, ())

    def candidate_at(self, pair: _Pair, hour: float) -> int:
        """Candidate index in use at ``hour`` (``-1`` when unreachable)."""
        epochs = self.timelines.get(pair)
        if not epochs:
            return -1
        starts = [epoch.start_hour for epoch in epochs]
        index = bisect.bisect_right(starts, hour) - 1
        if index < 0:
            return -1
        return epochs[index].candidate_index

    def change_count(self, pair: _Pair) -> int:
        """Number of path changes over the window."""
        return max(0, len(self.timelines.get(pair, ())) - 1)


def _sample_duration_hours(
    rng: np.random.Generator, mixture: Sequence[Tuple[float, float, float]]
) -> float:
    weights = np.array([weight for weight, _, _ in mixture])
    component = int(rng.choice(len(mixture), p=weights / weights.sum()))
    _, median, sigma = mixture[component]
    return float(median * np.exp(rng.normal(0.0, sigma)))


def sample_edge_outages(
    graph: ASGraph,
    duration_hours: float,
    config: Optional[RoutingDynamicsConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[EdgeOutage]:
    """Sample outage events for every edge over the study window.

    Outages model both physical failures and policy withdrawals; an edge can
    have overlapping outages (they union).  Events are sorted by start time.
    """
    config = config or RoutingDynamicsConfig()
    config.validate()
    rng = rng if rng is not None else np.random.default_rng(OUTAGES_SEED)
    months = duration_hours / HOURS_PER_MONTH
    outages: List[EdgeOutage] = []
    for edge in graph.edges():
        # Heterogeneous per-edge rate: lognormal with the configured mean.
        sigma = config.edge_rate_sigma
        rate = config.mean_outages_per_edge_per_month * float(
            np.exp(rng.normal(-0.5 * sigma**2, sigma))
        )
        count = int(rng.poisson(rate * months))
        for _ in range(count):
            start = float(rng.uniform(0.0, duration_hours))
            length = _sample_duration_hours(rng, config.duration_mixture)
            outages.append(
                EdgeOutage(edge=edge, start_hour=start, end_hour=min(start + length, duration_hours))
            )
    outages.sort(key=lambda outage: outage.start_hour)
    return outages


def sample_pair_flaps(
    pairs: Sequence[_Pair],
    duration_hours: float,
    config: Optional[RoutingDynamicsConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[PairFlap]:
    """Sample per-pair primary-route demotions over the study window."""
    config = config or RoutingDynamicsConfig()
    config.validate()
    rng = rng if rng is not None else np.random.default_rng(FLAPS_SEED)
    months = duration_hours / HOURS_PER_MONTH
    flaps: List[PairFlap] = []
    for pair in pairs:
        count = int(rng.poisson(config.flaps_per_pair_per_month * months))
        for _ in range(count):
            start = float(rng.uniform(0.0, duration_hours))
            length = float(
                config.flap_duration_median_hours
                * np.exp(rng.normal(0.0, config.flap_duration_sigma))
            )
            flaps.append(
                PairFlap(pair=pair, start_hour=start, end_hour=min(start + length, duration_hours))
            )
    flaps.sort(key=lambda flap: flap.start_hour)
    return flaps


def _select_candidate(
    candidates: Sequence,
    blocked_edges: FrozenSet[_Edge],
    demote_primary: bool,
) -> int:
    """Best usable candidate index given blocked edges and flap state.

    A tier-1 candidate (a neighbor's fallback route) is only *advertised*
    while that neighbor's steady-state route is down, so it is usable only
    when the tier-0 candidate through the same next hop is blocked.
    """
    tier0_blocked: Dict[ASN, bool] = {}
    for candidate in candidates:
        if candidate.tier == 0:
            tier0_blocked[candidate.via] = bool(candidate.edges & blocked_edges)

    first_usable = -1
    for index, candidate in enumerate(candidates):
        if candidate.edges & blocked_edges:
            continue
        if candidate.tier == 1 and not tier0_blocked.get(candidate.via, True):
            continue
        if first_usable < 0:
            first_usable = index
        if demote_primary and index == 0:
            continue
        return index
    # Everything else blocked or demoted: fall back to the primary if it is
    # at least up, else unreachable.
    return first_usable


def build_routing_schedule(
    table: RouteTable,
    pairs: Sequence[_Pair],
    duration_hours: float,
    outages: Sequence[EdgeOutage],
    flaps: Sequence[PairFlap] = (),
) -> RoutingSchedule:
    """Evaluate path selection over time for each requested AS pair.

    Args:
        table: Candidate routes per pair (one protocol).
        pairs: Ordered AS pairs to build timelines for.
        duration_hours: Study window length.
        outages: Shared edge outages (see :func:`sample_edge_outages`).
        flaps: Per-pair flaps for this protocol.

    Returns:
        A :class:`RoutingSchedule` with one epoch list per reachable pair.
    """
    if duration_hours <= 0:
        raise ValueError("duration must be positive")
    flaps_by_pair: Dict[_Pair, List[PairFlap]] = {}
    for flap in flaps:
        flaps_by_pair.setdefault(flap.pair, []).append(flap)

    schedule = RoutingSchedule(
        duration_hours=duration_hours,
        outages=tuple(outages),
        flaps=tuple(flaps),
    )

    for pair in pairs:
        candidates = table.routes(*pair)
        if not candidates:
            continue
        all_edges = frozenset().union(*(candidate.edges for candidate in candidates))

        relevant_outages = [outage for outage in outages if outage.edge in all_edges]
        relevant_flaps = flaps_by_pair.get(pair, ())

        boundaries = {0.0, duration_hours}
        for outage in relevant_outages:
            if outage.start_hour < duration_hours:
                boundaries.add(max(0.0, outage.start_hour))
                boundaries.add(min(duration_hours, outage.end_hour))
        for flap in relevant_flaps:
            if flap.start_hour < duration_hours:
                boundaries.add(max(0.0, flap.start_hour))
                boundaries.add(min(duration_hours, flap.end_hour))
        ordered = sorted(boundaries)

        epochs: List[PathEpoch] = []
        for start, end in zip(ordered, ordered[1:]):
            midpoint = 0.5 * (start + end)
            blocked = frozenset(
                outage.edge
                for outage in relevant_outages
                if outage.start_hour <= midpoint < outage.end_hour
            )
            demoted = any(
                flap.start_hour <= midpoint < flap.end_hour for flap in relevant_flaps
            )
            selected = _select_candidate(candidates, blocked, demoted)
            if epochs and epochs[-1].candidate_index == selected:
                epochs[-1] = PathEpoch(epochs[-1].start_hour, end, selected)
            else:
                epochs.append(PathEpoch(start, end, selected))
        schedule.timelines[pair] = tuple(epochs)

    return schedule
