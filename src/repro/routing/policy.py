"""Gao-Rexford routing policy: route classes and export rules.

The standard model of BGP policy routing:

- **Preference**: an AS prefers routes learned from customers over routes
  from peers over routes from providers (money flows accordingly).
- **Export**: routes learned from a customer are exported to everyone;
  routes learned from a peer or provider are exported only to customers.

Paths that respect these rules are "valley-free": they climb zero or more
customer-to-provider edges, optionally cross one peering edge, then descend
provider-to-customer edges.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.net.asn import ASN, ASRelationship, RelationshipTable

__all__ = ["RouteClass", "route_class", "export_allowed", "is_valley_free"]


class RouteClass(enum.IntEnum):
    """How a route was learned, ordered by preference (higher is better)."""

    PROVIDER = 1
    PEER = 2
    CUSTOMER = 3
    SELF = 4
    """The destination is the AS itself."""


def route_class(relationships: RelationshipTable, holder: ASN, next_hop: ASN) -> RouteClass:
    """Class of a route at ``holder`` whose next hop AS is ``next_hop``.

    Raises:
        ValueError: If the two ASes have no recorded relationship.
    """
    relationship = relationships.get(holder, next_hop)
    if relationship is ASRelationship.CUSTOMER:
        return RouteClass.CUSTOMER
    if relationship is ASRelationship.PEER or relationship is ASRelationship.SIBLING:
        return RouteClass.PEER
    if relationship is ASRelationship.PROVIDER:
        return RouteClass.PROVIDER
    raise ValueError(f"no relationship between AS{holder} and AS{next_hop}")


def export_allowed(
    relationships: RelationshipTable,
    exporter: ASN,
    importer: ASN,
    exporter_route_class: RouteClass,
) -> bool:
    """Whether ``exporter`` announces a route of the given class to ``importer``.

    Routes to the exporter's own prefixes (``SELF``) and routes learned from
    customers are announced to everyone; peer- and provider-learned routes go
    to customers only.
    """
    if exporter_route_class in (RouteClass.SELF, RouteClass.CUSTOMER):
        return True
    return relationships.is_customer_of(importer, exporter)


def is_valley_free(relationships: RelationshipTable, path: tuple) -> Optional[bool]:
    """Whether an AS path obeys the valley-free property.

    Args:
        relationships: The relationship table.
        path: AS path from source to destination.

    Returns:
        ``True``/``False`` for a checkable path, or ``None`` when a hop pair
        has no recorded relationship (cannot be checked).
    """
    # Phases: 0 = climbing (c2p), 1 = crossed a peering edge, 2 = descending.
    phase = 0
    for previous, current in zip(path, path[1:]):
        relationship = relationships.get(previous, current)
        if relationship is None:
            return None
        if relationship is ASRelationship.PROVIDER:  # uphill
            if phase != 0:
                return False
        elif relationship is ASRelationship.PEER or relationship is ASRelationship.SIBLING:
            if phase >= 1:
                return False
            phase = 1
        elif relationship is ASRelationship.CUSTOMER:  # downhill
            phase = 2
        else:
            return False
    return True
