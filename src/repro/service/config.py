"""Declarative shapes of the campaign service.

A :class:`CampaignConfig` names one recurring measurement campaign --
what it measures (``kind``), how often a cycle fires (``cadence_s``),
how much of the measurement grid each cycle covers
(``rounds_per_cycle``), and how wide the stream fan-out runs.  A
:class:`ServiceConfig` is the whole service: the campaign list plus the
durability/exposition knobs.

Both are frozen dataclasses so
:func:`repro.harness.engine.config_fingerprint` covers every field --
the campaign checkpoint fingerprint is derived from them, which is what
makes "resume against a changed config" structurally impossible (the
checkpoint reads as a miss and the campaign restarts).  CCH001 watches
this file for knobs that silently escape the fingerprint.

``time_scale`` compresses the clock for tests and CI smoke runs: the
paper's 3-hour traceroute cadence at ``time_scale=0.001`` fires every
10.8 s.  It scales *scheduling* only -- measurement grids, RNG draws
and results are completely unaffected, so a compressed run's output is
byte-identical to a real-time run's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.faults.plane import (
    RetryPolicy,
    SupervisionPolicy,
    retry_policy_from_dict,
    supervision_policy_from_dict,
)
from repro.obs.expo import DEFAULT_METRICS_PORT
from repro.stream.mesh import MeshConfig

__all__ = [
    "CAMPAIGN_KINDS",
    "CampaignConfig",
    "ServiceConfig",
    "service_config_from_dict",
]

CAMPAIGN_KINDS = ("trace", "ping", "mesh")
"""Supported campaign kinds: long-term traceroute mesh, short-term
pings (both over the simulated platform), and the synthetic
million-pair mesh."""


@dataclass(frozen=True)
class CampaignConfig:
    """One named recurring campaign.

    ``rounds_per_cycle`` grid rounds are ingested per cycle; the
    campaign finishes when the measurement grid is exhausted (trace/
    ping) or after ``cycles`` cycles (mesh, where the counter-hash grid
    is unbounded).  ``cycles=None`` on a mesh campaign means run until
    drained.
    """

    name: str
    kind: str = "mesh"
    cadence_s: float = 900.0
    rounds_per_cycle: int = 8
    cycles: Optional[int] = None
    shards: int = 1
    queue_units: int = 4
    checkpoint_every: int = 64
    mesh: Optional[MeshConfig] = None
    retry: Optional[RetryPolicy] = None
    """Cycle retry/crash-loop budget; ``None`` uses the supervisor's
    default :class:`~repro.faults.plane.RetryPolicy`.  Part of the
    checkpoint fingerprint (like every campaign knob): changing the
    retry budget restarts the campaign rather than resuming state that
    ran under different failure semantics."""

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in " /{}"):
            raise ValueError(f"invalid campaign name {self.name!r}")
        if self.kind not in CAMPAIGN_KINDS:
            raise ValueError(
                f"unknown campaign kind {self.kind!r}; valid: {CAMPAIGN_KINDS}"
            )
        if self.cadence_s <= 0:
            raise ValueError("cadence_s must be positive")
        if self.rounds_per_cycle < 1:
            raise ValueError("rounds_per_cycle must be positive")
        if self.cycles is not None and self.cycles < 1:
            raise ValueError("cycles must be positive when set")
        if self.shards < 1 or self.queue_units < 1 or self.checkpoint_every < 1:
            raise ValueError("shards/queue_units/checkpoint_every must be positive")


@dataclass(frozen=True)
class ServiceConfig:
    """The whole service: campaigns plus durability and exposition."""

    campaigns: Tuple[CampaignConfig, ...]
    scenario: str = "small"
    seed: int = 0
    checkpoint_dir: str = "service-state"
    time_scale: float = 1.0
    host: str = "127.0.0.1"
    port: int = DEFAULT_METRICS_PORT
    live_interval_s: float = 1.0
    drain_after_s: Optional[float] = None
    """Automatic drain deadline on the monotonic clock (CI smoke runs);
    ``None`` means run until SIGTERM or a ``/drain`` request."""
    drain_grace_s: float = 30.0
    """How long a drain waits for an in-flight cycle before abandoning
    it and marking the campaign degraded (hung-cycle detection).  Scaled
    by ``time_scale`` like every other schedule knob."""
    supervision: Optional[SupervisionPolicy] = None
    """Shard supervision for every campaign's stream fan-out; ``None``
    keeps the unsupervised fail-fast path.  Service-wide (not per
    campaign) and deliberately *outside* the campaign checkpoint
    fingerprint: supervision changes recovery behavior, never results,
    so tightening a timeout must not orphan checkpoints."""

    def __post_init__(self) -> None:
        if not self.campaigns:
            raise ValueError("a service needs at least one campaign")
        names = [campaign.name for campaign in self.campaigns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate campaign names in {names}")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.live_interval_s <= 0:
            raise ValueError("live_interval_s must be positive")
        if self.drain_after_s is not None and self.drain_after_s <= 0:
            raise ValueError("drain_after_s must be positive when set")
        if self.drain_grace_s <= 0:
            raise ValueError("drain_grace_s must be positive")


_CAMPAIGN_FIELDS = {f.name for f in CampaignConfig.__dataclass_fields__.values()}
_SERVICE_FIELDS = {
    f.name for f in ServiceConfig.__dataclass_fields__.values()
} - {"campaigns"}
_MESH_FIELDS = {f.name for f in MeshConfig.__dataclass_fields__.values()}


def service_config_from_dict(payload: Dict[str, object]) -> ServiceConfig:
    """A :class:`ServiceConfig` from a JSON document.

    Unknown keys fail loudly (a typo'd knob must not silently become a
    default); the ``mesh`` sub-document maps onto
    :class:`~repro.stream.mesh.MeshConfig`.
    """
    if not isinstance(payload, dict):
        raise ValueError("service config must be a JSON object")
    campaigns = payload.get("campaigns")
    if not isinstance(campaigns, list):
        raise ValueError("service config needs a 'campaigns' list")
    built = []
    for entry in campaigns:
        if not isinstance(entry, dict):
            raise ValueError("each campaign must be a JSON object")
        unknown = set(entry) - _CAMPAIGN_FIELDS
        if unknown:
            raise ValueError(f"unknown campaign keys: {sorted(unknown)}")
        fields = dict(entry)
        mesh = fields.get("mesh")
        if mesh is not None:
            if not isinstance(mesh, dict):
                raise ValueError("'mesh' must be a JSON object")
            unknown = set(mesh) - _MESH_FIELDS
            if unknown:
                raise ValueError(f"unknown mesh keys: {sorted(unknown)}")
            fields["mesh"] = MeshConfig(**mesh)
        retry = fields.get("retry")
        if retry is not None:
            fields["retry"] = retry_policy_from_dict(retry)
        built.append(CampaignConfig(**fields))
    service = {
        key: value for key, value in payload.items() if key != "campaigns"
    }
    unknown = set(service) - _SERVICE_FIELDS
    if unknown:
        raise ValueError(f"unknown service keys: {sorted(unknown)}")
    supervision = service.get("supervision")
    if supervision is not None:
        service["supervision"] = supervision_policy_from_dict(supervision)
    return ServiceConfig(campaigns=tuple(built), **service)
