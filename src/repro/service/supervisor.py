"""The asyncio campaign supervisor: scheduling, drain, exposition.

One async task per campaign sleeps until the campaign's next fire time,
then runs the (synchronous, possibly sharded) cycle on an executor
thread -- campaigns overlap freely, the event loop stays responsive for
HTTP control requests, and cadences compress uniformly under
``time_scale``.  All scheduling runs on the monotonic clock (DET002:
the service package is wall-clock free), so clock jumps can never
double-fire or starve a campaign.

Shutdown is a *drain*, never an abort: SIGTERM (or ``POST /drain``, or
the configured ``drain_after_s`` deadline) sets every campaign's drain
flag and wakes the sleepers; running cycles stop at the next unit
boundary, checkpoint, and the supervisor exits cleanly with every
worker process joined -- the restart then resumes each campaign from
exactly that boundary, byte-identically.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import signal
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs.expo import MetricsServer
from repro.obs.live import FlightRecorder
from repro.obs.log import get_logger
from repro.service.api import ServiceAPI
from repro.service.campaign import Campaign, driver_for
from repro.service.config import ServiceConfig

__all__ = ["ServiceSupervisor"]

_LOG = get_logger("repro.service.supervisor")


class ServiceSupervisor:
    """Owns every campaign's lifecycle from restore to drain.

    Construction is cheap and synchronous (drivers may build a platform,
    which is the one expensive step); :meth:`run` blocks until every
    campaign finishes or a drain request lands.  Tests drive
    :meth:`run` directly; the CLI adds the live-out flight recorder.
    """

    def __init__(
        self,
        config: ServiceConfig,
        platform=None,
        recorder: Optional[FlightRecorder] = None,
        serve: bool = True,
    ) -> None:
        self.config = config
        longterm_config = shortterm_config = None
        if any(
            campaign.kind in ("trace", "ping") for campaign in config.campaigns
        ):
            from repro.harness.scenarios import get_scenario, scenario_platform

            scenario = get_scenario(config.scenario)
            longterm_config = scenario.longterm_config()
            shortterm_config = scenario.shortterm_config()
            if platform is None:
                platform = scenario_platform(config.scenario, config.seed)
        self.platform = platform
        checkpoint_dir = Path(config.checkpoint_dir)
        self.campaigns: List[Campaign] = [
            Campaign(
                entry,
                driver_for(
                    entry, platform,
                    longterm_config=longterm_config,
                    shortterm_config=shortterm_config,
                ),
                checkpoint_dir,
            )
            for entry in config.campaigns
        ]
        self.recorder = recorder
        self.server: Optional[MetricsServer] = None
        self.api: Optional[ServiceAPI] = None
        self._serve = serve
        self._started_mono: Optional[float] = None
        self._draining = False
        self._drain_async: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, len(self.campaigns)),
            thread_name_prefix="repro-campaign",
        )

    # ------------------------------------------------------------------
    # Control surface (thread-safe: HTTP handlers, signals)
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether a drain has been requested."""
        return self._draining

    def uptime_s(self) -> Optional[float]:
        """Seconds since :meth:`run` started (monotonic)."""
        if self._started_mono is None:
            return None
        return round(time.monotonic() - self._started_mono, 3)

    def campaign(self, name: str) -> Optional[Campaign]:
        """The campaign named ``name``, if any."""
        for campaign in self.campaigns:
            if campaign.config.name == name:
                return campaign
        return None

    def request_drain(self, reason: str = "request") -> None:
        """Stop every campaign at its next unit boundary; idempotent.

        Safe from any thread: flips the campaign flags directly (the
        cycle loops poll them) and wakes the async sleepers through the
        loop's thread-safe call scheduler.
        """
        if self._draining:
            return
        self._draining = True
        _LOG.info("service.drain.requested", reason=reason)
        obs_metrics.counter("service.drains").inc()
        for campaign in self.campaigns:
            campaign.request_drain()
        loop, event = self._loop, self._drain_async
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # loop already closed: nothing left to wake
                pass

    # ------------------------------------------------------------------
    # The async core
    # ------------------------------------------------------------------

    def run(self) -> Dict[str, str]:
        """Restore, schedule, serve, drain; returns campaign outcomes."""
        return asyncio.run(self._main())

    async def _main(self) -> Dict[str, str]:
        self._loop = asyncio.get_running_loop()
        self._drain_async = asyncio.Event()
        self._started_mono = time.monotonic()
        status = obs_live.get_status()
        status.begin_run(
            mode="service",
            scenario=self.config.scenario,
            seed=self.config.seed,
            campaigns=[c.config.name for c in self.campaigns],
        )
        status.set_phase("service")
        for campaign in self.campaigns:
            campaign.restore()
        if self._serve:
            self.server = MetricsServer(
                recorder=self.recorder,
                host=self.config.host,
                port=self.config.port,
            )
            self.api = ServiceAPI(self, self.server)
            self.server.start()
            _LOG.info("service.serving", url=self.server.url)
        self._install_signal_handlers()
        try:
            if self.config.drain_after_s is not None:
                self._loop.call_later(
                    self.config.drain_after_s,
                    self.request_drain,
                    "drain_after_s",
                )
            outcomes = await asyncio.gather(
                *(self._campaign_loop(c) for c in self.campaigns)
            )
        finally:
            self._remove_signal_handlers()
            self._executor.shutdown(wait=True)
            if self.server is not None:
                self.server.close()
        results = {
            campaign.config.name: outcome
            for campaign, outcome in zip(self.campaigns, outcomes)
        }
        _LOG.info("service.stopped", outcomes=results)
        return results

    def _install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, self.request_drain, signal.Signals(signum).name
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or exotic platform: /drain still works

    def _remove_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

    async def _sleep_until(self, deadline_mono: float) -> None:
        """Sleep until the monotonic deadline, or until drain wakes us."""
        delay = deadline_mono - time.monotonic()
        if delay <= 0:
            return
        try:
            await asyncio.wait_for(self._drain_async.wait(), timeout=delay)
        except asyncio.TimeoutError:
            pass

    async def _campaign_loop(self, campaign: Campaign) -> str:
        """Fire cycles at the campaign's cadence until done or drained."""
        name = campaign.config.name
        cadence = campaign.config.cadence_s * self.config.time_scale
        if campaign.done:
            return "done"
        next_fire = time.monotonic()  # first cycle fires immediately
        while True:
            if self._draining:
                return "drained"
            obs_live.get_status().set_campaign(
                name, next_fire_s=round(max(0.0, next_fire - time.monotonic()), 3)
            )
            await self._sleep_until(next_fire)
            if self._draining:
                return "drained"
            fired_at = time.monotonic()
            obs_live.get_status().set_campaign(name, next_fire_s=0.0)
            try:
                outcome = await self._loop.run_in_executor(
                    self._executor, campaign.run_cycle
                )
            except Exception:
                obs_metrics.counter(
                    f"service.cycle_failures{{campaign={name}}}"
                ).inc()
                obs_live.get_status().set_campaign(name, state="failed")
                _LOG.warning("service.campaign.cycle_failed", campaign=name)
                raise
            if outcome in ("finished", "skipped"):
                return "done"
            if outcome == "drained":
                return "drained"
            # Next fire keeps the cadence grid: a slow cycle fires the
            # next one immediately rather than drifting the schedule.
            next_fire = fired_at + cadence
