"""The asyncio campaign supervisor: scheduling, drain, exposition.

One async task per campaign sleeps until the campaign's next fire time,
then runs the (synchronous, possibly sharded) cycle on an executor
thread -- campaigns overlap freely, the event loop stays responsive for
HTTP control requests, and cadences compress uniformly under
``time_scale``.  All scheduling runs on the monotonic clock (DET002:
the service package is wall-clock free), so clock jumps can never
double-fire or starve a campaign.

Shutdown is a *drain*, never an abort: SIGTERM (or ``POST /drain``, or
the configured ``drain_after_s`` deadline) sets every campaign's drain
flag and wakes the sleepers; running cycles stop at the next unit
boundary, checkpoint, and the supervisor exits cleanly with every
worker process joined -- the restart then resumes each campaign from
exactly that boundary, byte-identically.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import signal
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.faults.plane import RetryPolicy, backoff_delay, get_plane
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs.expo import MetricsServer
from repro.obs.live import FlightRecorder
from repro.obs.log import get_logger
from repro.service.api import ServiceAPI
from repro.service.campaign import Campaign, driver_for
from repro.service.config import ServiceConfig

__all__ = ["ServiceSupervisor"]

_LOG = get_logger("repro.service.supervisor")


class ServiceSupervisor:
    """Owns every campaign's lifecycle from restore to drain.

    Construction is cheap and synchronous (drivers may build a platform,
    which is the one expensive step); :meth:`run` blocks until every
    campaign finishes or a drain request lands.  Tests drive
    :meth:`run` directly; the CLI adds the live-out flight recorder.
    """

    def __init__(
        self,
        config: ServiceConfig,
        platform=None,
        recorder: Optional[FlightRecorder] = None,
        serve: bool = True,
    ) -> None:
        self.config = config
        longterm_config = shortterm_config = None
        if any(
            campaign.kind in ("trace", "ping") for campaign in config.campaigns
        ):
            from repro.harness.scenarios import get_scenario, scenario_platform

            scenario = get_scenario(config.scenario)
            longterm_config = scenario.longterm_config()
            shortterm_config = scenario.shortterm_config()
            if platform is None:
                platform = scenario_platform(config.scenario, config.seed)
        self.platform = platform
        checkpoint_dir = Path(config.checkpoint_dir)
        self.campaigns: List[Campaign] = [
            Campaign(
                entry,
                driver_for(
                    entry, platform,
                    longterm_config=longterm_config,
                    shortterm_config=shortterm_config,
                ),
                checkpoint_dir,
                supervision=config.supervision,
            )
            for entry in config.campaigns
        ]
        self.recorder = recorder
        self.server: Optional[MetricsServer] = None
        self.api: Optional[ServiceAPI] = None
        self._serve = serve
        self._started_mono: Optional[float] = None
        self._draining = False
        self._abandoned = False
        """A hung cycle was abandoned on the executor; shutdown must not
        wait for its thread (it may never return)."""
        self._drain_async: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, len(self.campaigns)),
            thread_name_prefix="repro-campaign",
        )

    # ------------------------------------------------------------------
    # Control surface (thread-safe: HTTP handlers, signals)
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether a drain has been requested."""
        return self._draining

    def uptime_s(self) -> Optional[float]:
        """Seconds since :meth:`run` started (monotonic)."""
        if self._started_mono is None:
            return None
        return round(time.monotonic() - self._started_mono, 3)

    def campaign(self, name: str) -> Optional[Campaign]:
        """The campaign named ``name``, if any."""
        for campaign in self.campaigns:
            if campaign.config.name == name:
                return campaign
        return None

    def request_drain(self, reason: str = "request") -> None:
        """Stop every campaign at its next unit boundary; idempotent.

        Safe from any thread: flips the campaign flags directly (the
        cycle loops poll them) and wakes the async sleepers through the
        loop's thread-safe call scheduler.
        """
        if self._draining:
            return
        self._draining = True
        _LOG.info("service.drain.requested", reason=reason)
        obs_metrics.counter("service.drains").inc()
        for campaign in self.campaigns:
            campaign.request_drain()
        loop, event = self._loop, self._drain_async
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # loop already closed: nothing left to wake
                pass

    # ------------------------------------------------------------------
    # The async core
    # ------------------------------------------------------------------

    def run(self) -> Dict[str, str]:
        """Restore, schedule, serve, drain; returns campaign outcomes."""
        return asyncio.run(self._main())

    async def _main(self) -> Dict[str, str]:
        self._loop = asyncio.get_running_loop()
        self._drain_async = asyncio.Event()
        self._started_mono = time.monotonic()
        status = obs_live.get_status()
        status.begin_run(
            mode="service",
            scenario=self.config.scenario,
            seed=self.config.seed,
            campaigns=[c.config.name for c in self.campaigns],
        )
        status.set_phase("service")
        for campaign in self.campaigns:
            campaign.restore()
        if self._serve:
            self.server = MetricsServer(
                recorder=self.recorder,
                host=self.config.host,
                port=self.config.port,
            )
            self.api = ServiceAPI(self, self.server)
            self.server.start()
            _LOG.info("service.serving", url=self.server.url)
        self._install_signal_handlers()
        try:
            if self.config.drain_after_s is not None:
                self._loop.call_later(
                    self.config.drain_after_s,
                    self.request_drain,
                    "drain_after_s",
                )
            outcomes = await asyncio.gather(
                *(self._campaign_loop(c) for c in self.campaigns)
            )
        finally:
            self._remove_signal_handlers()
            # A hung cycle's thread may never return; waiting on it
            # would turn "exit cleanly despite a hung campaign" into a
            # deadlock.  (Python keeps a non-daemon executor thread
            # alive until interpreter exit regardless -- tests unhang
            # their fakes; a real hang is an operator page.)
            self._executor.shutdown(wait=not self._abandoned)
            if self.server is not None:
                self.server.close()
        results = {
            campaign.config.name: outcome
            for campaign, outcome in zip(self.campaigns, outcomes)
        }
        _LOG.info("service.stopped", outcomes=results)
        return results

    def _install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, self.request_drain, signal.Signals(signum).name
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or exotic platform: /drain still works

    def _remove_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

    async def _sleep_until(self, deadline_mono: float) -> None:
        """Sleep until the monotonic deadline, or until drain wakes us."""
        delay = deadline_mono - time.monotonic()
        if delay <= 0:
            return
        try:
            await asyncio.wait_for(self._drain_async.wait(), timeout=delay)
        except asyncio.TimeoutError:
            pass

    async def _await_cycle(self, campaign: Campaign, name: str) -> str:
        """One cycle on the executor; ``__failed__``/``__hung__`` on trouble.

        If a drain lands while the cycle runs, the cycle gets
        ``drain_grace_s`` (time-scaled) to reach its next unit boundary;
        a cycle that never returns -- a hung executor task -- is then
        *abandoned*: the campaign is reported hung and shutdown stops
        waiting for its thread, so the process still exits cleanly.
        """
        future = self._loop.run_in_executor(self._executor, campaign.run_cycle)
        drain_wait = asyncio.ensure_future(self._drain_async.wait())
        try:
            done, _ = await asyncio.wait(
                {future, drain_wait}, return_when=asyncio.FIRST_COMPLETED
            )
            if future not in done:
                grace = self.config.drain_grace_s * self.config.time_scale
                try:
                    return str(
                        await asyncio.wait_for(asyncio.shield(future), grace)
                    )
                except asyncio.TimeoutError:
                    self._abandoned = True
                    _LOG.warning(
                        "service.campaign.cycle_hung",
                        campaign=name,
                        grace_s=grace,
                    )
                    return "__hung__"
                except Exception as exc:
                    _LOG.warning(
                        "service.campaign.cycle_failed",
                        campaign=name,
                        error=repr(exc),
                    )
                    return "__failed__"
            try:
                return str(future.result())
            except Exception as exc:
                _LOG.warning(
                    "service.campaign.cycle_failed",
                    campaign=name,
                    error=repr(exc),
                )
                return "__failed__"
        finally:
            drain_wait.cancel()

    async def _campaign_loop(self, campaign: Campaign) -> str:
        """Fire cycles at the campaign's cadence until done or drained.

        Cycle failures are retried under the campaign's
        :class:`~repro.faults.plane.RetryPolicy` (deterministic
        exponential backoff with hash-jitter); ``max_attempts``
        *consecutive* failures are a crash loop, which parks the
        campaign as ``degraded`` instead of killing the service.  An
        installed fault plane may also skew cadence ticks --
        scheduling only, results unaffected.
        """
        name = campaign.config.name
        cadence = campaign.config.cadence_s * self.config.time_scale
        retry = campaign.config.retry or RetryPolicy()
        plane = get_plane()
        seed = plane.config.seed if plane is not None else 0
        jitter_key = sum(name.encode("utf-8"))
        failures = 0
        if campaign.done:
            return "done"
        next_fire = time.monotonic()  # first cycle fires immediately
        while True:
            if self._draining:
                return "drained"
            obs_live.get_status().set_campaign(
                name, next_fire_s=round(max(0.0, next_fire - time.monotonic()), 3)
            )
            await self._sleep_until(next_fire)
            if self._draining:
                return "drained"
            fired_at = time.monotonic()
            obs_live.get_status().set_campaign(name, next_fire_s=0.0)
            outcome = await self._await_cycle(campaign, name)
            if outcome == "__hung__":
                campaign.mark_degraded("hung-cycle")
                return "degraded"
            if outcome == "__failed__":
                failures += 1
                obs_metrics.counter(
                    f"service.cycle_failures{{campaign={name}}}"
                ).inc()
                if failures >= retry.max_attempts:
                    campaign.mark_degraded(
                        f"crash-loop: {failures} consecutive cycle failures"
                    )
                    return "degraded"
                delay = backoff_delay(
                    retry.backoff_s * self.config.time_scale,
                    retry.backoff_ceiling_s * self.config.time_scale,
                    failures, seed, jitter_key,
                )
                obs_live.get_status().set_campaign(
                    name, state="retrying", failures=failures
                )
                next_fire = time.monotonic() + delay
                continue
            failures = 0
            if outcome in ("finished", "skipped"):
                return "done"
            if outcome == "drained":
                return "drained"
            # Next fire keeps the cadence grid: a slow cycle fires the
            # next one immediately rather than drifting the schedule.
            next_fire = fired_at + cadence
            if plane is not None:
                skew = (
                    plane.cadence_skew_s(name, campaign.cycle)
                    * self.config.time_scale
                )
                if skew:
                    obs_metrics.counter("faults.injected").inc()
                    obs_metrics.counter("faults.injected{kind=skew}").inc()
                    next_fire = max(fired_at, next_fire + skew)
