"""One named campaign as a durable, resumable unit of work.

A campaign is a *driver* (how to build cycle ``c``'s source and how to
summarize the operator at the end) plus a :class:`Campaign` runtime
that owns the incremental operator across cycles, gates every unit on
pause/drain, checkpoints at unit boundaries, and writes the final
results as canonical JSON.

Determinism contract: cycle ``c`` of any campaign feeds the operator
exactly the grid rounds ``[c*W, (c+1)*W)`` -- the platform drivers cut
them out of the full per-pair timelines with
:class:`~repro.stream.source.WindowedSource` (identical RNG draws to
the batch pipeline), the mesh driver generates them from a stateless
counter hash.  The incremental operators carry their cross-cycle state
internally, so the concatenation of all cycles is bit-identical to one
uninterrupted feed -- and so is any kill/restart replay from a
checkpoint, which is the service's durability story.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.datasets.longterm import LongTermConfig
from repro.datasets.shortterm import ShortTermConfig
from repro.faults.completeness import DataCompleteness, MissingUnit
from repro.faults.plane import SupervisionPolicy
from repro.measurement.platform import MeasurementPlatform
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.service.checkpoint import CampaignCheckpointStore, campaign_fingerprint
from repro.service.config import CampaignConfig
from repro.stream.mesh import (
    MeshConfig,
    MeshStatsOperator,
    SyntheticMeshSource,
    mesh_results,
)
from repro.stream.operators import CongestionWindowOperator, PathStatsOperator
from repro.stream.source import (
    LongTermTraceSource,
    PingSource,
    ShardedSource,
    StreamUnit,
    WindowedSource,
)

__all__ = ["Campaign", "driver_for", "MeshDriver", "TraceDriver", "PingDriver"]

_LOG = get_logger("repro.service.campaign")


class MeshDriver:
    """Cycles over the synthetic mesh (unbounded grid, O(1) state)."""

    kind = "mesh"

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self.mesh = config.mesh if config.mesh is not None else MeshConfig()
        self.total_cycles: Optional[int] = config.cycles

    def fingerprint_parts(self) -> tuple:
        return (self.config,)

    def source_for_cycle(self, cycle: int) -> SyntheticMeshSource:
        return SyntheticMeshSource(self.mesh, cycle=cycle)

    def make_operator(self) -> MeshStatsOperator:
        return MeshStatsOperator()

    def results(
        self, operator: MeshStatsOperator, cycles_done: int
    ) -> Dict[str, object]:
        return mesh_results(operator, cycles_done)


class TraceDriver:
    """Cycles over the long-term traceroute mesh (the 3-hour campaign)."""

    kind = "trace"

    def __init__(
        self,
        config: CampaignConfig,
        platform: MeasurementPlatform,
        dataset_config: Optional[LongTermConfig] = None,
    ) -> None:
        self.config = config
        self.platform = platform
        self.dataset_config = dataset_config or LongTermConfig()
        self.source = LongTermTraceSource(platform, self.dataset_config)
        self.grid = self.source.grid
        window = config.rounds_per_cycle
        horizon = -(-self.grid.rounds // window)
        self.total_cycles: Optional[int] = (
            min(horizon, config.cycles) if config.cycles is not None else horizon
        )

    def fingerprint_parts(self) -> tuple:
        return (self.config, self.platform.config, self.dataset_config)

    def source_for_cycle(self, cycle: int) -> WindowedSource:
        window = self.config.rounds_per_cycle
        low = cycle * window
        return WindowedSource(self.source, low, min(low + window, self.grid.rounds))

    def make_operator(self) -> PathStatsOperator:
        return PathStatsOperator(period_hours=self.grid.period_hours)

    def results(
        self, operator: PathStatsOperator, cycles_done: int
    ) -> Dict[str, object]:
        summaries = operator.finalize()
        by_version: Dict[int, Dict[str, float]] = {}
        for key, summary in summaries.items():
            entry = by_version.setdefault(
                key[2],
                {"pairs": 0, "changes": 0, "unique_paths": 0, "stable_pairs": 0},
            )
            entry["pairs"] += 1
            entry["changes"] += summary.changes
            entry["unique_paths"] += summary.unique_paths
            if (
                summary.popular_prevalence is not None
                and summary.popular_prevalence >= 0.99
            ):
                entry["stable_pairs"] += 1
        return {
            "cycles": int(cycles_done),
            "rounds": int(min(cycles_done * self.config.rounds_per_cycle,
                              self.grid.rounds)),
            "versions": {
                str(version): by_version[version] for version in sorted(by_version)
            },
        }


class PingDriver:
    """Cycles over the short-term ping campaign (the 15-minute cadence)."""

    kind = "ping"

    def __init__(
        self,
        config: CampaignConfig,
        platform: MeasurementPlatform,
        dataset_config: Optional[ShortTermConfig] = None,
    ) -> None:
        self.config = config
        self.platform = platform
        self.dataset_config = dataset_config or ShortTermConfig()
        self.source = PingSource(platform, self.dataset_config)
        self.grid = self.source.grid
        window = config.rounds_per_cycle
        horizon = -(-self.grid.rounds // window)
        self.total_cycles: Optional[int] = (
            min(horizon, config.cycles) if config.cycles is not None else horizon
        )

    def fingerprint_parts(self) -> tuple:
        return (self.config, self.platform.config, self.dataset_config)

    def source_for_cycle(self, cycle: int) -> WindowedSource:
        window = self.config.rounds_per_cycle
        low = cycle * window
        return WindowedSource(self.source, low, min(low + window, self.grid.rounds))

    def make_operator(self) -> CongestionWindowOperator:
        # Whole-campaign window: verdicts match the batch detector's.
        return CongestionWindowOperator(
            period_hours=self.grid.period_hours, window_rounds=self.grid.rounds
        )

    def results(
        self, operator: CongestionWindowOperator, cycles_done: int
    ) -> Dict[str, object]:
        verdicts = operator.verdicts()
        versions: Dict[str, object] = {}
        for version in (4, 6):
            stats = operator.population_stats(verdicts, version)
            if stats.pairs:
                versions[str(version)] = {
                    "pairs": stats.pairs,
                    "spread_exceeds": stats.spread_exceeds,
                    "congested": stats.congested,
                }
        return {
            "cycles": int(cycles_done),
            "rounds": int(min(cycles_done * self.config.rounds_per_cycle,
                              self.grid.rounds)),
            "versions": versions,
        }


def driver_for(
    config: CampaignConfig,
    platform: Optional[MeasurementPlatform] = None,
    longterm_config: Optional[LongTermConfig] = None,
    shortterm_config: Optional[ShortTermConfig] = None,
):
    """The driver matching a campaign config's kind.

    ``longterm_config``/``shortterm_config`` shape the platform
    campaigns' measurement grids (the supervisor passes the scenario's;
    defaults are paper scale and need a platform window to match).
    """
    if config.kind == "mesh":
        return MeshDriver(config)
    if platform is None:
        raise ValueError(
            f"campaign {config.name!r} (kind {config.kind!r}) needs a platform"
        )
    if config.kind == "trace":
        return TraceDriver(config, platform, longterm_config)
    if config.kind == "ping":
        return PingDriver(config, platform, shortterm_config)
    raise ValueError(f"unknown campaign kind {config.kind!r}")


class Campaign:
    """The durable runtime of one named campaign.

    Threading model: ``run_cycle`` executes on a supervisor executor
    thread; ``pause``/``resume``/``request_drain`` are called from HTTP
    handler threads and the signal path, and only touch
    :class:`threading.Event` flags that the cycle loop polls at unit
    boundaries.  The campaign never blocks mid-unit: pause stalls the
    consumer (bounded shard queues then stall the producers -- the
    backpressure made visible in ``/metrics``), drain checkpoints at
    the boundary and returns.
    """

    def __init__(
        self,
        config: CampaignConfig,
        driver,
        checkpoint_dir: Path,
        supervision: Optional[SupervisionPolicy] = None,
    ) -> None:
        self.config = config
        self.driver = driver
        self.supervision = supervision
        self.completeness = DataCompleteness()
        self.fingerprint = campaign_fingerprint(*driver.fingerprint_parts())
        self.store = CampaignCheckpointStore(
            checkpoint_dir, config.name, self.fingerprint
        )
        self.operator = driver.make_operator()
        self.cycle = 0
        self.units_done = 0
        self.results: Optional[Dict[str, object]] = None
        self.state = "idle"
        self._pause = threading.Event()
        self._pause.set()  # set = running allowed
        self._drain = threading.Event()

    # ------------------------------------------------------------------
    # Control surface (HTTP handler / signal threads)
    # ------------------------------------------------------------------

    @property
    def paused(self) -> bool:
        """Whether the pause gate is closed."""
        return not self._pause.is_set()

    @property
    def done(self) -> bool:
        """Whether the campaign has produced its final results."""
        return self.results is not None

    def pause(self) -> None:
        """Close the unit gate; the running cycle stalls at the next unit."""
        self._pause.clear()
        self._set_board(state="paused" if self.state != "done" else "done")
        _LOG.info("service.campaign.paused", campaign=self.config.name)

    def resume(self) -> None:
        """Reopen the unit gate."""
        self._pause.set()
        if self.state == "paused":
            self._set_board(state="idle")
        _LOG.info("service.campaign.resumed", campaign=self.config.name)

    def request_drain(self) -> None:
        """Ask the cycle loop to checkpoint and stop at the next boundary."""
        self._drain.set()

    def mark_degraded(self, reason: str) -> None:
        """Park the campaign: crash-looping or hung, but not fatal.

        A degraded campaign stops being scheduled; its state (and the
        reason) is visible via ``GET /campaigns`` and ``top``, and the
        rest of the service keeps running.
        """
        obs_metrics.counter("campaign.degraded").inc()
        obs_metrics.counter(
            f"campaign.degraded{{campaign={self.config.name}}}"
        ).inc()
        self._set_board(state="degraded", reason=reason)
        _LOG.warning(
            "service.campaign.degraded",
            campaign=self.config.name,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def restore(self) -> bool:
        """Adopt the last checkpoint if one matches; ``True`` if resumed."""
        payload = self.store.load()
        if payload is None:
            self._set_board(state="idle", cycle=0, units_done=0)
            return False
        self.cycle = int(payload["cycle"])
        self.units_done = int(payload["units_done"])
        self.operator = payload["operator"]
        self.completeness.adopt(payload.get("completeness"))
        results = payload.get("results")
        if results is not None:
            self.results = results
            self.state = "done"
        self._set_board(
            state="done" if self.done else "idle",
            cycle=self.cycle,
            units_done=self.units_done,
        )
        _LOG.info(
            "service.campaign.resumed_from_checkpoint",
            campaign=self.config.name,
            cycle=self.cycle,
            units_done=self.units_done,
            done=self.done,
        )
        return True

    @property
    def results_path(self) -> Path:
        """Where the finished campaign's canonical JSON results land."""
        return self.store.directory / f"results-{self.config.name}.json"

    def _write_results(self) -> None:
        self.store.directory.mkdir(parents=True, exist_ok=True)
        body = json.dumps(self.results, sort_keys=True, indent=2) + "\n"
        self.results_path.write_text(body)

    # ------------------------------------------------------------------
    # The cycle loop (executor thread)
    # ------------------------------------------------------------------

    def _set_board(self, **fields: object) -> None:
        if "state" in fields:
            self.state = str(fields["state"])
        obs_live.get_status().set_campaign(
            self.config.name, fingerprint=self.fingerprint, **fields
        )

    def _wait_gate(self) -> bool:
        """Block while paused; ``False`` when drain should win instead."""
        while not self._pause.is_set():
            if self._drain.is_set():
                return False
            self._pause.wait(0.05)
        return not self._drain.is_set()

    def _feed(self, unit: StreamUnit) -> None:
        self.operator.start_unit(unit.key, unit.meta)
        if unit.columns is not None and hasattr(self.operator, "observe_columns"):
            if len(unit.columns):
                self.operator.observe_columns(unit.columns)
        else:
            for record in unit.iter_records():
                self.operator.observe(record)

    def _units(self, source) -> Iterator[StreamUnit]:
        if self.supervision is not None:
            # Supervised runs always fan out (even one shard forks), so
            # a crash kills a worker, never the campaign.  The offset
            # view maps this cycle's unit indices into the campaign-wide
            # range (cycle sources all have the same length).
            sharded = ShardedSource(
                source,
                max(1, self.config.shards),
                self.config.queue_units,
                supervision=self.supervision,
                completeness=self.completeness.offset_view(
                    self.cycle * len(source)
                ),
            )
            return sharded.iter_from(self.units_done)
        if self.config.shards > 1:
            sharded = ShardedSource(
                source, self.config.shards, self.config.queue_units
            )
            return sharded.iter_from(self.units_done)
        return (
            source.unit_at(index)
            for index in range(self.units_done, len(source))
        )

    def _coverage_fields(self) -> Dict[str, object]:
        """Board fields surfacing an incomplete campaign's coverage."""
        if self.completeness.complete:
            return {}
        return {
            "coverage": round(self.completeness.coverage(), 6),
            "units_missing": self.completeness.missing_count,
        }

    def run_cycle(self) -> str:
        """Ingest one cycle; returns ``completed|finished|drained|skipped``.

        Resumes from ``self.units_done`` within the cycle (non-zero only
        right after a mid-cycle restore), checkpoints every
        ``checkpoint_every`` units and always at the drain boundary.
        """
        if self.done:
            return "skipped"
        name = self.config.name
        source = self.driver.source_for_cycle(self.cycle)
        total_units = len(source)
        units_counter = obs_metrics.counter(f"service.units{{campaign={name}}}")
        records_counter = obs_metrics.counter(f"service.records{{campaign={name}}}")
        missing_counter = obs_metrics.counter(
            f"service.units_missing{{campaign={name}}}"
        )
        self._set_board(
            state="running",
            cycle=self.cycle,
            units_done=self.units_done,
            units_total=total_units,
        )
        iterator = self._units(source)
        try:
            while True:
                if not self._wait_gate():
                    self.store.save(
                        self.cycle, self.units_done, self.operator,
                        completeness=self.completeness.state(),
                    )
                    self._set_board(
                        state="drained", units_done=self.units_done,
                        **self._coverage_fields(),
                    )
                    _LOG.info(
                        "service.campaign.drained",
                        campaign=name,
                        cycle=self.cycle,
                        units_done=self.units_done,
                    )
                    return "drained"
                try:
                    unit = next(iterator)
                except StopIteration:
                    break
                if isinstance(unit, MissingUnit):
                    # A quarantined shard's slot: accounted by the
                    # completeness accountant, counted here, and the
                    # unit offset still advances so checkpoint/resume
                    # indices stay aligned with unit indices.
                    missing_counter.inc()
                else:
                    self._feed(unit)
                    self.completeness.deliver(
                        self.cycle * total_units + self.units_done
                    )
                    units_counter.inc()
                    records_counter.inc(unit.record_count)
                self.units_done += 1
                if (
                    self.units_done % self.config.checkpoint_every == 0
                    and self.units_done < total_units
                ):
                    self.store.save(
                        self.cycle, self.units_done, self.operator,
                        completeness=self.completeness.state(),
                    )
                    self._set_board(
                        units_done=self.units_done, **self._coverage_fields()
                    )
        finally:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()  # drains shard workers deterministically

        self.cycle += 1
        self.units_done = 0
        obs_metrics.counter(f"service.cycles{{campaign={name}}}").inc()
        total = self.driver.total_cycles
        if total is not None and self.cycle >= total:
            self.results = self.driver.results(self.operator, self.cycle)
            # Every finished campaign reports its coverage -- 1.0 with
            # an empty missing list on a clean (or fully recovered) run,
            # so a healed faulty run's results are byte-identical to the
            # fault-free run's, and the deficit is exact otherwise.
            self.results["completeness"] = self.completeness.report()
            self.store.save(
                self.cycle, 0, self.operator, results=self.results,
                completeness=self.completeness.state(),
            )
            self._write_results()
            self._set_board(
                state="done", cycle=self.cycle, units_done=0,
                **self._coverage_fields(),
            )
            _LOG.info(
                "service.campaign.finished", campaign=name, cycles=self.cycle
            )
            return "finished"
        self.store.save(
            self.cycle, 0, self.operator,
            completeness=self.completeness.state(),
        )
        self._set_board(
            state="idle", cycle=self.cycle, units_done=0,
            **self._coverage_fields(),
        )
        return "completed"
