"""Durable campaign snapshots: one fingerprint-keyed file per campaign.

The service's durability contract in one sentence: **a killed service,
restarted against the same config, resumes every campaign from its last
checkpoint and finishes with byte-identical results.**  This module is
the mechanism -- the same atomic temp-file-and-rename pickle store as
:mod:`repro.stream.checkpoint`, but keyed per campaign and carrying the
campaign's cycle position plus its incremental operator wholesale.

The fingerprint covers the :class:`~repro.service.config.CampaignConfig`
(and, for platform campaigns, the platform config) together with
:data:`CAMPAIGN_CHECKPOINT_SCHEMA`; any config or layout change turns
old snapshots into clean misses, never wrong resumes.  SCH010 pins the
payload's field set against ``schema_snapshot.json``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.faults.plane import get_plane
from repro.harness.engine import config_fingerprint
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.stream.snapshot import (
    SnapshotCorrupt,
    corrupt_file,
    fallback_path,
    reap_stale_temps,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "CAMPAIGN_CHECKPOINT_SCHEMA",
    "campaign_fingerprint",
    "CampaignCheckpointStore",
]

CAMPAIGN_CHECKPOINT_SCHEMA = 2
"""Bump when the pickled campaign snapshot changes shape.

Version 2: snapshots moved to the checksummed, generation-rotated
framing of :mod:`repro.stream.snapshot`, and the payload carries the
campaign's :class:`~repro.faults.completeness.DataCompleteness` state
so a resumed degraded campaign still reports its exact deficit.

Part of the checkpoint fingerprint surface (CCH001's contract): bumping
it orphans every existing snapshot as a schema mismatch instead of
letting a new service version resume state it no longer understands.
"""

_LOG = get_logger("repro.service.checkpoint")


def campaign_fingerprint(*parts: object) -> str:
    """Fingerprint of everything one campaign's resume depends on.

    Callers pass the campaign config and whatever the driver measures
    against (the platform config for trace/ping, nothing extra for the
    self-describing mesh); the schema version is mixed in here.
    """
    return config_fingerprint(
        "campaign-checkpoint", CAMPAIGN_CHECKPOINT_SCHEMA, *parts
    )


class CampaignCheckpointStore:
    """Atomic on-disk snapshots of one campaign's progress.

    Writes go to a temp file in the same directory followed by an
    atomic rename, so a SIGKILL mid-save leaves the previous snapshot
    intact and a resume never observes a torn file.
    """

    def __init__(
        self, directory: Union[str, Path], name: str, fingerprint: str
    ) -> None:
        self.directory = Path(directory)
        self.name = name
        self.fingerprint = fingerprint
        self._saves = 0
        reaped = reap_stale_temps(
            self.directory, f"campaign-{name}-{fingerprint}"
        )
        if reaped:
            obs_metrics.counter(
                f"service.checkpoint.temps_reaped{{campaign={name}}}"
            ).inc(len(reaped))
            _LOG.info(
                "service.checkpoint.temps_reaped",
                campaign=name,
                count=len(reaped),
                paths=",".join(p.name for p in reaped),
            )

    @property
    def path(self) -> Path:
        """Where this campaign's snapshot lives."""
        return self.directory / f"campaign-{self.name}-{self.fingerprint}.ckpt"

    def save(
        self,
        cycle: int,
        units_done: int,
        operator_state: object,
        results: Optional[Dict[str, object]] = None,
        completeness: Optional[Dict[str, object]] = None,
    ) -> None:
        """Snapshot the campaign mid-cycle (or finished, with results).

        ``cycle`` is the cycle currently being ingested, ``units_done``
        how many of its units the operator has fully consumed;
        ``results`` is only present on the final snapshot of a finished
        campaign (the restart then re-serves them without re-ingesting).
        ``completeness`` carries the campaign's delivered/missing
        accounting so a degraded campaign's deficit survives restarts.
        """
        started = time.perf_counter()
        payload = {
            "schema": CAMPAIGN_CHECKPOINT_SCHEMA,
            "fingerprint": self.fingerprint,
            "campaign": self.name,
            "cycle": int(cycle),
            "units_done": int(units_done),
            "operator": operator_state,
            "results": results,
            "completeness": completeness,
        }
        write_snapshot(self.path, payload)
        plane = get_plane()
        if plane is not None and plane.corrupt(
            f"campaign-{self.name}", self._saves
        ):
            obs_metrics.counter("faults.injected").inc()
            obs_metrics.counter("faults.injected{kind=corrupt}").inc()
            _LOG.warning(
                "faults.injected", kind="corrupt",
                store=f"campaign-{self.name}", save=self._saves,
            )
            corrupt_file(self.path)
        self._saves += 1
        elapsed = time.perf_counter() - started
        obs_metrics.counter(
            f"service.checkpoint.saves{{campaign={self.name}}}"
        ).inc()
        obs_metrics.histogram("service.checkpoint_seconds").observe(elapsed)
        obs_live.get_status().set_campaign(
            self.name,
            fingerprint=self.fingerprint,
            cycle=int(cycle),
            units_done=int(units_done),
        )
        _LOG.debug(
            "service.checkpoint.saved",
            campaign=self.name,
            cycle=cycle,
            units_done=units_done,
            seconds=round(elapsed, 6),
        )

    def load(self) -> Optional[Dict[str, object]]:
        """The snapshot, or ``None`` when absent, corrupt, or mismatched.

        A corrupt or torn primary falls back to the previous generation
        (``.1``); replaying the few extra units from the older resume
        point is bit-identical, so recovery is always safe.
        """
        payload = None
        primary_corrupt = False
        try:
            payload = read_snapshot(self.path)
        except FileNotFoundError:
            pass
        except SnapshotCorrupt:
            primary_corrupt = True
            obs_metrics.counter("service.checkpoint.corrupt").inc()
            _LOG.warning("service.checkpoint.corrupt", path=str(self.path))
        if payload is None:
            fallback = fallback_path(self.path)
            try:
                payload = read_snapshot(fallback)
            except FileNotFoundError:
                return None
            except SnapshotCorrupt:
                if primary_corrupt:
                    _LOG.warning(
                        "service.checkpoint.fallback_corrupt",
                        path=str(fallback),
                    )
                return None
            obs_metrics.counter(
                f"service.checkpoint.recovered{{campaign={self.name}}}"
            ).inc()
            _LOG.warning(
                "service.checkpoint.recovered",
                campaign=self.name,
                path=str(fallback),
            )
        if not isinstance(payload, dict):
            obs_metrics.counter("service.checkpoint.corrupt").inc()
            return None
        if payload.get("schema") != CAMPAIGN_CHECKPOINT_SCHEMA:
            obs_metrics.counter("service.checkpoint.schema_mismatch").inc()
            _LOG.warning(
                "service.checkpoint.schema_mismatch",
                found=payload.get("schema"),
                expected=CAMPAIGN_CHECKPOINT_SCHEMA,
            )
            return None
        if payload.get("fingerprint") != self.fingerprint:
            obs_metrics.counter("service.checkpoint.fingerprint_mismatch").inc()
            return None
        obs_metrics.counter(
            f"service.checkpoint.loads{{campaign={self.name}}}"
        ).inc()
        return payload

    def clear(self) -> None:
        """Remove the snapshot, its fallback generation, and any temps."""
        for stale in (self.path, fallback_path(self.path)):
            try:
                stale.unlink()
            except FileNotFoundError:
                pass
        reap_stale_temps(
            self.directory, f"campaign-{self.name}-{self.fingerprint}"
        )
