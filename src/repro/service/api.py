"""The service's HTTP control surface, mounted on the metrics server.

Extends :class:`repro.obs.expo.MetricsServer` (which already serves
``/metrics``, ``/status``, ``/health``) with the campaign routes:

- ``GET /campaigns`` -- the schema-versioned service document: one row
  per campaign (state, cycle, ingest progress, next-fire countdown,
  checkpoint fingerprint), plus drain state and uptime.  SCH010 pins
  its top-level field set.
- ``POST /campaigns/<name>/pause`` / ``.../resume`` -- close/open one
  campaign's unit gate (the running cycle stalls at the next unit
  boundary; bounded shard queues then stall the producers, which is the
  backpressure you can watch in ``/metrics``).
- ``POST /drain`` -- graceful whole-service shutdown: every campaign
  checkpoints at its next unit boundary and the supervisor exits.

Handlers run on the HTTP server's pool threads and follow its
fork-guard discipline for any registry/status reads.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

from repro.obs.expo import MetricsServer
from repro.obs.live import fork_guard, get_status
from repro.obs.log import get_logger

__all__ = ["CAMPAIGNS_SCHEMA", "ServiceAPI"]

CAMPAIGNS_SCHEMA = 1
"""Bump when the ``/campaigns`` JSON document changes shape."""

_LOG = get_logger("repro.service.api")


class ServiceAPI:
    """Mounts the campaign control routes onto a metrics server."""

    def __init__(self, supervisor, server: MetricsServer) -> None:
        self.supervisor = supervisor
        self.server = server
        server.add_route("GET", "/campaigns", self._route_campaigns)
        server.add_route("POST", "/drain", self._route_drain)
        for campaign in supervisor.campaigns:
            name = campaign.config.name
            server.add_route(
                "POST",
                f"/campaigns/{name}/pause",
                lambda c=campaign: self._route_pause(c),
            )
            server.add_route(
                "POST",
                f"/campaigns/{name}/resume",
                lambda c=campaign: self._route_resume(c),
            )

    # ------------------------------------------------------------------
    # Payloads
    # ------------------------------------------------------------------

    def campaigns_payload(self) -> Dict[str, object]:
        """The ``/campaigns`` document (board rows + service header)."""
        board = {
            row["name"]: row for row in get_status().as_dict()["campaigns"]
        }
        rows = []
        for campaign in self.supervisor.campaigns:
            name = campaign.config.name
            row = dict(board.get(name, {}))
            row.update(
                name=name,
                kind=campaign.config.kind,
                state=campaign.state,
                paused=campaign.paused,
                cadence_s=campaign.config.cadence_s,
                shards=campaign.config.shards,
                total_cycles=campaign.driver.total_cycles,
                fingerprint=campaign.fingerprint,
            )
            rows.append(row)
        payload = {
            "schema": CAMPAIGNS_SCHEMA,
            "campaigns": rows,
            "draining": self.supervisor.draining,
            "time_scale": self.supervisor.config.time_scale,
            "uptime_s": self.supervisor.uptime_s(),
        }
        return payload

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    @staticmethod
    def _json(code: int, payload: Dict[str, object]) -> Tuple[int, str, str]:
        body = json.dumps(payload, indent=2, default=str) + "\n"
        return code, "application/json", body

    def _route_campaigns(self) -> Tuple[int, str, str]:
        with fork_guard():
            payload = self.campaigns_payload()
        return self._json(200, payload)

    def _route_pause(self, campaign) -> Tuple[int, str, str]:
        with fork_guard():
            campaign.pause()
        _LOG.info("service.api.pause", campaign=campaign.config.name)
        return self._json(
            200, {"campaign": campaign.config.name, "paused": True}
        )

    def _route_resume(self, campaign) -> Tuple[int, str, str]:
        with fork_guard():
            campaign.resume()
        _LOG.info("service.api.resume", campaign=campaign.config.name)
        return self._json(
            200, {"campaign": campaign.config.name, "paused": False}
        )

    def _route_drain(self) -> Tuple[int, str, str]:
        self.supervisor.request_drain("http")
        return self._json(202, {"draining": True})
