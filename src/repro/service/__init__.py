"""The always-on measurement campaign service.

The paper's platform ran a 16-month always-on campaign: full-mesh
traceroutes every 3 hours, pings every 15 minutes, continuously, with
the analyses consuming whatever had been collected so far.  This
package is that operational layer for the reproduction:

- :mod:`repro.service.config` -- declarative campaign + service shapes
  (name, kind, cadence, shard fan-out, cycle horizon).
- :mod:`repro.service.campaign` -- one named campaign as a durable unit
  of work: drivers build each cycle's windowed source, the incremental
  operators accumulate across cycles, and the versioned checkpoint
  store makes kill/restart resume byte-identical.
- :mod:`repro.service.supervisor` -- the asyncio scheduler that owns
  every campaign's fire times, runs cycles on executor threads over the
  sharded stream sources, and drains cleanly on SIGTERM.
- :mod:`repro.service.api` -- the ``/campaigns`` + pause/resume/drain
  control routes mounted on the :class:`repro.obs.expo.MetricsServer`.
- :mod:`repro.service.checkpoint` -- fingerprint-keyed atomic campaign
  snapshots (schema-versioned, SCH010-guarded).

Entry point: ``python -m repro service run --config service.json``.
"""

from repro.service.api import CAMPAIGNS_SCHEMA, ServiceAPI
from repro.service.campaign import Campaign, driver_for
from repro.service.checkpoint import (
    CAMPAIGN_CHECKPOINT_SCHEMA,
    CampaignCheckpointStore,
    campaign_fingerprint,
)
from repro.service.config import CampaignConfig, ServiceConfig, service_config_from_dict
from repro.service.supervisor import ServiceSupervisor

__all__ = [
    "CAMPAIGNS_SCHEMA",
    "CAMPAIGN_CHECKPOINT_SCHEMA",
    "Campaign",
    "CampaignCheckpointStore",
    "CampaignConfig",
    "ServiceAPI",
    "ServiceConfig",
    "ServiceSupervisor",
    "campaign_fingerprint",
    "driver_for",
    "service_config_from_dict",
]
