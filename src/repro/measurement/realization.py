"""Path realization: from an AS path to the concrete probe path.

Given a source server, a destination server and an AS-level path between
their host ASes, :func:`realize_path` reconstructs what a traceroute would
traverse:

- which interdomain link instance carries each AS crossing (chosen for
  forward geographic progress, deterministically),
- the intra-AS hops between a network's ingress and egress cities,
- the address each hop answers with (ingress-interface semantics: crossing
  from X into Y shows Y's interface on the shared subnet),
- the BGP-mapped ASN of each hop address versus the ground-truth owner,
- the observed AS path after the paper's imputation rule (Section 4.1:
  fill a missing hop only when both known sides agree), with ``UNKNOWN_ASN``
  tokens where imputation fails.

The realization also carries everything the RTT model needs: per-segment
great-circle distances and stable segment keys that congestion processes
attach to.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.net.asn import ASN
from repro.net.geo import GeoLocation
from repro.net.ip import IPAddress, IPVersion
from repro.topology.addressing import AddressPlan
from repro.topology.cdn import Server
from repro.topology.generator import ASGraph
from repro.topology.routers import InterdomainLink, RouterTopology

__all__ = [
    "UNKNOWN_ASN",
    "SegmentKey",
    "HopSpec",
    "PathRealization",
    "realize_path",
    "observed_as_path",
    "segment_seed",
]

UNKNOWN_ASN: ASN = -1
"""Token for an AS-path position that could not be mapped or imputed."""

# A segment key identifies the piece of infrastructure a probe traverses to
# reach a hop; congestion processes attach to these keys, so paths sharing
# infrastructure share congestion:
#   ("x", link_id)                      -- an interdomain link instance
#   ("i", asn, city_a, city_b)          -- an intra-AS segment (cities sorted)
#   ("h", asn, city)                    -- the host/LAN segment at an endpoint
SegmentKey = Tuple


@dataclass(frozen=True)
class HopSpec:
    """One hop of a realized path.

    Attributes:
        address: The address the hop answers probes with (``None`` only for
            hops that can never answer; not produced by the current builder).
        owner: Ground-truth operator of the responding router.
        mapped_asn: Origin AS of the hop address per BGP (``None`` when the
            address is unannounced).
        city: Hop location.
        distance_km: Great-circle distance from the previous hop.
        segment_key: Key of the segment arriving at this hop.
        respond_probability: Chance the hop answers a probe.
        is_destination: Whether this hop is the destination server itself.
    """

    address: IPAddress
    owner: ASN
    mapped_asn: Optional[ASN]
    city: GeoLocation
    distance_km: float
    segment_key: SegmentKey
    respond_probability: float
    is_destination: bool = False


@dataclass(frozen=True)
class PathRealization:
    """A fully expanded probe path between two servers for one protocol.

    Attributes:
        src_server_id / dst_server_id: Endpoint servers.
        version: IP version of the probes.
        as_path: Ground-truth AS-level path (host AS to host AS).
        hops: The hop sequence, source gateway first, destination last.
        observed_path_complete: The AS path an analyst reconstructs when all
            hops respond (after mapping + imputation + collapsing).
        load_balanced: Whether the path crosses a per-flow load-balanced
            segment (drives classic-traceroute loop artifacts).
    """

    src_server_id: int
    dst_server_id: int
    version: IPVersion
    as_path: Tuple[ASN, ...]
    hops: Tuple[HopSpec, ...]
    observed_path_complete: Tuple[ASN, ...]
    load_balanced: bool

    @property
    def segment_keys(self) -> Tuple[SegmentKey, ...]:
        """Segment key per hop, in path order."""
        return tuple(hop.segment_key for hop in self.hops)

    def observed_path_with_miss(self, missing_hop: int) -> Tuple[ASN, ...]:
        """Observed AS path when ``missing_hop`` does not respond."""
        mapped = [hop.mapped_asn for hop in self.hops]
        mapped[missing_hop] = None
        return observed_as_path(self.src_asn, mapped)

    @property
    def src_asn(self) -> ASN:
        """Host AS of the source server."""
        return self.as_path[0]

    @property
    def dst_asn(self) -> ASN:
        """Host AS of the destination server."""
        return self.as_path[-1]


def observed_as_path(src_asn: ASN, mapped_hops: Sequence[Optional[ASN]]) -> Tuple[ASN, ...]:
    """Reconstruct the AS path an analyst derives from hop mappings.

    Applies the paper's rule: a hop with no mapping (unresponsive or
    unannounced address) is imputed only when the nearest known ASNs on
    both sides agree; otherwise it becomes an :data:`UNKNOWN_ASN` token.
    Consecutive duplicates then collapse into single AS-path entries, and
    consecutive unknown tokens collapse into one.

    Args:
        src_asn: The source's host AS (known from the vantage point itself).
        mapped_hops: BGP-mapped ASN per responding hop, ``None`` for hops
            with no usable mapping.
    """
    sequence: List[Optional[ASN]] = [src_asn] + list(mapped_hops)

    # Impute interior runs of None bounded by the same ASN on both sides.
    result: List[Optional[ASN]] = list(sequence)
    index = 0
    while index < len(result):
        if result[index] is not None:
            index += 1
            continue
        run_start = index
        while index < len(result) and result[index] is None:
            index += 1
        left = result[run_start - 1] if run_start > 0 else None
        right = result[index] if index < len(result) else None
        if left is not None and left == right:
            for position in range(run_start, index):
                result[position] = left

    collapsed: List[ASN] = []
    for entry in result:
        token = UNKNOWN_ASN if entry is None else entry
        if not collapsed or collapsed[-1] != token:
            collapsed.append(token)
    return tuple(collapsed)


def segment_seed(key: SegmentKey, salt: str = "") -> int:
    """Stable 63-bit seed derived from a segment key (for per-link draws)."""
    digest = hashlib.blake2b(
        (repr(key) + "|" + salt).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


def _city_key(city: GeoLocation) -> Tuple[str, str]:
    return (city.city, city.country)


def _intra_key(asn: ASN, city_a: GeoLocation, city_b: GeoLocation) -> SegmentKey:
    key_a, key_b = sorted((_city_key(city_a), _city_key(city_b)))
    return ("i", asn, key_a, key_b)


def _pick_link_instance(
    instances: Sequence[InterdomainLink],
    topology: RouterTopology,
    from_asn: ASN,
    current_city: GeoLocation,
    version: IPVersion,
) -> Optional[InterdomainLink]:
    """Deterministically choose the link instance nearest the current city."""
    best: Optional[Tuple[float, int, InterdomainLink]] = None
    for link in instances:
        if version is IPVersion.V6 and not link.supports_ipv6():
            continue
        near_router = topology.routers[link.router_in(from_asn)]
        distance = current_city.distance_km(near_router.city)
        ranked = (distance, link.link_id, link)
        if best is None or ranked[:2] < best[:2]:
            best = ranked
    return best[2] if best else None


def realize_path(
    graph: ASGraph,
    plan: AddressPlan,
    topology: RouterTopology,
    src: Server,
    dst: Server,
    as_path: Tuple[ASN, ...],
    version: IPVersion,
) -> Optional[PathRealization]:
    """Expand ``as_path`` between two servers into a hop-level path.

    Returns:
        The realization, or ``None`` when the path cannot be realized for
        this protocol (e.g. an IPv6 probe over a link instance without v6).

    Raises:
        ValueError: If the endpoints do not match the path's end ASes.
    """
    if not as_path or as_path[0] != src.asn or as_path[-1] != dst.asn:
        raise ValueError(
            f"AS path {as_path} does not connect AS{src.asn} to AS{dst.asn}"
        )
    dst_address = dst.address(version)
    if dst_address is None:
        return None

    hops: List[HopSpec] = []
    load_balanced = False

    def internal_address(router_id: int) -> Optional[IPAddress]:
        if version is IPVersion.V4:
            return topology.internal_v4[router_id]
        return topology.internal_v6.get(router_id)

    def add_internal_hop(
        asn: ASN, from_city: GeoLocation, to_city: GeoLocation, core: bool = False
    ) -> bool:
        router = (
            topology.core_router(asn, to_city)
            if core
            else topology.border_router(asn, to_city)
        )
        address = internal_address(router.router_id)
        if address is None:
            return False
        # A same-city hop still traverses the metro aggregation fabric.
        distance = from_city.distance_km(to_city) if from_city != to_city else 15.0
        hops.append(
            HopSpec(
                address=address,
                owner=asn,
                mapped_asn=plan.origin(address),
                city=to_city,
                distance_km=distance,
                segment_key=_intra_key(asn, from_city, to_city),
                respond_probability=router.respond_probability,
            )
        )
        return True

    # First hop: the source AS gateway in the source city.
    gateway = topology.border_router(src.asn, src.city)
    gateway_address = internal_address(gateway.router_id)
    if gateway_address is None:
        return None
    hops.append(
        HopSpec(
            address=gateway_address,
            owner=src.asn,
            mapped_asn=plan.origin(gateway_address),
            city=src.city,
            distance_km=0.5,  # server LAN to gateway
            segment_key=("h", src.asn, _city_key(src.city)),
            respond_probability=gateway.respond_probability,
        )
    )
    current_city = src.city

    for from_asn, to_asn in zip(as_path, as_path[1:]):
        instances = topology.link_instances(from_asn, to_asn)
        link = _pick_link_instance(instances, topology, from_asn, current_city, version)
        if link is None:
            return None

        near_router = topology.routers[link.router_in(from_asn)]
        if _city_key(near_router.city) != _city_key(current_city):
            # Traverse from_asn internally to the egress city.
            if not add_internal_hop(from_asn, current_city, near_router.city):
                return None
            current_city = near_router.city

        far_router = topology.routers[link.router_in(to_asn)]
        far_address = link.far_interface(from_asn, version)
        if far_address is None:
            return None
        hops.append(
            HopSpec(
                address=far_address,
                owner=to_asn,
                mapped_asn=plan.origin(far_address),
                city=far_router.city,
                distance_km=near_router.city.distance_km(far_router.city),
                segment_key=("x", link.link_id),
                respond_probability=far_router.respond_probability,
            )
        )
        current_city = far_router.city
        if len(instances) > 1:
            load_balanced = True
        # Probes then traverse the new network's metro core.
        if not add_internal_hop(to_asn, current_city, current_city, core=True):
            return None

    if _city_key(current_city) != _city_key(dst.city):
        if not add_internal_hop(dst.asn, current_city, dst.city):
            return None
        current_city = dst.city

    # Destination server: always responds, mapped via its announced block.
    hops.append(
        HopSpec(
            address=dst_address,
            owner=dst.asn,
            mapped_asn=plan.origin(dst_address),
            city=dst.city,
            distance_km=0.5,
            segment_key=("h", dst.asn, _city_key(dst.city)),
            respond_probability=1.0,
            is_destination=True,
        )
    )

    observed = observed_as_path(src.asn, [hop.mapped_asn for hop in hops])
    return PathRealization(
        src_server_id=src.server_id,
        dst_server_id=dst.server_id,
        version=version,
        as_path=tuple(as_path),
        hops=tuple(hops),
        observed_path_complete=observed,
        load_balanced=load_balanced,
    )
