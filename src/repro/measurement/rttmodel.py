"""The RTT model: propagation, queueing noise, spikes, and congestion.

A probe's RTT decomposes exactly as the paper's Section 3 example does:

- a **baseline** set by fiber propagation over the realized router path
  (great-circle distance per segment, times a stable per-segment stretch
  factor for cable detours) plus small per-hop processing delays;
- **queueing noise**, a small gamma-distributed jitter on every sample;
- occasional **spikes**, the isolated large values "typical of repeated
  measurements";
- **congestion**, the diurnal contribution of any congested segment on the
  path (supplied by a :class:`~repro.measurement.congestionmodel.CongestionSchedule`).

Level shifts emerge without any extra machinery: a routing change swaps the
realization, and with it the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.measurement.congestionmodel import CongestionSchedule
from repro.measurement.realization import PathRealization, segment_seed
from repro.net.geo import FIBER_REFRACTION_FACTOR, SPEED_OF_LIGHT_KM_PER_MS
from repro.net.ip import IPVersion

__all__ = ["DelayParams", "DelayModel"]


@dataclass
class DelayParams:
    """Calibration of the delay model.

    The stretch range plus the fiber refraction factor put median
    RTT-inflation over cRTT near the paper's observed ~3.0 (Figure 10b).
    """

    per_hop_processing_ms: float = 0.08
    min_segment_one_way_ms: float = 0.03
    stretch_min: float = 1.02
    stretch_max: float = 1.35
    noise_shape: float = 2.0
    noise_scale_ms: float = 1.4
    spike_probability: float = 0.01
    spike_mean_ms: float = 45.0
    ipv6_noise_factor: float = 1.1
    """IPv6 probes see slightly larger jitter (less-tuned v6 paths)."""

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent settings."""
        if self.stretch_min < 1.0 or self.stretch_max < self.stretch_min:
            raise ValueError("invalid stretch range")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike_probability must be a probability")
        if self.noise_shape <= 0 or self.noise_scale_ms < 0:
            raise ValueError("invalid noise parameters")


class DelayModel:
    """Turns path realizations into RTT baselines and sampled series."""

    def __init__(self, params: Optional[DelayParams] = None) -> None:
        self.params = params or DelayParams()
        self.params.validate()
        self._stretch_cache: dict = {}

    def _stretch(self, realization: PathRealization, index: int) -> float:
        """Stable per-segment path-stretch factor (same for v4 and v6)."""
        key = realization.hops[index].segment_key
        cached = self._stretch_cache.get(key)
        if cached is None:
            rng = np.random.default_rng(segment_seed(key, "stretch"))
            cached = float(rng.uniform(self.params.stretch_min, self.params.stretch_max))
            self._stretch_cache[key] = cached
        return cached

    def segment_one_way_ms(self, realization: PathRealization) -> np.ndarray:
        """One-way propagation delay of each segment, in path order.

        Vectorized ``max(min_one_way, 0.5 * fiber_rtt_ms(d, stretch))``:
        the elementwise expression keeps :func:`fiber_rtt_ms`'s exact
        association (``2.0 * d * stretch / speed``), so every delay is
        bitwise what the scalar loop produced.
        """
        params = self.params
        hops = realization.hops
        distances = np.array([hop.distance_km for hop in hops])
        if distances.size and float(distances.min()) < 0.0:
            raise ValueError("distance must be non-negative")
        stretches = np.array(
            [self._stretch(realization, index) for index in range(len(hops))]
        )
        speed = SPEED_OF_LIGHT_KM_PER_MS * FIBER_REFRACTION_FACTOR
        return np.maximum(
            params.min_segment_one_way_ms,
            0.5 * (2.0 * distances * stretches / speed),
        )

    def base_rtt_to_hops(self, realization: PathRealization) -> np.ndarray:
        """Baseline RTT from the source to each hop (ms)."""
        one_way = self.segment_one_way_ms(realization)
        hop_indices = np.arange(1, len(one_way) + 1)
        return 2.0 * np.cumsum(one_way) + self.params.per_hop_processing_ms * hop_indices

    def base_rtt(self, realization: PathRealization) -> float:
        """Baseline end-to-end RTT (ms)."""
        return float(self.base_rtt_to_hops(realization)[-1])

    def noise_series(
        self, rng: np.random.Generator, count: int, version: IPVersion
    ) -> np.ndarray:
        """Queueing jitter plus spikes for ``count`` samples."""
        params = self.params
        scale = params.noise_scale_ms
        if version is IPVersion.V6:
            scale *= params.ipv6_noise_factor
        noise = rng.gamma(params.noise_shape, scale, size=count)
        spikes = rng.random(count) < params.spike_probability
        if spikes.any():
            noise[spikes] += rng.exponential(params.spike_mean_ms, size=int(spikes.sum()))
        return noise

    def rtt_series(
        self,
        realization: PathRealization,
        times_hours: np.ndarray,
        rng: np.random.Generator,
        congestion: Optional[CongestionSchedule] = None,
    ) -> np.ndarray:
        """End-to-end RTT samples at the given times (ms)."""
        times_hours = np.asarray(times_hours, dtype=float)
        series = np.full(times_hours.shape, self.base_rtt(realization))
        series += self.noise_series(rng, times_hours.size, realization.version)
        if congestion is not None:
            series += congestion.path_series(realization.segment_keys, times_hours)
        return series

    def hop_rtt_matrix(
        self,
        realization: PathRealization,
        times_hours: np.ndarray,
        rng: np.random.Generator,
        congestion: Optional[CongestionSchedule] = None,
    ) -> np.ndarray:
        """Per-hop RTT samples: shape ``(n_hops, n_times)``.

        Row ``i`` is the RTT time series of the traceroute segment ending at
        hop ``i`` -- the series the localization analysis (Section 5.2)
        correlates with the end-to-end signal.  Each row carries its own
        queueing jitter (probes to different hops are distinct packets).
        """
        times_hours = np.asarray(times_hours, dtype=float)
        base = self.base_rtt_to_hops(realization)
        n_hops = len(realization.hops)
        matrix = np.empty((n_hops, times_hours.size))
        for index in range(n_hops):
            matrix[index] = base[index] + self.noise_series(
                rng, times_hours.size, realization.version
            )
        if congestion is not None:
            matrix += congestion.segment_matrix(realization.segment_keys, times_hours)
        return matrix
