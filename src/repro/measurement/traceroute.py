"""The traceroute engine: single probes and vectorized campaign series.

Two interfaces:

- :meth:`TracerouteEngine.trace` produces one full
  :class:`~repro.datasets.records.TracerouteRecord` with per-hop RTTs and
  per-hop responsiveness -- what a real traceroute binary emits.  Used by
  examples, tests, and anywhere hop-level data is needed for a single time.
- :meth:`TracerouteEngine.sample_series` generates, for a *fixed* path
  realization, the per-sample end-to-end RTT, measurement outcome, and
  observed-AS-path variant over an array of times, without materializing
  hop records.  Campaign datasets (millions of traceroutes) are built this
  way.

Artifact model (calibrated against Table 1 and Section 2.1):

- *incomplete*: the traceroute never reaches the destination (~25% of
  collected traceroutes in the paper; these are excluded from analysis).
- *loop*: classic traceroute over a per-flow load-balanced path can stitch
  hops from different forwarding paths into an AS-level loop; Paris
  traceroute (adopted for IPv4 in the 11th study month) almost never does.
- *missing IP-level*: some router on the path does not answer (rate-limited
  or filtered); mostly a persistent property of the router, so a path's
  observed AS path is stable over time.
- *missing AS-level*: all hops answered but some address is unannounced in
  BGP and not imputable (IXP LANs, unannounced infrastructure blocks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.measurement.records import HopObservation, TracerouteRecord
from repro.measurement.congestionmodel import CongestionSchedule
from repro.measurement.realization import UNKNOWN_ASN, PathRealization
from repro.measurement.rttmodel import DelayModel
from repro.net.asn import ASN
from repro.net.ip import IPVersion

__all__ = [
    "TracerouteFlavor",
    "TraceOutcome",
    "ArtifactParams",
    "TraceSampleSeries",
    "TracerouteEngine",
]


class TracerouteFlavor(enum.Enum):
    """Traceroute implementation used for a probe."""

    CLASSIC = "classic"
    PARIS = "paris"


class TraceOutcome(enum.IntEnum):
    """Per-sample measurement outcome, mirroring Table 1's rows."""

    COMPLETE = 0
    """Reached destination, all hops answered, all addresses mapped."""

    MISSING_AS = 1
    """Reached destination, all hops answered, some address unmappable."""

    MISSING_IP = 2
    """Reached destination, at least one unresponsive hop."""

    LOOP = 3
    """Observed AS path contains a loop (excluded from analyses)."""

    INCOMPLETE = 4
    """Destination not reached (excluded from analyses and Table 1)."""


@dataclass
class ArtifactParams:
    """Calibration of the measurement-artifact model."""

    incomplete_probability: float = 0.25
    loop_probability_classic_lb: float = 0.055
    """Loop chance per classic IPv4 sample over a load-balanced path."""

    loop_probability_classic_lb_v6: float = 0.075
    """Same for IPv6, whose loop rate the paper reports at 5.5% vs 2.16%."""

    loop_probability_classic: float = 0.003
    loop_probability_paris: float = 0.0008

    def validate(self) -> None:
        """Raise :class:`ValueError` on out-of-range probabilities."""
        for name in (
            "incomplete_probability",
            "loop_probability_classic_lb",
            "loop_probability_classic_lb_v6",
            "loop_probability_classic",
            "loop_probability_paris",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


@dataclass
class TraceSampleSeries:
    """Vectorized traceroute outcomes for one realization over many times.

    Attributes:
        times_hours: Sample times.
        rtt_ms: End-to-end RTT per sample (NaN for incomplete samples).
        outcome: :class:`TraceOutcome` value per sample (uint8).
        variant_id: Index into :attr:`variants` of the observed AS path per
            sample; ``-1`` for incomplete samples.
        variants: Distinct observed AS paths, index 0 being the
            fully-responsive variant.
    """

    times_hours: np.ndarray
    rtt_ms: np.ndarray
    outcome: np.ndarray
    variant_id: np.ndarray
    variants: List[Tuple[ASN, ...]] = field(default_factory=list)


def _loop_variant(path: Tuple[ASN, ...], rng: np.random.Generator) -> Tuple[ASN, ...]:
    """Forge an AS path with a loop, as crooked classic traceroute reports."""
    if len(path) < 3:
        return path + (path[0],)
    position = int(rng.integers(1, len(path) - 1))
    return path[: position + 1] + (path[position - 1],) + path[position + 1 :]


class TracerouteEngine:
    """Simulated traceroute over realized paths."""

    def __init__(
        self,
        delay_model: Optional[DelayModel] = None,
        congestion: Optional[CongestionSchedule] = None,
        artifacts: Optional[ArtifactParams] = None,
    ) -> None:
        self.delay_model = delay_model or DelayModel()
        self.congestion = congestion
        self.artifacts = artifacts or ArtifactParams()
        self.artifacts.validate()

    # ------------------------------------------------------------------
    # Single-probe interface
    # ------------------------------------------------------------------

    def trace(
        self,
        realization: PathRealization,
        time_hours: float,
        rng: np.random.Generator,
        flavor: TracerouteFlavor = TracerouteFlavor.PARIS,
    ) -> TracerouteRecord:
        """Run one traceroute at ``time_hours``; returns the full record."""
        times = np.array([time_hours])
        hop_rtts = self.delay_model.hop_rtt_matrix(
            realization, times, rng, self.congestion
        )[:, 0]

        incomplete = bool(rng.random() < self.artifacts.incomplete_probability)
        reach_hops = len(realization.hops)
        if incomplete:
            # The trace dies somewhere past the first hop.
            reach_hops = int(rng.integers(1, max(2, len(realization.hops))))

        hops: List[HopObservation] = []
        mapped: List[Optional[ASN]] = []
        for index, hop in enumerate(realization.hops[:reach_hops]):
            responded = hop.is_destination or bool(
                rng.random() < hop.respond_probability
            )
            if responded:
                hops.append(
                    HopObservation(
                        ttl=index + 1,
                        address=hop.address,
                        rtt_ms=float(hop_rtts[index]),
                        mapped_asn=hop.mapped_asn,
                    )
                )
                mapped.append(hop.mapped_asn)
            else:
                hops.append(
                    HopObservation(ttl=index + 1, address=None, rtt_ms=None, mapped_asn=None)
                )
                mapped.append(None)

        reached = not incomplete
        observed: Tuple[ASN, ...] = ()
        rtt: Optional[float] = None
        if reached:
            from repro.measurement.realization import observed_as_path

            observed = observed_as_path(realization.src_asn, mapped)
            rtt = float(hop_rtts[-1])
            if flavor is TracerouteFlavor.CLASSIC and realization.load_balanced:
                if rng.random() < self.artifacts.loop_probability_classic_lb:
                    observed = _loop_variant(observed, rng)

        src_address = (
            realization.hops[0].address
        )  # gateway stands in for the probing server's first hop
        return TracerouteRecord(
            src_server_id=realization.src_server_id,
            dst_server_id=realization.dst_server_id,
            src_address=src_address,
            dst_address=realization.hops[-1].address,
            version=realization.version,
            time_hours=time_hours,
            hops=tuple(hops),
            rtt_ms=rtt,
            reached=reached,
            observed_as_path=observed,
        )

    # ------------------------------------------------------------------
    # Vectorized campaign interface
    # ------------------------------------------------------------------

    def _loop_probability(self, realization: PathRealization, flavor: TracerouteFlavor) -> float:
        if flavor is TracerouteFlavor.PARIS:
            return self.artifacts.loop_probability_paris
        if realization.load_balanced:
            if realization.version is IPVersion.V6:
                return self.artifacts.loop_probability_classic_lb_v6
            return self.artifacts.loop_probability_classic_lb
        return self.artifacts.loop_probability_classic

    def sample_series(
        self,
        realization: PathRealization,
        times_hours: np.ndarray,
        rng: np.random.Generator,
        paris_start_hour: Optional[float] = None,
    ) -> TraceSampleSeries:
        """Sample traceroute outcomes for every time in ``times_hours``.

        Args:
            realization: The fixed path being probed.
            times_hours: Sample times.
            rng: Randomness source for this series.
            paris_start_hour: Samples at or after this time use Paris
                traceroute; ``None`` means classic throughout (the paper's
                IPv6 situation), ``0.0`` means Paris throughout.

        Returns:
            A :class:`TraceSampleSeries`; RTTs of incomplete samples are NaN.
        """
        times_hours = np.asarray(times_hours, dtype=float)
        count = times_hours.size
        rtt = self.delay_model.rtt_series(realization, times_hours, rng, self.congestion)
        outcome = np.zeros(count, dtype=np.uint8)
        variant_id = np.zeros(count, dtype=np.int16)

        variants: List[Tuple[ASN, ...]] = [realization.observed_path_complete]
        variant_index: Dict[Tuple[ASN, ...], int] = {variants[0]: 0}

        def intern_variant(path: Tuple[ASN, ...]) -> int:
            index = variant_index.get(path)
            if index is None:
                index = len(variants)
                variants.append(path)
                variant_index[path] = index
            return index

        # Incomplete draws.
        incomplete = rng.random(count) < self.artifacts.incomplete_probability
        outcome[incomplete] = int(TraceOutcome.INCOMPLETE)
        variant_id[incomplete] = -1
        rtt[incomplete] = np.nan

        # Loop draws, flavor-dependent.
        if paris_start_hour is None:
            loop_probability = np.full(
                count, self._loop_probability(realization, TracerouteFlavor.CLASSIC)
            )
        else:
            classic = times_hours < paris_start_hour
            loop_probability = np.where(
                classic,
                self._loop_probability(realization, TracerouteFlavor.CLASSIC),
                self._loop_probability(realization, TracerouteFlavor.PARIS),
            )
        looped = (~incomplete) & (rng.random(count) < loop_probability)
        if looped.any():
            loop_path = _loop_variant(realization.observed_path_complete, rng)
            loop_id = intern_variant(loop_path)
            outcome[looped] = int(TraceOutcome.LOOP)
            variant_id[looped] = loop_id

        # Responsiveness: approximate multi-hop misses by the dominant
        # single-miss case (per-hop miss probabilities are small).
        respond = np.array([hop.respond_probability for hop in realization.hops])
        p_all_respond = float(np.prod(respond))
        normal = (~incomplete) & (~looped)
        misses = normal & (rng.random(count) >= p_all_respond)
        if misses.any():
            miss_weights = 1.0 - respond
            if miss_weights.sum() <= 0:
                misses[:] = False
            else:
                miss_weights = miss_weights / miss_weights.sum()
                chosen_hops = rng.choice(len(respond), size=int(misses.sum()), p=miss_weights)
                miss_ids = np.empty(int(misses.sum()), dtype=np.int16)
                cache: Dict[int, int] = {}
                for position, hop_index in enumerate(chosen_hops):
                    hop_index = int(hop_index)
                    if hop_index not in cache:
                        cache[hop_index] = intern_variant(
                            realization.observed_path_with_miss(hop_index)
                        )
                    miss_ids[position] = cache[hop_index]
                outcome[misses] = int(TraceOutcome.MISSING_IP)
                variant_id[misses] = miss_ids

        # Fully responsive samples: complete or missing-AS depending on the
        # mapped path.
        clean = normal & (~misses)
        if UNKNOWN_ASN in realization.observed_path_complete:
            outcome[clean] = int(TraceOutcome.MISSING_AS)
        else:
            outcome[clean] = int(TraceOutcome.COMPLETE)
        variant_id[clean] = 0

        return TraceSampleSeries(
            times_hours=times_hours,
            rtt_ms=rtt,
            outcome=outcome,
            variant_id=variant_id,
            variants=variants,
        )
