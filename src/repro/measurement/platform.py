"""The measurement platform façade.

:class:`MeasurementPlatform` wires every substrate together -- topology,
addressing, routers, CDN deployment, BGP route tables for both protocols,
shared routing dynamics, the delay model and the congestion schedule -- and
exposes the narrow API the dataset builders and examples consume:

- the measurement servers (one per cluster),
- per-pair routing epochs over the study window,
- path realizations per (pair, protocol, candidate),
- deterministic per-purpose random generators,
- the traceroute engine and ping primitives.

Everything derives from one seed: two platforms built with equal configs
produce bit-identical datasets.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.measurement.congestionmodel import (
    CongestionConfig,
    CongestionSchedule,
    SegmentGeo,
    assign_congestion,
)
from repro.measurement.realization import PathRealization, SegmentKey, realize_path
from repro.measurement.rttmodel import DelayModel, DelayParams
from repro.measurement.traceroute import ArtifactParams, TracerouteEngine
from repro.net.asn import ASN
from repro.net.ip import IPVersion
from repro.obs.trace import stage as obs_stage
from repro.seeds import PLATFORM_SEED
from repro.routing.bgp import compute_route_table
from repro.routing.dynamics import (
    PathEpoch,
    RoutingDynamicsConfig,
    RoutingSchedule,
    build_routing_schedule,
    sample_edge_outages,
    sample_pair_flaps,
)
from repro.routing.table import RouteTable
from repro.topology.addressing import AddressingConfig, AddressPlan, allocate_addresses
from repro.topology.cdn import CDNDeployment, Server, deploy_cdn
from repro.topology.generator import ASGraph, TopologyConfig, generate_topology
from repro.topology.routers import RouterTopology, build_router_topology

__all__ = ["PlatformConfig", "MeasurementPlatform"]


@dataclass
class PlatformConfig:
    """Everything needed to build a platform, under a single seed."""

    seed: int = PLATFORM_SEED
    duration_hours: float = 485 * 24.0
    cluster_count: int = 60
    servers_per_cluster: int = 2
    dual_stack_fraction: float = 0.95
    max_alternatives: int = 6
    paris_adoption_fraction: Optional[float] = 10.0 / 16.0
    """When (as a fraction of the window) IPv4 switches to Paris traceroute;
    ``None`` keeps classic throughout.  IPv6 always uses classic, as in the
    paper."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    addressing: AddressingConfig = field(default_factory=AddressingConfig)
    dynamics: RoutingDynamicsConfig = field(default_factory=RoutingDynamicsConfig)
    congestion: CongestionConfig = field(default_factory=CongestionConfig)
    delay: DelayParams = field(default_factory=DelayParams)
    artifacts: ArtifactParams = field(default_factory=ArtifactParams)

    @property
    def paris_start_hour(self) -> Optional[float]:
        """Absolute Paris-adoption time for IPv4, or ``None``."""
        if self.paris_adoption_fraction is None:
            return None
        return self.duration_hours * self.paris_adoption_fraction


def _stream_seed(base_seed: int, *key_parts: object) -> np.random.SeedSequence:
    """Stable seed sequence for a named random stream."""
    digest = hashlib.blake2b(
        ("|".join(repr(part) for part in key_parts)).encode("utf-8"), digest_size=8
    ).digest()
    return np.random.SeedSequence([base_seed, int.from_bytes(digest, "big")])


def _stage(timings: Optional[object], name: str):
    """A timing context for one build stage.

    ``timings`` is any object with a ``stage(name)`` context manager (see
    :class:`repro.harness.engine.Timings`); duck typing keeps the
    measurement layer free of a harness dependency.  Either way the stage
    opens a span on the current tracer, so build stages show up in
    ``--trace-out`` even when no flat recorder is attached.
    """
    return obs_stage(name, timings)


class MeasurementPlatform:
    """The assembled simulation: build once, query everywhere.

    Attributes:
        config: The construction config.
        graph / plan / topology / cdn: The substrates.
        tables: Route tables per IP version.
        schedules: Routing schedules (path timelines) per IP version.
        congestion: The congestion schedule shared by all probes.
        delay_model / engine: The RTT model and traceroute engine.
    """

    def __init__(
        self,
        config: Optional[PlatformConfig] = None,
        timings: Optional[object] = None,
        jobs: int = 1,
    ) -> None:
        """Assemble every substrate under the config's seed.

        Args:
            config: Construction parameters (default config otherwise).
            timings: Optional stage recorder -- any object with a
                ``stage(name)`` context manager, e.g.
                :class:`repro.harness.engine.Timings`.
            jobs: Worker processes for route computation (``<= 1``
                serial).  The result is identical at any job count.
        """
        self.config = config or PlatformConfig()
        seed = self.config.seed
        self._server_pairs_cache: Dict[Tuple[bool, bool], List[Tuple[Server, Server]]] = {}
        self._measured_as_pairs_cache: Optional[List[Tuple[ASN, ASN]]] = None

        with _stage(timings, "topology"):
            self.graph: ASGraph = generate_topology(
                self.config.topology, rng=np.random.default_rng(_stream_seed(seed, "topology"))
            )
        with _stage(timings, "addressing"):
            self.plan: AddressPlan = allocate_addresses(
                self.graph,
                self.config.addressing,
                rng=np.random.default_rng(_stream_seed(seed, "addressing")),
            )
        with _stage(timings, "routers"):
            self.topology: RouterTopology = build_router_topology(
                self.graph, self.plan, rng=np.random.default_rng(_stream_seed(seed, "routers"))
            )
        with _stage(timings, "cdn"):
            self.cdn: CDNDeployment = deploy_cdn(
                self.graph,
                self.plan,
                cluster_count=self.config.cluster_count,
                servers_per_cluster=self.config.servers_per_cluster,
                dual_stack_fraction=self.config.dual_stack_fraction,
                rng=np.random.default_rng(_stream_seed(seed, "cdn")),
            )

        # Routes are only ever queried between measurement-server ASes
        # (realizations, schedules, segment collection all start from
        # server pairs), so the table is scoped to them: |servers|^2
        # propagations instead of |ASes|^2.  Scoping is exact -- the
        # scoped table is the literal slice of the full one.
        measured_asns = sorted({server.asn for server in self.measurement_servers()})
        with _stage(timings, "routing"):
            self.tables: Dict[IPVersion, RouteTable] = {
                version: compute_route_table(
                    self.graph,
                    version,
                    sources=measured_asns,
                    destinations=measured_asns,
                    max_alternatives=self.config.max_alternatives,
                    rng=np.random.default_rng(
                        _stream_seed(seed, "tiebreak", int(version))
                    ),
                    jobs=jobs,
                )
                for version in (IPVersion.V4, IPVersion.V6)
            }

        duration = self.config.duration_hours
        as_pairs = self._measured_as_pairs()
        with _stage(timings, "dynamics"):
            outages = sample_edge_outages(
                self.graph,
                duration,
                self.config.dynamics,
                rng=np.random.default_rng(_stream_seed(seed, "outages")),
            )
            self.schedules: Dict[IPVersion, RoutingSchedule] = {}
            for version in (IPVersion.V4, IPVersion.V6):
                flaps = sample_pair_flaps(
                    as_pairs,
                    duration,
                    self.config.dynamics,
                    rng=np.random.default_rng(_stream_seed(seed, "flaps", int(version))),
                )
                self.schedules[version] = build_routing_schedule(
                    self.tables[version], as_pairs, duration, outages, flaps
                )

        self.delay_model = DelayModel(self.config.delay)
        self._realizations: Dict[Tuple[int, int, IPVersion, int], Optional[PathRealization]] = {}

        with _stage(timings, "congestion"):
            segments, crossings = self._collect_segments()
            self.congestion: CongestionSchedule = assign_congestion(
                segments,
                crossings,
                duration,
                self.config.congestion,
                rng=np.random.default_rng(_stream_seed(seed, "congestion")),
            )
        self.engine = TracerouteEngine(
            delay_model=self.delay_model,
            congestion=self.congestion,
            artifacts=self.config.artifacts,
        )

    # ------------------------------------------------------------------
    # Servers and pairs
    # ------------------------------------------------------------------

    def measurement_servers(self, dual_stack_only: bool = False) -> List[Server]:
        """One measurement server per cluster."""
        return self.cdn.measurement_servers(dual_stack_only=dual_stack_only)

    def server_pairs(
        self, dual_stack_only: bool = False, distinct_as: bool = True
    ) -> List[Tuple[Server, Server]]:
        """Ordered pairs of measurement servers.

        Args:
            dual_stack_only: Restrict to dual-stack endpoints (the paper's
                long-term campaign does).
            distinct_as: Drop pairs hosted in the same AS (paths would not
                cross the core).

        The mesh is cached per argument combination -- segment collection,
        the dataset builders and the examples all walk it repeatedly.
        Callers receive a fresh list; the shared Server objects are frozen.
        """
        cache_key = (dual_stack_only, distinct_as)
        cached = self._server_pairs_cache.get(cache_key)
        if cached is None:
            servers = self.measurement_servers(dual_stack_only=dual_stack_only)
            cached = [
                (src, dst)
                for src in servers
                for dst in servers
                if src.server_id != dst.server_id
                and not (distinct_as and src.asn == dst.asn)
            ]
            self._server_pairs_cache[cache_key] = cached
        return list(cached)

    def _measured_as_pairs(self) -> List[Tuple[ASN, ASN]]:
        if self._measured_as_pairs_cache is None:
            asns = sorted({server.asn for server in self.measurement_servers()})
            self._measured_as_pairs_cache = [
                (a, b) for a in asns for b in asns if a != b
            ]
        return self._measured_as_pairs_cache

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def candidates(self, src_asn: ASN, dst_asn: ASN, version: IPVersion):
        """Candidate routes between two ASes for one protocol."""
        return self.tables[version].routes(src_asn, dst_asn)

    def epochs(self, src: Server, dst: Server, version: IPVersion) -> Tuple[PathEpoch, ...]:
        """Routing epochs of the pair's AS-level path over the window."""
        return self.schedules[version].epochs((src.asn, dst.asn))

    def realization(
        self, src: Server, dst: Server, version: IPVersion, candidate_index: int
    ) -> Optional[PathRealization]:
        """The realized probe path for one candidate route (cached).

        Returns ``None`` when the candidate does not exist or cannot carry
        the protocol.
        """
        key = (src.server_id, dst.server_id, version, candidate_index)
        if key in self._realizations:
            return self._realizations[key]
        candidates = self.candidates(src.asn, dst.asn, version)
        result: Optional[PathRealization] = None
        if 0 <= candidate_index < len(candidates):
            if src.address(version) is not None and dst.address(version) is not None:
                result = realize_path(
                    self.graph,
                    self.plan,
                    self.topology,
                    src,
                    dst,
                    candidates[candidate_index].path,
                    version,
                )
        self._realizations[key] = result
        return result

    def drop_realizations(self, src_server_id: int, dst_server_id: int) -> None:
        """Evict one pair's cached path realizations.

        Realizations are pure functions of the built topology --
        :func:`realize_path` consumes no shared randomness -- so evicting
        and rebuilding them never changes any measurement.  The streaming
        engine calls this after finishing a pair's stream unit to keep
        the cache (which otherwise grows with every pair visited) within
        the stream's memory bound.
        """
        stale = [
            key
            for key in self._realizations
            if key[0] == src_server_id and key[1] == dst_server_id
        ]
        for key in stale:
            del self._realizations[key]

    def _collect_segments(self) -> Tuple[Dict[SegmentKey, SegmentGeo], Dict[SegmentKey, int]]:
        """Geography and crossing counts of all primary-path segments."""
        from repro.net.asn import ASRelationship

        link_peering: Dict[int, bool] = {}
        for link in self.topology.all_links():
            relationship = self.graph.relationships.get(link.asn_a, link.asn_b)
            link_peering[link.link_id] = relationship is ASRelationship.PEER

        segments: Dict[SegmentKey, SegmentGeo] = {}
        crossings: Dict[SegmentKey, int] = {}
        for src, dst in self.server_pairs():
            for version in (IPVersion.V4, IPVersion.V6):
                realization = self.realization(src, dst, version, 0)
                if realization is None:
                    continue
                previous_city = src.city
                for hop in realization.hops:
                    key = hop.segment_key
                    if key not in segments:
                        peering = link_peering.get(key[1]) if key[0] == "x" else None
                        segments[key] = SegmentGeo(
                            kind=str(key[0]),
                            city_a=previous_city,
                            city_b=hop.city,
                            peering=peering,
                        )
                    crossings[key] = crossings.get(key, 0) + 1
                    previous_city = hop.city
        return segments, crossings

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------

    def rng(self, *key_parts: object) -> np.random.Generator:
        """A deterministic random stream named by ``key_parts``."""
        return np.random.default_rng(_stream_seed(self.config.seed, "stream", *key_parts))

    def stream_digester(self, *key_parts: object):
        """The entropy-digest half of :meth:`rng_factory`.

        ``stream_digester(*parts)(suffix)`` is the 64-bit digest that,
        paired with the config seed, seeds the ``rng(*parts, suffix)``
        stream.  The hot builders create one stream per (pair, epoch);
        hashing the constant pair prefix once and extending it per epoch
        via hashlib's streaming ``copy()`` (which digests exactly like
        hashing the concatenated message) removes most of the per-stream
        hashing cost.  Exposed separately so the columnar seed planner
        can batch entropy for a whole build through
        :func:`repro.measurement.fastseed.pcg64_states`.
        """
        prefix = hashlib.blake2b(
            ("|".join(repr(part) for part in ("stream", *key_parts)) + "|").encode(
                "utf-8"
            ),
            digest_size=8,
        )

        def digest(suffix: object) -> int:
            message = prefix.copy()
            message.update(repr(suffix).encode("utf-8"))
            return int.from_bytes(message.digest(), "big")

        return digest

    def rng_factory(self, *key_parts: object):
        """A factory of generators sharing the ``key_parts`` name prefix.

        ``rng_factory(*parts)(suffix)`` returns a generator bit-identical
        to ``rng(*parts, suffix)``.  This is the reference seeding path;
        the columnar builders plan the same streams in batch (see
        :meth:`stream_digester`) and fall back to this one stream at a
        time.
        """
        digester = self.stream_digester(*key_parts)
        base_seed = self.config.seed

        def make(suffix: object) -> np.random.Generator:
            seed = np.random.SeedSequence([base_seed, digester(suffix)])
            return np.random.Generator(np.random.PCG64(seed))

        return make

    # ------------------------------------------------------------------
    # Ground truth for validation
    # ------------------------------------------------------------------

    def congested_segment_keys(self) -> List[SegmentKey]:
        """Ground-truth congested segments (for scoring the detectors)."""
        return self.congestion.congested_keys()
