"""Bit-exact batched PCG64 seeding for planned stream fan-outs.

The hot dataset builders create one named RNG stream per (pair, epoch)
-- ``SeedSequence([base_seed, digest])`` into a fresh ``PCG64`` -- and a
full-mesh build seeds ~20k of them.  Each seeding costs ~15us, almost
all of it Python-level ``SeedSequence.__init__`` plus per-instance
``PCG64`` construction; over a build that is a noticeable slice of the
columnar wall clock.

This module replays SeedSequence's entropy-pool mixing (Blackman &
Vigna's splitmix-style hash, unchanged in numpy since 1.17) as a
vectorized numpy computation over *all* streams at once, then derives
each stream's 128-bit PCG64 ``(state, inc)`` directly from the mixed
words.  One recycled ``PCG64`` + ``Generator`` pair is re-stated per
stream instead of constructing fresh objects.

Bit-identity is non-negotiable, so the replication is **checked, not
trusted**: the first call to :func:`pcg64_states` verifies the whole
chain against ``np.random.SeedSequence``/``np.random.PCG64`` on a set of
fixed vectors, and any mismatch (a future numpy changing its mixing)
flips the module permanently onto the reference path -- slower, still
exact.  Rows whose entropy coerces to an unusual word count (a digest
with a zero high word, ~2^-32 of them) also take the reference path
rather than complicating the batched kernel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.trace import get_tracer

__all__ = ["pcg64_states", "replication_ok", "RecycledGenerator"]

_LOG = get_logger("repro.measurement.fastseed")

# SeedSequence's entropy-pool mixing constants (numpy's _seed_seq_pool
# hash; stable across every numpy release since the Generator API
# landed).  These are hash-mixing multipliers, not seeds.
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = 0xCA01F9DD
_MIX_R = 0x4973F715
_POOL_SIZE = 4
_M32 = 0xFFFFFFFF

_U64_M32 = np.uint64(_M32)
_U64_MIX_L = np.uint64(_MIX_L)
_U64_MIX_R = np.uint64(_MIX_R)
_XSHIFT = np.uint64(16)

# PCG64's LCG multiplier and seeding recipe: numpy feeds
# ``generate_state(4, uint64)`` into pcg64_srandom_r, which folds the
# four words into (initstate, initseq) and advances once.
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_M128 = (1 << 128) - 1

_replication_checked: Optional[bool] = None


def _entropy_words(value: int) -> List[int]:
    """``value`` as little-endian 32-bit words, numpy's entropy coercion."""
    if value == 0:
        return [0]
    words: List[int] = []
    while value:
        words.append(value & _M32)
        value >>= 32
    return words


def _mix_batch(words: np.ndarray) -> np.ndarray:
    """SeedSequence pool mixing + state generation over ``(n, W)`` rows.

    Every row is one entropy word list (all the same length ``W``); the
    result is ``(n, 8)`` -- the row's ``generate_state(8, uint32)``
    words.  All arithmetic is elementwise 32-bit modular (carried in
    uint64 and masked), so the whole batch costs a few dozen numpy ops.
    """
    n, width = words.shape
    hash_const = _INIT_A

    def hashmix(value: np.ndarray, const: int) -> Tuple[np.ndarray, int]:
        value = (value ^ np.uint64(const)) & _U64_M32
        const = (const * _MULT_A) & _M32
        value = (value * np.uint64(const)) & _U64_M32
        value ^= value >> _XSHIFT
        return value, const

    def mix(dst: np.ndarray, src: np.ndarray) -> np.ndarray:
        result = (dst * _U64_MIX_L) & _U64_M32
        result = (result - ((src * _U64_MIX_R) & _U64_M32)) & _U64_M32
        result ^= result >> _XSHIFT
        return result

    pool: List[np.ndarray] = []
    for index in range(_POOL_SIZE):
        if index < width:
            column = words[:, index]
        else:
            column = np.zeros(n, dtype=np.uint64)
        mixed, hash_const = hashmix(column, hash_const)
        pool.append(mixed)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                mixed, hash_const = hashmix(pool[i_src], hash_const)
                pool[i_dst] = mix(pool[i_dst], mixed)
    for i_src in range(_POOL_SIZE, width):
        for i_dst in range(_POOL_SIZE):
            # hashmix runs once per (src, dst): the hash constant keeps
            # advancing inside the inner loop, exactly as numpy's does.
            mixed, hash_const = hashmix(words[:, i_src], hash_const)
            pool[i_dst] = mix(pool[i_dst], mixed)

    out = np.empty((n, 8), dtype=np.uint64)
    hash_const = _INIT_B
    for index in range(8):
        value = (pool[index % _POOL_SIZE] ^ np.uint64(hash_const)) & _U64_M32
        hash_const = (hash_const * _MULT_B) & _M32
        value = (value * np.uint64(hash_const)) & _U64_M32
        value ^= value >> _XSHIFT
        out[:, index] = value
    return out


def _pcg_state(state_words: Sequence[int]) -> Tuple[int, int]:
    """``(state, inc)`` from one row of eight uint32 state words."""
    initstate = (
        state_words[1] << 96 | state_words[0] << 64
        | state_words[3] << 32 | state_words[2]
    )
    initseq = (
        state_words[5] << 96 | state_words[4] << 64
        | state_words[7] << 32 | state_words[6]
    )
    inc = ((initseq << 1) | 1) & _M128
    state = ((inc + initstate) * _PCG_MULT + inc) & _M128
    return state, inc


def _reference_state(entropy: Sequence[int]) -> Tuple[int, int]:
    """``(state, inc)`` through numpy itself -- exact by definition."""
    seed = np.random.SeedSequence(list(entropy))
    raw = np.random.PCG64(seed).state["state"]
    return int(raw["state"]), int(raw["inc"])


def _batch_states(entropies: Sequence[Sequence[int]]) -> List[Tuple[int, int]]:
    """Batched ``(state, inc)`` for same-word-count entropy lists."""
    rows = [
        [word for value in entropy for word in _entropy_words(value)]
        for entropy in entropies
    ]
    width = len(rows[0])
    assert all(len(row) == width for row in rows)
    mixed = _mix_batch(np.array(rows, dtype=np.uint64))
    return [_pcg_state(row) for row in mixed.tolist()]


def replication_ok() -> bool:
    """One-time self-check of the replicated seeding against numpy.

    Vectors are derived from the mixing constants themselves (no ad-hoc
    seed literals) and cover one-, two- and many-word entropies plus the
    zero word.  A single mismatch disables the fast path for the life of
    the process.
    """
    global _replication_checked
    if _replication_checked is not None:
        return _replication_checked
    vectors = [
        [0],
        [_INIT_A],
        [_MULT_A, _INIT_B],
        [_MIX_L, (_MIX_R << 32) | _MULT_B],
        [(_PCG_MULT >> 64) & (2**64 - 1), _PCG_MULT & (2**64 - 1), _INIT_B],
        [_INIT_A, _MULT_A, _INIT_B, _MULT_B, _MIX_L, _MIX_R],
    ]
    with get_tracer().span("fastseed:selfcheck", vectors=len(vectors)):
        try:
            ok = all(
                _batch_states([entropy]) == [_reference_state(entropy)]
                for entropy in vectors
            )
        except Exception:  # pragma: no cover - any surprise means "don't trust it"
            ok = False
    _replication_checked = ok
    if ok:
        obs_metrics.counter("fastseed.selfcheck.ok").inc()
    else:
        # The fallback is correct but ~10x slower per stream; a silent
        # flip here would read as a mystery perf cliff, so make it loud.
        obs_metrics.counter("fastseed.selfcheck.failed").inc()
        _LOG.warning(
            "fastseed.selfcheck_failed",
            numpy=np.__version__,
            effect="reference seeding path for the whole process (~10x "
                   "slower stream planning)",
        )
    return ok


def pcg64_states(base_seed: int, digests: Sequence[int]) -> List[Tuple[int, int]]:
    """PCG64 ``(state, inc)`` of ``SeedSequence([base_seed, digest])``.

    Bit-identical to seeding through numpy, one tuple per digest.  The
    common case (64-bit digests with a nonzero high word, so every row
    coerces to the same word count) runs through the batched kernel;
    stragglers and un-verified environments use numpy directly.
    """
    if not digests:
        return []
    if base_seed < 0 or not replication_ok():
        obs_metrics.counter("fastseed.streams.reference").inc(len(digests))
        return [_reference_state([base_seed, digest]) for digest in digests]
    width = len(_entropy_words(base_seed)) + 2
    batched: List[int] = []
    states: List[Optional[Tuple[int, int]]] = [None] * len(digests)
    for index, digest in enumerate(digests):
        if digest >> 32 and digest >> 64 == 0:
            batched.append(index)
        else:
            states[index] = _reference_state([base_seed, digest])
    if batched:
        resolved = _batch_states([[base_seed, digests[index]] for index in batched])
        for index, state in zip(batched, resolved):
            states[index] = state
    obs_metrics.counter("fastseed.streams.batched").inc(len(batched))
    if len(batched) != len(digests):
        obs_metrics.counter("fastseed.streams.reference").inc(
            len(digests) - len(batched)
        )
    return states  # type: ignore[return-value]


class RecycledGenerator:
    """One ``PCG64`` + ``Generator`` pair re-stated per stream.

    ``set(state, inc)`` rewinds the shared bit generator to a planned
    stream's exact start and returns the shared ``Generator``.  Callers
    must fully consume one stream before requesting the next -- the
    planned builders do (one stream per epoch, sampled to completion
    inside the epoch loop).
    """

    __slots__ = ("_bit_generator", "_generator", "_template")

    def __init__(self) -> None:
        # The constructor seed is irrelevant: every use overwrites the
        # complete bit-generator state before any draw.
        self._bit_generator = np.random.PCG64(np.random.SeedSequence(0))  # repro: noqa[DET010] -- placeholder state, fully overwritten by set()
        self._generator = np.random.Generator(self._bit_generator)
        self._template = {
            "bit_generator": "PCG64",
            "state": {"state": 0, "inc": 0},
            "has_uint32": 0,
            "uinteger": 0,
        }

    def set(self, state: int, inc: int) -> np.random.Generator:
        inner = self._template["state"]
        inner["state"] = state
        inner["inc"] = inc
        self._bit_generator.state = self._template
        return self._generator
