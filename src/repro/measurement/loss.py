"""Packet-loss model: congestion-coupled probe loss.

The paper's conclusion calls for follow-up work on packet loss; this
module provides the measurement substrate for it.  Loss on
well-provisioned server-to-server paths is tiny, but a congested queue
drops packets exactly when it delays them -- so the loss probability of a
probe is the baseline rate plus a term proportional to the congestion
delay the path is experiencing at that moment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LossModel"]


@dataclass(frozen=True)
class LossModel:
    """Per-probe loss probability as a function of congestion delay.

    ``p(t) = base_probability + per_ms_of_congestion * lift_ms(t)``,
    clipped to ``[0, max_probability]``.

    With the defaults, an uncongested path loses ~0.4% of probes and a
    path under a 25 ms congestion bump loses ~2.4% at the peak -- small
    enough not to disturb RTT statistics, large enough for the loss
    analysis to see the diurnal coupling.
    """

    base_probability: float = 0.004
    per_ms_of_congestion: float = 0.0008
    max_probability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_probability <= 1.0:
            raise ValueError("base_probability must be a probability")
        if self.per_ms_of_congestion < 0.0:
            raise ValueError("per_ms_of_congestion must be non-negative")
        if not 0.0 <= self.max_probability <= 1.0:
            raise ValueError("max_probability must be a probability")

    def probabilities(self, congestion_lift_ms: np.ndarray) -> np.ndarray:
        """Per-sample loss probabilities for the given congestion delays."""
        lift = np.asarray(congestion_lift_ms, dtype=float)
        return np.clip(
            self.base_probability + self.per_ms_of_congestion * lift,
            0.0,
            self.max_probability,
        )

    def sample_losses(
        self, rng: np.random.Generator, congestion_lift_ms: np.ndarray
    ) -> np.ndarray:
        """Boolean mask of lost probes."""
        probabilities = self.probabilities(congestion_lift_ms)
        return rng.random(probabilities.size) < probabilities
