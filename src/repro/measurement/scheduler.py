"""Campaign scheduling: the time grids measurements run on.

The paper's campaigns and their cadences:

- long-term traceroutes: every 3 hours, 16 months (Section 2.1);
- short-term pings: every 15 minutes, one week (Section 2.2);
- short-term traceroutes: every 30 minutes, two-to-three weeks.

A :class:`CampaignGrid` is a uniform grid of measurement times (hours since
the study epoch, a UTC midnight).  Collection rounds are grouped and
annotated with the round's nominal timestamp, exactly as the paper groups
"all traceroutes performed during a collection period ... with an identical
timestamp".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CampaignGrid", "LONG_TERM_PERIOD_HOURS", "SHORT_TRACE_PERIOD_HOURS", "PING_PERIOD_HOURS"]

LONG_TERM_PERIOD_HOURS = 3.0
SHORT_TRACE_PERIOD_HOURS = 0.5
PING_PERIOD_HOURS = 0.25


@dataclass(frozen=True)
class CampaignGrid:
    """A uniform measurement grid.

    Attributes:
        start_hour: First measurement time.
        period_hours: Gap between rounds.
        rounds: Number of measurement rounds.
    """

    start_hour: float
    period_hours: float
    rounds: int

    def __post_init__(self) -> None:
        if self.period_hours <= 0:
            raise ValueError("period must be positive")
        if self.rounds < 1:
            raise ValueError("need at least one round")

    @classmethod
    def over_days(
        cls, days: float, period_hours: float, start_hour: float = 0.0
    ) -> "CampaignGrid":
        """Grid spanning ``days`` at the given cadence."""
        rounds = int(np.floor(days * 24.0 / period_hours))
        return cls(start_hour=start_hour, period_hours=period_hours, rounds=rounds)

    @property
    def end_hour(self) -> float:
        """One period past the final round (the covered interval's end)."""
        return self.start_hour + self.rounds * self.period_hours

    @property
    def duration_hours(self) -> float:
        """Length of the covered interval."""
        return self.rounds * self.period_hours

    def times(self) -> np.ndarray:
        """All measurement times, in hours."""
        return self.start_hour + self.period_hours * np.arange(self.rounds)

    def round_index(self, hour: float) -> int:
        """Index of the round covering ``hour`` (clipped to the grid)."""
        index = int(np.floor((hour - self.start_hour) / self.period_hours))
        return min(max(index, 0), self.rounds - 1)

    def subsample(self, every: int) -> "CampaignGrid":
        """A coarser grid keeping every ``every``-th round.

        Used by the Figure 7 analysis to compare 30-minute data against its
        3-hour subsample.
        """
        if every < 1:
            raise ValueError("subsample factor must be positive")
        return CampaignGrid(
            start_hour=self.start_hour,
            period_hours=self.period_hours * every,
            rounds=(self.rounds + every - 1) // every,
        )
