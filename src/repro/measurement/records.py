"""Single-measurement records: one traceroute, one ping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.asn import ASN
from repro.net.ip import IPAddress, IPVersion

__all__ = ["HopObservation", "TracerouteRecord", "PingRecord"]


@dataclass(frozen=True)
class HopObservation:
    """One hop of one traceroute.

    Attributes:
        ttl: Probe TTL (1-based hop position).
        address: Responding address, or ``None`` for an unresponsive hop
            (rendered ``*`` by traceroute).
        rtt_ms: Round-trip time to the hop, ``None`` when unresponsive.
        mapped_asn: BGP-mapped origin ASN of the address; ``None`` when the
            hop is unresponsive or the address is unannounced.
    """

    ttl: int
    address: Optional[IPAddress]
    rtt_ms: Optional[float]
    mapped_asn: Optional[ASN]

    @property
    def responded(self) -> bool:
        """Whether the hop answered the probe."""
        return self.address is not None

    def __str__(self) -> str:
        if not self.responded:
            return f"{self.ttl:2d}  *"
        asn = f"AS{self.mapped_asn}" if self.mapped_asn is not None else "AS?"
        return f"{self.ttl:2d}  {self.address}  {self.rtt_ms:.2f} ms  [{asn}]"


@dataclass(frozen=True)
class TracerouteRecord:
    """One complete traceroute measurement.

    Attributes:
        src_server_id / dst_server_id: Endpoint server ids.
        src_address / dst_address: Probe endpoints.
        version: IP version.
        time_hours: Measurement time (hours since the study epoch).
        hops: Per-hop observations, TTL order.
        rtt_ms: End-to-end RTT (``None`` when the destination was not
            reached).
        reached: Whether the traceroute reached the destination.
        observed_as_path: AS path after mapping/imputation/collapsing;
            contains :data:`repro.measurement.realization.UNKNOWN_ASN`
            tokens where inference failed.  Empty for unreached traces.
    """

    src_server_id: int
    dst_server_id: int
    src_address: IPAddress
    dst_address: IPAddress
    version: IPVersion
    time_hours: float
    hops: Tuple[HopObservation, ...]
    rtt_ms: Optional[float]
    reached: bool
    observed_as_path: Tuple[ASN, ...]

    @property
    def has_unresponsive_hop(self) -> bool:
        """Whether any hop failed to answer (missing IP-level data)."""
        return any(not hop.responded for hop in self.hops)

    def render(self) -> str:
        """Multi-line, traceroute-like text rendering."""
        header = (
            f"traceroute to {self.dst_address} (IPv{int(self.version)}) "
            f"at t={self.time_hours:.2f}h"
        )
        lines = [header] + [str(hop) for hop in self.hops]
        footer = (
            f"rtt={self.rtt_ms:.2f} ms" if self.rtt_ms is not None else "destination unreached"
        )
        return "\n".join(lines + [footer])


@dataclass(frozen=True)
class PingRecord:
    """One ping measurement."""

    src_server_id: int
    dst_server_id: int
    version: IPVersion
    time_hours: float
    rtt_ms: Optional[float]

    @property
    def lost(self) -> bool:
        """Whether the ping went unanswered."""
        return self.rtt_ms is None
