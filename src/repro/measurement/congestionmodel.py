"""Diurnal congestion processes attached to path segments.

The paper defines *consistent congestion* as a diurnal oscillation in RTT
lasting a few hours per day over a window of days to weeks (Section 5.1),
and reports its typical magnitude: around 20-30 ms for links within the
US (attributed to rule-of-thumb 100 ms-RTT buffer sizing), more spread out
in Europe and Asia, and around 60 ms (up to ~90 ms) on transcontinental
links (Section 5.4, Figure 9).

A :class:`CongestionEvent` is one busy-hour process on one segment: during
its active window it adds a raised-cosine daily bump, peaking in the local
evening of the segment's location, plus multiplicative jitter supplied by
the caller's noise model.  A :class:`CongestionSchedule` maps segment keys
to their events; paths share congestion exactly when they share segments,
which is what lets the localization analysis find the congested link from
the first affected traceroute segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.geo import GeoLocation
from repro.measurement.realization import SegmentKey
from repro.seeds import CONGESTION_SEED

__all__ = [
    "SegmentGeo",
    "CongestionEvent",
    "CongestionConfig",
    "CongestionSchedule",
    "assign_congestion",
]


@dataclass(frozen=True)
class SegmentGeo:
    """Geography of one segment, used to calibrate its congestion process.

    Attributes:
        kind: ``"x"`` interdomain, ``"i"`` intra-AS, ``"h"`` host LAN.
        city_a / city_b: Segment endpoints (equal for same-city segments).
        crossings: How many measured paths traverse the segment (popularity
            weight used both for congestion placement and for the paper's
            "weighted by server-to-server paths" comparison).
    """

    kind: str
    city_a: GeoLocation
    city_b: GeoLocation
    peering: Optional[bool] = None
    """For interdomain segments: whether the link is settlement-free
    peering (``None`` for intra-AS/host segments)."""

    @property
    def distance_km(self) -> float:
        """Great-circle distance spanned by the segment."""
        return self.city_a.distance_km(self.city_b)

    @property
    def longitude(self) -> float:
        """Representative longitude (midpoint) for local-time-of-day."""
        return 0.5 * (self.city_a.longitude + self.city_b.longitude)

    @property
    def domestic_us(self) -> bool:
        """Whether both endpoints are in the US."""
        return self.city_a.country == "US" and self.city_b.country == "US"

    @property
    def transcontinental(self) -> bool:
        """Whether the segment spans continents."""
        return self.city_a.continent != self.city_b.continent


@dataclass(frozen=True)
class CongestionEvent:
    """One diurnal congestion episode on one segment.

    The contribution at time ``t`` (hours since a UTC-midnight epoch) is::

        amplitude * cos(pi * dh / width)^2   while |dh| <= width / 2

    where ``dh`` is the circular distance between the local hour of day and
    ``peak_local_hour``; zero outside the active window.
    """

    amplitude_ms: float
    start_hour: float
    end_hour: float
    peak_local_hour: float
    width_hours: float
    longitude: float

    def contribution(self, times_hours: np.ndarray) -> np.ndarray:
        """Added round-trip delay (ms) contributed at each time."""
        times_hours = np.asarray(times_hours, dtype=float)
        active = (times_hours >= self.start_hour) & (times_hours < self.end_hour)
        local_hour = (times_hours + self.longitude / 15.0) % 24.0
        delta = (local_hour - self.peak_local_hour + 12.0) % 24.0 - 12.0
        in_bump = np.abs(delta) <= self.width_hours / 2.0
        shape = np.where(
            in_bump, np.cos(np.pi * delta / self.width_hours) ** 2, 0.0
        )
        return self.amplitude_ms * shape * active


@dataclass
class CongestionConfig:
    """Knobs of the congestion assigner.

    Fractions are of distinct segment keys; interdomain congestion is split
    between private and public peering with a strong bias toward private
    (Section 5.3: "the large majority of the interconnection links with
    congestion were private interconnects").
    """

    fraction_intra_congested: float = 0.08
    fraction_inter_congested: float = 0.06
    popularity_bias_inter: float = 0.5
    """Exponent biasing interdomain congestion toward popular links."""

    peer_weight_multiplier: float = 3.0
    """Extra congestion propensity of settlement-free peering links; the
    paper's peering-dispute narrative (and its p2p > c2p finding) says
    peer ports are what runs hot."""

    transcontinental_weight: float = 0.4
    """Down-weight for transcontinental segments: long-haul backbone
    capacity is expensive but carefully provisioned."""

    episodes_range: Tuple[int, int] = (1, 3)
    episode_duration_median_days: float = 11.0
    episode_duration_sigma: float = 0.7

    anchor_fraction: float = 0.5
    """Fraction of congested segments whose first episode is anchored near
    the start of the study window.  The paper's short-term campaigns run
    *because* congestion was just observed; anchoring reproduces that
    selection effect (episodes elsewhere in a 16-month window would almost
    never overlap a one-week ping campaign)."""

    anchor_start_range_hours: Tuple[float, float] = (0.0, 48.0)
    anchor_min_duration_days: float = 12.0

    anchor_popularity_halflife: Optional[float] = 20.0
    """Scale the anchor chance down for popular segments (probability is
    multiplied by ``h / (h + crossings)``).  ``None`` disables the penalty,
    which is the right setting for campaigns that deliberately chase
    congested popular links (the paper's Section 5.2/5.3 traceroute
    campaign)."""
    width_hours_range: Tuple[float, float] = (5.0, 9.0)
    peak_local_hour_range: Tuple[float, float] = (18.0, 22.0)

    # Amplitude calibration (ms), per Figure 9.
    us_amplitude_median: float = 24.0
    us_amplitude_sigma: float = 0.14
    regional_amplitude_median: float = 27.0
    regional_amplitude_sigma: float = 0.30
    transcontinental_amplitude_median: float = 60.0
    transcontinental_amplitude_sigma: float = 0.30
    transcontinental_km: float = 6500.0

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent settings."""
        for name, fraction in (
            ("fraction_intra_congested", self.fraction_intra_congested),
            ("fraction_inter_congested", self.fraction_inter_congested),
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"{name} must be a probability, got {fraction}")
        if self.episodes_range[0] < 1 or self.episodes_range[1] < self.episodes_range[0]:
            raise ValueError("invalid episodes_range")


@dataclass
class CongestionSchedule:
    """Congestion events per segment key."""

    events: Dict[SegmentKey, Tuple[CongestionEvent, ...]] = field(default_factory=dict)

    def is_congested(self, key: SegmentKey) -> bool:
        """Whether the segment has any congestion episode."""
        return bool(self.events.get(key))

    def congested_keys(self) -> List[SegmentKey]:
        """All keys with at least one episode."""
        return sorted((key for key, events in self.events.items() if events), key=repr)

    def series(self, key: SegmentKey, times_hours: np.ndarray) -> np.ndarray:
        """Total congestion contribution of one segment over time."""
        times_hours = np.asarray(times_hours, dtype=float)
        total = np.zeros_like(times_hours)
        for event in self.events.get(key, ()):
            total += event.contribution(times_hours)
        return total

    def path_series(self, keys: Sequence[SegmentKey], times_hours: np.ndarray) -> np.ndarray:
        """Summed contribution of a whole path (one value per time)."""
        times_hours = np.asarray(times_hours, dtype=float)
        total = np.zeros_like(times_hours)
        for key in keys:
            if key in self.events:
                total += self.series(key, times_hours)
        return total

    def segment_matrix(
        self, keys: Sequence[SegmentKey], times_hours: np.ndarray
    ) -> np.ndarray:
        """Cumulative congestion per traceroute segment.

        Row ``i`` is the congestion contribution to the RTT of the segment
        ending at hop ``i`` (segments accumulate everything before them).
        """
        times_hours = np.asarray(times_hours, dtype=float)
        matrix = np.zeros((len(keys), times_hours.size))
        running = np.zeros_like(times_hours)
        for index, key in enumerate(keys):
            if key in self.events:
                running = running + self.series(key, times_hours)
            matrix[index] = running
        return matrix


def _sample_amplitude(rng: np.random.Generator, geo: SegmentGeo, config: CongestionConfig) -> float:
    if geo.transcontinental or geo.distance_km >= config.transcontinental_km:
        median = config.transcontinental_amplitude_median
        sigma = config.transcontinental_amplitude_sigma
    elif geo.domestic_us:
        median = config.us_amplitude_median
        sigma = config.us_amplitude_sigma
    else:
        median = config.regional_amplitude_median
        sigma = config.regional_amplitude_sigma
    return float(median * np.exp(rng.normal(0.0, sigma)))


def _sample_events(
    rng: np.random.Generator,
    geo: SegmentGeo,
    duration_hours: float,
    config: CongestionConfig,
    anchored: bool,
) -> Tuple[CongestionEvent, ...]:
    episodes = int(rng.integers(config.episodes_range[0], config.episodes_range[1] + 1))
    events = []
    for number in range(episodes):
        length = float(
            24.0
            * config.episode_duration_median_days
            * np.exp(rng.normal(0.0, config.episode_duration_sigma))
        )
        if anchored and number == 0:
            start = float(rng.uniform(*config.anchor_start_range_hours))
            length = max(length, 24.0 * config.anchor_min_duration_days)
        else:
            start = float(rng.uniform(0.0, max(duration_hours - 24.0, 1.0)))
        events.append(
            CongestionEvent(
                amplitude_ms=_sample_amplitude(rng, geo, config),
                start_hour=start,
                end_hour=min(start + length, duration_hours),
                peak_local_hour=float(rng.uniform(*config.peak_local_hour_range)),
                width_hours=float(rng.uniform(*config.width_hours_range)),
                longitude=geo.longitude,
            )
        )
    return tuple(events)


def assign_congestion(
    segments: Dict[SegmentKey, SegmentGeo],
    crossings: Dict[SegmentKey, int],
    duration_hours: float,
    config: Optional[CongestionConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> CongestionSchedule:
    """Choose congested segments and sample their episodes.

    Intra-AS segments are drawn uniformly; interdomain segments are drawn
    with probability increasing in how many measured paths cross them
    (popular interconnects run hot), reproducing the paper's observation
    that congested interconnections, weighted by crossing paths, outweigh
    congested internal links.

    Args:
        segments: Geography per segment key.
        crossings: Number of measured paths crossing each key.
        duration_hours: Study window length.
        config: Assigner knobs.
        rng: Randomness source; defaults to a fixed seed.
    """
    config = config or CongestionConfig()
    config.validate()
    rng = rng if rng is not None else np.random.default_rng(CONGESTION_SEED)
    schedule = CongestionSchedule()

    intra_keys = sorted((key for key, geo in segments.items() if geo.kind == "i"), key=repr)
    inter_keys = sorted((key for key, geo in segments.items() if geo.kind == "x"), key=repr)

    def anchor_probability(key: SegmentKey) -> float:
        # Very popular segments serve hundreds of pairs; anchoring them
        # would flag a large share of the pair population at once, which a
        # 2%-congested world does not do.  Scale the anchor chance down
        # with popularity (unless disabled).
        halflife = config.anchor_popularity_halflife
        if halflife is None:
            return config.anchor_fraction
        popularity = max(1, crossings.get(key, 1))
        return config.anchor_fraction * halflife / (halflife + popularity)

    for key in intra_keys:
        probability = config.fraction_intra_congested
        if segments[key].transcontinental:
            probability *= config.transcontinental_weight
        if rng.random() < probability:
            anchored = bool(rng.random() < anchor_probability(key))
            schedule.events[key] = _sample_events(
                rng, segments[key], duration_hours, config, anchored
            )

    if inter_keys:
        weights = np.array(
            [max(1, crossings.get(key, 1)) ** config.popularity_bias_inter for key in inter_keys],
            dtype=float,
        )
        for index, key in enumerate(inter_keys):
            geo = segments[key]
            if geo.peering:
                weights[index] *= config.peer_weight_multiplier
            if geo.transcontinental:
                weights[index] *= config.transcontinental_weight
        # Scale selection probabilities so the expected count matches the
        # configured fraction while popular links stay more likely.
        target = config.fraction_inter_congested * len(inter_keys)
        probabilities = np.minimum(1.0, weights * target / weights.sum())
        for key, probability in zip(inter_keys, probabilities):
            if rng.random() < probability:
                anchored = bool(rng.random() < anchor_probability(key))
                schedule.events[key] = _sample_events(
                    rng, segments[key], duration_hours, config, anchored
                )

    return schedule
