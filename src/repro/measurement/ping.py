"""The ping engine: end-to-end RTT sampling over realized paths.

The short-term campaign (Section 2.2) pings a pre-selected set of servers
from every cluster each 15 minutes; only end-to-end RTTs are recorded, so
the vectorized interface returns a plain array (NaN marks lost probes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.measurement.congestionmodel import CongestionSchedule
from repro.measurement.loss import LossModel
from repro.measurement.realization import PathRealization
from repro.measurement.rttmodel import DelayModel

__all__ = ["ping_series", "DEFAULT_LOSS_PROBABILITY"]

DEFAULT_LOSS_PROBABILITY = 0.005
"""Per-probe loss probability (server-to-server paths lose very little)."""


def ping_series(
    realization: PathRealization,
    times_hours: np.ndarray,
    rng: np.random.Generator,
    delay_model: Optional[DelayModel] = None,
    congestion: Optional[CongestionSchedule] = None,
    loss_probability: float = DEFAULT_LOSS_PROBABILITY,
    loss_model: Optional[LossModel] = None,
) -> np.ndarray:
    """Ping RTT samples at each time (ms); lost probes are NaN.

    Args:
        realization: The path in effect for the whole series (callers stitch
            series across routing epochs).
        times_hours: Sample times.
        rng: Randomness source.
        delay_model: Delay model (default-calibrated when omitted).
        congestion: Congestion schedule shared with traceroute probes.
        loss_probability: Flat per-probe loss chance; ignored when a
            ``loss_model`` is given.
        loss_model: Congestion-coupled loss: probes drop more often while
            the path's congestion delay is high (the substrate for the
            packet-loss follow-up the paper's conclusion calls for).
    """
    if not 0.0 <= loss_probability <= 1.0:
        raise ValueError(f"loss_probability must be a probability, got {loss_probability}")
    delay_model = delay_model or DelayModel()
    rtt = delay_model.rtt_series(realization, times_hours, rng, congestion)
    if loss_model is not None:
        lift = (
            congestion.path_series(realization.segment_keys, times_hours)
            if congestion is not None
            else np.zeros(np.asarray(times_hours).size)
        )
        rtt[loss_model.sample_losses(rng, lift)] = np.nan
    elif loss_probability > 0.0:
        lost = rng.random(rtt.size) < loss_probability
        rtt[lost] = np.nan
    return rtt
