"""Measurement-platform substrate: the CDN's traceroute and ping machinery.

- :mod:`repro.measurement.realization` -- expand an AS-level path into the
  concrete router-level path a probe traverses: hop addresses, ground-truth
  and BGP-mapped owners, per-segment distances, and the observed AS path
  after imputation.
- :mod:`repro.measurement.rttmodel` -- the composable delay model
  (propagation, queueing noise, spikes).
- :mod:`repro.measurement.congestionmodel` -- diurnal congestion processes
  attached to path segments.
- :mod:`repro.measurement.traceroute` -- the traceroute engine: single
  probes with per-hop RTTs, and vectorized series generation for campaign
  datasets; classic vs Paris flavors with their artifact profiles.
- :mod:`repro.measurement.ping` -- the ping engine.
- :mod:`repro.measurement.scheduler` -- campaign time grids (every 3 hours
  for 16 months, every 30/15 minutes for short campaigns).
- :mod:`repro.measurement.platform` -- the façade tying topology, routing,
  dynamics and congestion together behind the API datasets are built on.
"""

from repro.measurement.congestionmodel import (
    CongestionConfig,
    CongestionEvent,
    CongestionSchedule,
    assign_congestion,
)
from repro.measurement.ping import ping_series
from repro.measurement.platform import MeasurementPlatform, PlatformConfig
from repro.measurement.realization import HopSpec, PathRealization, SegmentKey, realize_path
from repro.measurement.rttmodel import DelayModel, DelayParams
from repro.measurement.scheduler import CampaignGrid
from repro.measurement.traceroute import (
    TraceOutcome,
    TracerouteEngine,
    TracerouteFlavor,
    TraceSampleSeries,
)

__all__ = [
    "HopSpec",
    "PathRealization",
    "SegmentKey",
    "realize_path",
    "DelayModel",
    "DelayParams",
    "CongestionConfig",
    "CongestionEvent",
    "CongestionSchedule",
    "assign_congestion",
    "TracerouteEngine",
    "TracerouteFlavor",
    "TraceOutcome",
    "TraceSampleSeries",
    "ping_series",
    "CampaignGrid",
    "MeasurementPlatform",
    "PlatformConfig",
]
