"""Pull-based record sources for the streaming engine.

A *stream unit* is one (src, dst, version) pair's campaign: its records
in round order plus any static per-pair context (the localization
window's hop metadata).  Sources yield units one at a time -- each unit
is built on demand with the exact batch builders from
:mod:`repro.datasets` (same named RNG streams, same epoch walk), so a
record stream replayed through the operators carries bit-identical
sample values -- but only ever holds *one* pair's timeline in memory,
never the whole-campaign dict the batch datasets materialize.

Sources:

- :class:`LongTermTraceSource` / :class:`PingSource` /
  :class:`SegmentTraceSource` -- units sampled live from a
  :class:`~repro.measurement.platform.MeasurementPlatform`.
- :class:`LongTermFileSource` -- units replayed from a persisted NPZ
  archive via :func:`repro.datasets.io.iter_longterm`.
- :class:`ShardedSource` -- fans a platform source's units across
  forked worker processes (the :func:`repro.datasets.parallel.fork_map`
  model: fork inheritance in, pickled results + metric deltas out) with
  a **bounded** queue per shard, so a slow consumer blocks the producers
  instead of letting them buffer unboundedly.

Because every unit draws from its own named RNG stream, sharding and
resume order never influence any random draw: a sharded stream, a serial
stream, and the batch pipeline all see the same sample values.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from queue import Empty as _QueueEmpty
from queue import Full as _QueueFull
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.datasets.columnar import CampaignKernels
from repro.datasets.longterm import LongTermConfig, _build_timeline
from repro.datasets.shortterm import (
    SegmentSeries,
    ShortTermConfig,
    _build_ping_timeline,
    _build_trace_entry,
)
from repro.datasets.timeline import PingTimeline, TraceTimeline
from repro.measurement.platform import MeasurementPlatform
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.stream.columns import PingColumns, SegmentColumns, TraceColumns
from repro.stream.operators import SegmentMeta
from repro.stream.records import PingRecord, SegmentRecord, TracerouteRecord, UnitKey
from repro.topology.cdn import Server

__all__ = [
    "StreamUnit",
    "trace_unit",
    "ping_unit",
    "segment_unit",
    "LongTermTraceSource",
    "PingSource",
    "SegmentTraceSource",
    "LongTermFileSource",
    "WindowedSource",
    "ShardedSource",
    "ShardError",
]


@dataclass
class StreamUnit:
    """One pair-campaign's payload, in round order.

    The payload is either ``records`` (per-round objects, the original
    wire shape) or ``columns`` (the same rounds as parallel arrays, which
    the vectorized operators consume wholesale) -- never both.  ``meta``
    carries the static per-pair context an operator needs before the
    first record (only localization units have any); a unit with no
    payload and no meta is a placeholder for a pair the builders skipped
    (kept so unit indices stay aligned with the task list across
    checkpoint/resume).
    """

    key: UnitKey
    kind: str  # "trace" | "ping" | "segment"
    records: Tuple[object, ...]
    meta: Optional[SegmentMeta] = None
    columns: Optional[object] = None

    @property
    def record_count(self) -> int:
        """Rounds carried by this unit, whatever the payload shape."""
        if self.columns is not None:
            return len(self.columns)
        return len(self.records)

    def iter_records(self) -> Iterator[object]:
        """Per-round records, whatever the payload shape.

        Columnar units materialize records lazily; they are identical to
        the ones the object path would have carried.
        """
        if self.columns is not None:
            yield from self.columns.records()
        else:
            yield from self.records


def trace_unit(timeline: TraceTimeline, columnar: bool = False) -> StreamUnit:
    """Decompose one long-term timeline into a record unit."""
    key = (timeline.src_server_id, timeline.dst_server_id, int(timeline.version))
    if columnar:
        return StreamUnit(
            key=key, kind="trace", records=(),
            columns=TraceColumns.from_timeline(timeline),
        )
    times = timeline.times_hours.tolist()
    rtts = timeline.rtt_ms.tolist()
    outcomes = timeline.outcome.tolist()
    path_ids = timeline.path_id.tolist()
    paths = timeline.paths
    records = tuple(
        TracerouteRecord(
            src=key[0],
            dst=key[1],
            version=key[2],
            round_index=index,
            time_hours=times[index],
            rtt_ms=rtts[index],
            outcome=outcomes[index],
            as_path=paths[path_ids[index]] if path_ids[index] >= 0 else None,
        )
        for index in range(len(times))
    )
    return StreamUnit(key=key, kind="trace", records=records)


def ping_unit(timeline: PingTimeline, columnar: bool = False) -> StreamUnit:
    """Decompose one ping timeline into a record unit."""
    key = (timeline.src_server_id, timeline.dst_server_id, int(timeline.version))
    if columnar:
        return StreamUnit(
            key=key, kind="ping", records=(),
            columns=PingColumns.from_timeline(timeline),
        )
    times = timeline.times_hours.tolist()
    rtts = timeline.rtt_ms.tolist()
    records = tuple(
        PingRecord(
            src=key[0],
            dst=key[1],
            version=key[2],
            round_index=index,
            time_hours=times[index],
            rtt_ms=rtts[index],
        )
        for index in range(len(times))
    )
    return StreamUnit(key=key, kind="ping", records=records)


def segment_unit(
    key: UnitKey, entry: Optional[SegmentSeries], columnar: bool = False
) -> StreamUnit:
    """Decompose one per-hop series into a record unit (or a placeholder)."""
    if entry is None:
        return StreamUnit(key=key, kind="segment", records=())
    if columnar:
        meta = SegmentMeta(
            hop_addresses=entry.hop_addresses,
            segment_keys=entry.segment_keys,
            static_path=entry.static_path,
        )
        return StreamUnit(
            key=key, kind="segment", records=(), meta=meta,
            columns=SegmentColumns.from_entry(key, entry),
        )
    times = entry.times_hours.tolist()
    columns = entry.hop_rtt_ms.T.tolist()
    records = tuple(
        SegmentRecord(
            src=key[0],
            dst=key[1],
            version=key[2],
            round_index=index,
            time_hours=times[index],
            hop_rtt_ms=tuple(columns[index]),
        )
        for index in range(len(times))
    )
    meta = SegmentMeta(
        hop_addresses=entry.hop_addresses,
        segment_keys=entry.segment_keys,
        static_path=entry.static_path,
    )
    return StreamUnit(key=key, kind="segment", records=records, meta=meta)


def _version_tasks(
    pairs: Sequence[Tuple[Server, Server]], versions
) -> List[Tuple[Server, Server, object]]:
    """The batch builders' (src, dst, version) task list, in their order."""
    return [
        (src, dst, version)
        for src, dst in pairs
        for version in versions
        if src.address(version) is not None and dst.address(version) is not None
    ]


class _PlatformSource:
    """Shared plumbing of the live platform-backed sources."""

    kind = "unit"

    def __init__(
        self,
        platform: MeasurementPlatform,
        trim_realizations: bool,
        columnar: bool = True,
    ) -> None:
        self.platform = platform
        self.trim_realizations = trim_realizations
        self.columnar = columnar
        self.kernels: Optional[CampaignKernels] = None
        self.tasks: List[Tuple[Server, Server, object]] = []

    def __len__(self) -> int:
        return len(self.tasks)

    def _build(self, src: Server, dst: Server, version) -> StreamUnit:
        raise NotImplementedError

    def unit_at(self, index: int) -> StreamUnit:
        """Build the unit of one task (random access, for shards/resume)."""
        src, dst, version = self.tasks[index]
        unit = self._build(src, dst, version)
        if self.trim_realizations:
            # Bounded-memory invariant: a unit leaves no realization
            # cache behind.  The next unit of the same pair rebuilds its
            # (cheap, deterministic) realizations.
            self.platform.drop_realizations(src.server_id, dst.server_id)
            if self.kernels is not None:
                self.kernels.drop_pair(src.server_id, dst.server_id)
        obs_metrics.counter("stream.units").inc()
        return unit

    def __iter__(self) -> Iterator[StreamUnit]:
        for index in range(len(self.tasks)):
            yield self.unit_at(index)


class LongTermTraceSource(_PlatformSource):
    """Long-term traceroute units sampled live from the platform."""

    kind = "trace"

    def __init__(
        self,
        platform: MeasurementPlatform,
        config: Optional[LongTermConfig] = None,
        pairs: Optional[Sequence[Tuple[Server, Server]]] = None,
        trim_realizations: bool = True,
        columnar: bool = True,
    ) -> None:
        super().__init__(platform, trim_realizations, columnar)
        self.config = config or LongTermConfig()
        self.grid = self.config.grid()
        if self.grid.end_hour > platform.config.duration_hours + 1e-9:
            raise ValueError(
                f"campaign covers {self.grid.end_hour:.0f}h but the platform "
                f"simulates only {platform.config.duration_hours:.0f}h"
            )
        if pairs is None:
            pairs = platform.server_pairs(dual_stack_only=self.config.dual_stack_only)
        self.tasks = _version_tasks(list(pairs), self.config.versions)
        if self.columnar:
            self.kernels = CampaignKernels(platform, self.grid)

    def _build(self, src: Server, dst: Server, version) -> StreamUnit:
        if self.kernels is not None:
            timeline = self.kernels.build_trace_timeline(src, dst, version)
            return trace_unit(timeline, columnar=True)
        timeline = _build_timeline(self.platform, src, dst, version, self.grid)
        return trace_unit(timeline)


class PingSource(_PlatformSource):
    """Short-term ping units sampled live from the platform."""

    kind = "ping"

    def __init__(
        self,
        platform: MeasurementPlatform,
        config: Optional[ShortTermConfig] = None,
        pairs: Optional[Sequence[Tuple[Server, Server]]] = None,
        trim_realizations: bool = True,
        columnar: bool = True,
    ) -> None:
        super().__init__(platform, trim_realizations, columnar)
        self.config = config or ShortTermConfig()
        self.grid = self.config.ping_grid()
        if self.grid.end_hour > platform.config.duration_hours + 1e-9:
            raise ValueError(
                f"campaign covers {self.grid.end_hour:.0f}h but the platform "
                f"simulates only {platform.config.duration_hours:.0f}h"
            )
        if pairs is None:
            pairs = platform.server_pairs(dual_stack_only=False)
        self.tasks = _version_tasks(list(pairs), self.config.versions)
        self._times = self.grid.times()
        if self.columnar:
            self.kernels = CampaignKernels(platform, self.grid)

    def _build(self, src: Server, dst: Server, version) -> StreamUnit:
        if self.kernels is not None:
            timeline = self.kernels.build_ping_timeline(
                src, dst, version, self.config.congestion_coupled_loss
            )
            return ping_unit(timeline, columnar=True)
        timeline = _build_ping_timeline(
            self.platform, src, dst, version, self._times, self.config
        )
        return ping_unit(timeline)


class SegmentTraceSource(_PlatformSource):
    """Per-hop traceroute units for the pairs flagged by the ping analysis."""

    kind = "segment"

    def __init__(
        self,
        platform: MeasurementPlatform,
        pairs: Sequence[Tuple[Server, Server]],
        config: Optional[ShortTermConfig] = None,
        trim_realizations: bool = True,
        columnar: bool = True,
    ) -> None:
        super().__init__(platform, trim_realizations, columnar)
        self.config = config or ShortTermConfig()
        self.grid = self.config.trace_grid()
        if self.grid.end_hour > platform.config.duration_hours + 1e-9:
            raise ValueError(
                f"campaign covers {self.grid.end_hour:.0f}h but the platform "
                f"simulates only {platform.config.duration_hours:.0f}h"
            )
        self.tasks = _version_tasks(list(pairs), self.config.versions)
        self._times = self.grid.times()

    def _build(self, src: Server, dst: Server, version) -> StreamUnit:
        # The per-hop builder only runs for the (few) flagged pairs, so
        # it stays on the object path; only the payload shape changes.
        entry = _build_trace_entry(
            self.platform, src, dst, version, self._times, self.grid
        )
        return segment_unit(
            (src.server_id, dst.server_id, int(version)), entry, self.columnar
        )


class LongTermFileSource:
    """Long-term units replayed one at a time from a persisted NPZ archive."""

    kind = "trace"

    def __init__(self, path, columnar: bool = False) -> None:
        self.path = path
        self.columnar = columnar

    def __iter__(self) -> Iterator[StreamUnit]:
        from repro.datasets.io import iter_longterm

        for timeline in iter_longterm(self.path):
            obs_metrics.counter("stream.units").inc()
            yield trace_unit(timeline, columnar=self.columnar)


class WindowedSource:
    """Restrict a platform source's units to grid rounds ``[low, high)``.

    The campaign service feeds operators one *cycle* (a contiguous slice
    of the measurement grid) at a time.  Every per-(pair, epoch) RNG
    stream is position-fixed in the full grid, so the wrapped source
    still builds each pair's whole-campaign timeline -- identical draws
    to the batch pipeline -- and the window is cut out afterwards.  The
    concatenation of a campaign's windows therefore feeds an operator
    exactly the full timeline, bit for bit, however the grid is cut into
    cycles (the incremental operators carry their cross-boundary state
    in ``state.last`` / ring windows / P² estimators).

    Random access (``unit_at``) and ``__len__`` delegate to the wrapped
    source, so a windowed source shards and resumes exactly like the
    source it wraps.
    """

    def __init__(self, source, low: int, high: int) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid window [{low}, {high})")
        self.source = source
        self.low = int(low)
        self.high = int(high)

    @property
    def kind(self) -> str:
        """The wrapped source's unit kind."""
        return self.source.kind

    def __len__(self) -> int:
        return len(self.source)

    def unit_at(self, index: int) -> StreamUnit:
        """The wrapped source's unit, cut down to the window's rounds."""
        unit = self.source.unit_at(index)
        if unit.columns is not None:
            return StreamUnit(
                key=unit.key,
                kind=unit.kind,
                records=(),
                meta=unit.meta,
                columns=unit.columns.slice(self.low, self.high),
            )
        return StreamUnit(
            key=unit.key,
            kind=unit.kind,
            records=unit.records[self.low:self.high],
            meta=unit.meta,
        )

    def __iter__(self) -> Iterator[StreamUnit]:
        for index in range(len(self.source)):
            yield self.unit_at(index)


# ---------------------------------------------------------------------------
# Sharded fan-out with bounded per-shard queues
# ---------------------------------------------------------------------------

_DONE = "__shard_done__"


class ShardError(RuntimeError):
    """A shard worker died; carries the shard's traceback and metrics.

    ``metrics_delta`` is the failing worker's registry delta since its
    last completed unit -- the counters/histograms the doomed unit
    managed to record before the exception -- so a post-mortem sees how
    far into the unit the shard got, not just the traceback.
    """

    def __init__(self, shard: int, worker_traceback: str, metrics_delta) -> None:
        counters = (metrics_delta or {}).get("counters", {})
        context = (
            "; metrics delta: "
            + ", ".join(f"{name}={counters[name]:g}" for name in sorted(counters))
            if counters
            else ""
        )
        super().__init__(
            f"stream shard {shard} failed{context}\n{worker_traceback}"
        )
        self.shard = shard
        self.metrics_delta = metrics_delta or {}


def _shard_worker(
    source, worker_index: int, shards: int, start: int, queue, stop
) -> None:
    """Worker loop: build this shard's units and push them with telemetry.

    The queue is bounded, so ``put`` blocks when the consumer lags --
    that is the backpressure contract.  ``stop`` is the drain event: a
    consumer that abandons the stream mid-window sets it, and the worker
    exits cleanly at the next unit boundary (or the next ``put`` retry)
    instead of being terminated mid-write.  Counters incremented inside
    the builders travel back as per-unit registry snapshot deltas,
    exactly like :func:`repro.datasets.parallel.fork_map` workers -- and
    on a crash the delta of the half-finished unit rides along with the
    traceback.
    """
    registry = obs_metrics.get_registry()
    baseline = registry.snapshot()

    def _put(item) -> bool:
        """Bounded put that gives up when the consumer has drained away."""
        while not stop.is_set():
            try:
                queue.put(item, timeout=0.1)
                return True
            except _QueueFull:
                continue
        return False

    try:
        for index in range(start + worker_index, len(source), shards):
            if stop.is_set():
                return
            baseline = registry.snapshot()
            unit = source.unit_at(index)
            if not _put(("unit", index, unit, registry.delta_since(baseline))):
                return
        _put((_DONE, worker_index, None, None))
    except BaseException:  # surfaced to the parent, never swallowed
        _put(
            ("error", worker_index, traceback.format_exc(),
             registry.delta_since(baseline))
        )


class ShardedSource:
    """Fan a platform source's units across forked workers.

    Worker ``w`` of ``shards`` builds units ``start+w, start+w+shards,
    ...`` and pushes them into its own bounded queue
    (``queue_units`` deep); the parent pops queues round-robin in global
    unit order, so consumers see exactly the serial order.  Falls back to
    the serial loop for one shard or platforms without ``fork``.
    """

    def __init__(self, source, shards: int, queue_units: int = 4) -> None:
        if queue_units < 1:
            raise ValueError("queue_units must be positive")
        self.source = source
        self.shards = int(shards)
        self.queue_units = int(queue_units)
        self.last_workers: List[multiprocessing.Process] = []
        """The worker processes of the most recent fan-out (diagnostics:
        after the iterator is exhausted or closed, all must be dead)."""

    @property
    def kind(self) -> str:
        """The wrapped source's unit kind."""
        return self.source.kind

    def __len__(self) -> int:
        return len(self.source)

    def iter_from(self, start: int = 0) -> Iterator[StreamUnit]:
        """Yield units ``start..`` in order, building them across shards.

        Live telemetry per pop: labeled per-shard queue-depth gauges and
        receive counters (``stream.queue_depth{shard=N}`` /
        ``stream.shard_units{shard=N}``), a ``stream.merge_lag`` gauge
        (units built by workers but not yet merged into the ordered
        stream), and status-board heartbeats -- the last time each
        shard delivered a unit -- for ``/status`` and the dashboard.
        """
        total = len(self.source)
        shards = min(self.shards, max(1, total - start))
        registry = obs_metrics.get_registry()
        status = obs_live.get_status()
        if shards <= 1 or "fork" not in multiprocessing.get_all_start_methods():
            status.set_shards(1)
            serial_units = registry.counter("stream.shard_units{shard=0}")
            for index in range(start, total):
                unit = self.source.unit_at(index)
                serial_units.inc()
                status.shard_unit(0)
                yield unit
            return

        status.set_shards(shards)
        depth_gauge = registry.gauge("stream.queue_depth")
        lag_gauge = registry.gauge("stream.merge_lag")
        # Distribution of the instantaneous lag (units built by workers
        # but not yet merged), sampled at every pop -- the p99 of this is
        # the backpressure number the service benchmark reports.
        lag_hist = registry.histogram(
            "stream.merge_lag_units", buckets=(0.0, 1.0, 2.0, 4.0, 8.0,
                                               16.0, 32.0, 64.0, 128.0)
        )
        shard_depths = [
            registry.gauge(f"stream.queue_depth{{shard={worker}}}")
            for worker in range(shards)
        ]
        shard_units = [
            registry.counter(f"stream.shard_units{{shard={worker}}}")
            for worker in range(shards)
        ]
        context = multiprocessing.get_context("fork")
        stop = context.Event()
        queues = [context.Queue(maxsize=self.queue_units) for _ in range(shards)]
        workers = [
            context.Process(
                target=_shard_worker,
                args=(self.source, worker, shards, start, queues[worker], stop),
                daemon=True,
            )
            for worker in range(shards)
        ]
        self.last_workers = workers
        for process in workers:
            process.start()
        try:
            for index in range(start, total):
                shard = (index - start) % shards
                queue = queues[shard]
                try:
                    depth_gauge.set(queue.qsize())
                    shard_depths[shard].set(queue.qsize())
                    lag = sum(q.qsize() for q in queues)
                    lag_gauge.set(lag)
                    lag_hist.observe(lag)
                except NotImplementedError:  # macOS has no qsize
                    pass
                tag, value, payload, delta = queue.get()
                if tag == "error":
                    if delta:
                        registry.merge(delta)
                    raise ShardError(value, payload, delta)
                if value != index:  # pragma: no cover - ordering invariant
                    raise RuntimeError(
                        f"stream shard returned unit {value}, expected {index}"
                    )
                registry.merge(delta)
                shard_units[shard].inc()
                status.shard_unit(shard)
                yield payload
        finally:
            self._drain(workers, queues, stop)

    @staticmethod
    def _drain(workers, queues, stop, join_timeout: float = 5.0) -> None:
        """Deterministic shutdown of a (possibly mid-window) fan-out.

        Order matters: signal the stop event first so every producer
        exits at its next unit boundary or ``put`` retry, then keep the
        queues empty so a producer blocked inside a full bounded queue
        can finish its ``put`` and observe the event.  Workers are only
        terminated as a last resort after the join timeout -- the common
        path (completion, consumer ``close()``, supervisor drain) ends
        every worker cleanly with exit code 0 and no stuck queue feeder
        threads.
        """
        stop.set()
        deadline = time.monotonic() + join_timeout
        pending = list(workers)
        while pending and time.monotonic() < deadline:
            for queue in queues:  # unblock producers stuck in put()
                try:
                    while True:
                        queue.get_nowait()
                except (_QueueEmpty, OSError, ValueError):
                    pass
            pending = [process for process in pending if process.is_alive()]
            if pending:
                pending[0].join(timeout=0.05)
        for process in pending:  # pragma: no cover - hung-worker fallback
            process.terminate()
        for process in workers:
            process.join()
        for queue in queues:
            queue.cancel_join_thread()
            queue.close()

    def __iter__(self) -> Iterator[StreamUnit]:
        return self.iter_from(0)
