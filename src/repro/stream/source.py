"""Pull-based record sources for the streaming engine.

A *stream unit* is one (src, dst, version) pair's campaign: its records
in round order plus any static per-pair context (the localization
window's hop metadata).  Sources yield units one at a time -- each unit
is built on demand with the exact batch builders from
:mod:`repro.datasets` (same named RNG streams, same epoch walk), so a
record stream replayed through the operators carries bit-identical
sample values -- but only ever holds *one* pair's timeline in memory,
never the whole-campaign dict the batch datasets materialize.

Sources:

- :class:`LongTermTraceSource` / :class:`PingSource` /
  :class:`SegmentTraceSource` -- units sampled live from a
  :class:`~repro.measurement.platform.MeasurementPlatform`.
- :class:`LongTermFileSource` -- units replayed from a persisted NPZ
  archive via :func:`repro.datasets.io.iter_longterm`.
- :class:`ShardedSource` -- fans a platform source's units across
  forked worker processes (the :func:`repro.datasets.parallel.fork_map`
  model: fork inheritance in, pickled results + metric deltas out) with
  a **bounded** queue per shard, so a slow consumer blocks the producers
  instead of letting them buffer unboundedly.

Because every unit draws from its own named RNG stream, sharding and
resume order never influence any random draw: a sharded stream, a serial
stream, and the batch pipeline all see the same sample values.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from queue import Empty as _QueueEmpty
from queue import Full as _QueueFull
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datasets.columnar import CampaignKernels
from repro.faults.completeness import (
    CompletenessView,
    DataCompleteness,
    MissingUnit,
)
from repro.faults.plane import (
    InjectedFault,
    SupervisionPolicy,
    backoff_delay,
    get_plane,
)
from repro.datasets.longterm import LongTermConfig, _build_timeline
from repro.datasets.shortterm import (
    SegmentSeries,
    ShortTermConfig,
    _build_ping_timeline,
    _build_trace_entry,
)
from repro.datasets.timeline import PingTimeline, TraceTimeline
from repro.measurement.platform import MeasurementPlatform
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.stream.columns import PingColumns, SegmentColumns, TraceColumns
from repro.stream.operators import SegmentMeta
from repro.stream.records import PingRecord, SegmentRecord, TracerouteRecord, UnitKey
from repro.topology.cdn import Server

__all__ = [
    "StreamUnit",
    "trace_unit",
    "ping_unit",
    "segment_unit",
    "LongTermTraceSource",
    "PingSource",
    "SegmentTraceSource",
    "LongTermFileSource",
    "WindowedSource",
    "ShardedSource",
    "ShardError",
    "MissingUnit",
]


@dataclass
class StreamUnit:
    """One pair-campaign's payload, in round order.

    The payload is either ``records`` (per-round objects, the original
    wire shape) or ``columns`` (the same rounds as parallel arrays, which
    the vectorized operators consume wholesale) -- never both.  ``meta``
    carries the static per-pair context an operator needs before the
    first record (only localization units have any); a unit with no
    payload and no meta is a placeholder for a pair the builders skipped
    (kept so unit indices stay aligned with the task list across
    checkpoint/resume).
    """

    key: UnitKey
    kind: str  # "trace" | "ping" | "segment"
    records: Tuple[object, ...]
    meta: Optional[SegmentMeta] = None
    columns: Optional[object] = None

    @property
    def record_count(self) -> int:
        """Rounds carried by this unit, whatever the payload shape."""
        if self.columns is not None:
            return len(self.columns)
        return len(self.records)

    def iter_records(self) -> Iterator[object]:
        """Per-round records, whatever the payload shape.

        Columnar units materialize records lazily; they are identical to
        the ones the object path would have carried.
        """
        if self.columns is not None:
            yield from self.columns.records()
        else:
            yield from self.records


def trace_unit(timeline: TraceTimeline, columnar: bool = False) -> StreamUnit:
    """Decompose one long-term timeline into a record unit."""
    key = (timeline.src_server_id, timeline.dst_server_id, int(timeline.version))
    if columnar:
        return StreamUnit(
            key=key, kind="trace", records=(),
            columns=TraceColumns.from_timeline(timeline),
        )
    times = timeline.times_hours.tolist()
    rtts = timeline.rtt_ms.tolist()
    outcomes = timeline.outcome.tolist()
    path_ids = timeline.path_id.tolist()
    paths = timeline.paths
    records = tuple(
        TracerouteRecord(
            src=key[0],
            dst=key[1],
            version=key[2],
            round_index=index,
            time_hours=times[index],
            rtt_ms=rtts[index],
            outcome=outcomes[index],
            as_path=paths[path_ids[index]] if path_ids[index] >= 0 else None,
        )
        for index in range(len(times))
    )
    return StreamUnit(key=key, kind="trace", records=records)


def ping_unit(timeline: PingTimeline, columnar: bool = False) -> StreamUnit:
    """Decompose one ping timeline into a record unit."""
    key = (timeline.src_server_id, timeline.dst_server_id, int(timeline.version))
    if columnar:
        return StreamUnit(
            key=key, kind="ping", records=(),
            columns=PingColumns.from_timeline(timeline),
        )
    times = timeline.times_hours.tolist()
    rtts = timeline.rtt_ms.tolist()
    records = tuple(
        PingRecord(
            src=key[0],
            dst=key[1],
            version=key[2],
            round_index=index,
            time_hours=times[index],
            rtt_ms=rtts[index],
        )
        for index in range(len(times))
    )
    return StreamUnit(key=key, kind="ping", records=records)


def segment_unit(
    key: UnitKey, entry: Optional[SegmentSeries], columnar: bool = False
) -> StreamUnit:
    """Decompose one per-hop series into a record unit (or a placeholder)."""
    if entry is None:
        return StreamUnit(key=key, kind="segment", records=())
    if columnar:
        meta = SegmentMeta(
            hop_addresses=entry.hop_addresses,
            segment_keys=entry.segment_keys,
            static_path=entry.static_path,
        )
        return StreamUnit(
            key=key, kind="segment", records=(), meta=meta,
            columns=SegmentColumns.from_entry(key, entry),
        )
    times = entry.times_hours.tolist()
    columns = entry.hop_rtt_ms.T.tolist()
    records = tuple(
        SegmentRecord(
            src=key[0],
            dst=key[1],
            version=key[2],
            round_index=index,
            time_hours=times[index],
            hop_rtt_ms=tuple(columns[index]),
        )
        for index in range(len(times))
    )
    meta = SegmentMeta(
        hop_addresses=entry.hop_addresses,
        segment_keys=entry.segment_keys,
        static_path=entry.static_path,
    )
    return StreamUnit(key=key, kind="segment", records=records, meta=meta)


def _version_tasks(
    pairs: Sequence[Tuple[Server, Server]], versions
) -> List[Tuple[Server, Server, object]]:
    """The batch builders' (src, dst, version) task list, in their order."""
    return [
        (src, dst, version)
        for src, dst in pairs
        for version in versions
        if src.address(version) is not None and dst.address(version) is not None
    ]


class _PlatformSource:
    """Shared plumbing of the live platform-backed sources."""

    kind = "unit"

    def __init__(
        self,
        platform: MeasurementPlatform,
        trim_realizations: bool,
        columnar: bool = True,
    ) -> None:
        self.platform = platform
        self.trim_realizations = trim_realizations
        self.columnar = columnar
        self.kernels: Optional[CampaignKernels] = None
        self.tasks: List[Tuple[Server, Server, object]] = []

    def __len__(self) -> int:
        return len(self.tasks)

    def _build(self, src: Server, dst: Server, version) -> StreamUnit:
        raise NotImplementedError

    def key_hint(self, index: int) -> Tuple[int, int, int]:
        """The unit's logical key without building it (deficit reports)."""
        src, dst, version = self.tasks[index]
        return (src.server_id, dst.server_id, int(version))

    def unit_at(self, index: int) -> StreamUnit:
        """Build the unit of one task (random access, for shards/resume)."""
        src, dst, version = self.tasks[index]
        unit = self._build(src, dst, version)
        if self.trim_realizations:
            # Bounded-memory invariant: a unit leaves no realization
            # cache behind.  The next unit of the same pair rebuilds its
            # (cheap, deterministic) realizations.
            self.platform.drop_realizations(src.server_id, dst.server_id)
            if self.kernels is not None:
                self.kernels.drop_pair(src.server_id, dst.server_id)
        obs_metrics.counter("stream.units").inc()
        return unit

    def __iter__(self) -> Iterator[StreamUnit]:
        for index in range(len(self.tasks)):
            yield self.unit_at(index)


class LongTermTraceSource(_PlatformSource):
    """Long-term traceroute units sampled live from the platform."""

    kind = "trace"

    def __init__(
        self,
        platform: MeasurementPlatform,
        config: Optional[LongTermConfig] = None,
        pairs: Optional[Sequence[Tuple[Server, Server]]] = None,
        trim_realizations: bool = True,
        columnar: bool = True,
    ) -> None:
        super().__init__(platform, trim_realizations, columnar)
        self.config = config or LongTermConfig()
        self.grid = self.config.grid()
        if self.grid.end_hour > platform.config.duration_hours + 1e-9:
            raise ValueError(
                f"campaign covers {self.grid.end_hour:.0f}h but the platform "
                f"simulates only {platform.config.duration_hours:.0f}h"
            )
        if pairs is None:
            pairs = platform.server_pairs(dual_stack_only=self.config.dual_stack_only)
        self.tasks = _version_tasks(list(pairs), self.config.versions)
        if self.columnar:
            self.kernels = CampaignKernels(platform, self.grid)

    def _build(self, src: Server, dst: Server, version) -> StreamUnit:
        if self.kernels is not None:
            timeline = self.kernels.build_trace_timeline(src, dst, version)
            return trace_unit(timeline, columnar=True)
        timeline = _build_timeline(self.platform, src, dst, version, self.grid)
        return trace_unit(timeline)


class PingSource(_PlatformSource):
    """Short-term ping units sampled live from the platform."""

    kind = "ping"

    def __init__(
        self,
        platform: MeasurementPlatform,
        config: Optional[ShortTermConfig] = None,
        pairs: Optional[Sequence[Tuple[Server, Server]]] = None,
        trim_realizations: bool = True,
        columnar: bool = True,
    ) -> None:
        super().__init__(platform, trim_realizations, columnar)
        self.config = config or ShortTermConfig()
        self.grid = self.config.ping_grid()
        if self.grid.end_hour > platform.config.duration_hours + 1e-9:
            raise ValueError(
                f"campaign covers {self.grid.end_hour:.0f}h but the platform "
                f"simulates only {platform.config.duration_hours:.0f}h"
            )
        if pairs is None:
            pairs = platform.server_pairs(dual_stack_only=False)
        self.tasks = _version_tasks(list(pairs), self.config.versions)
        self._times = self.grid.times()
        if self.columnar:
            self.kernels = CampaignKernels(platform, self.grid)

    def _build(self, src: Server, dst: Server, version) -> StreamUnit:
        if self.kernels is not None:
            timeline = self.kernels.build_ping_timeline(
                src, dst, version, self.config.congestion_coupled_loss
            )
            return ping_unit(timeline, columnar=True)
        timeline = _build_ping_timeline(
            self.platform, src, dst, version, self._times, self.config
        )
        return ping_unit(timeline)


class SegmentTraceSource(_PlatformSource):
    """Per-hop traceroute units for the pairs flagged by the ping analysis."""

    kind = "segment"

    def __init__(
        self,
        platform: MeasurementPlatform,
        pairs: Sequence[Tuple[Server, Server]],
        config: Optional[ShortTermConfig] = None,
        trim_realizations: bool = True,
        columnar: bool = True,
    ) -> None:
        super().__init__(platform, trim_realizations, columnar)
        self.config = config or ShortTermConfig()
        self.grid = self.config.trace_grid()
        if self.grid.end_hour > platform.config.duration_hours + 1e-9:
            raise ValueError(
                f"campaign covers {self.grid.end_hour:.0f}h but the platform "
                f"simulates only {platform.config.duration_hours:.0f}h"
            )
        self.tasks = _version_tasks(list(pairs), self.config.versions)
        self._times = self.grid.times()

    def _build(self, src: Server, dst: Server, version) -> StreamUnit:
        # The per-hop builder only runs for the (few) flagged pairs, so
        # it stays on the object path; only the payload shape changes.
        entry = _build_trace_entry(
            self.platform, src, dst, version, self._times, self.grid
        )
        return segment_unit(
            (src.server_id, dst.server_id, int(version)), entry, self.columnar
        )


class LongTermFileSource:
    """Long-term units replayed one at a time from a persisted NPZ archive."""

    kind = "trace"

    def __init__(self, path, columnar: bool = False) -> None:
        self.path = path
        self.columnar = columnar

    def __iter__(self) -> Iterator[StreamUnit]:
        from repro.datasets.io import iter_longterm

        for timeline in iter_longterm(self.path):
            obs_metrics.counter("stream.units").inc()
            yield trace_unit(timeline, columnar=self.columnar)


class WindowedSource:
    """Restrict a platform source's units to grid rounds ``[low, high)``.

    The campaign service feeds operators one *cycle* (a contiguous slice
    of the measurement grid) at a time.  Every per-(pair, epoch) RNG
    stream is position-fixed in the full grid, so the wrapped source
    still builds each pair's whole-campaign timeline -- identical draws
    to the batch pipeline -- and the window is cut out afterwards.  The
    concatenation of a campaign's windows therefore feeds an operator
    exactly the full timeline, bit for bit, however the grid is cut into
    cycles (the incremental operators carry their cross-boundary state
    in ``state.last`` / ring windows / P² estimators).

    Random access (``unit_at``) and ``__len__`` delegate to the wrapped
    source, so a windowed source shards and resumes exactly like the
    source it wraps.
    """

    def __init__(self, source, low: int, high: int) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid window [{low}, {high})")
        self.source = source
        self.low = int(low)
        self.high = int(high)

    @property
    def kind(self) -> str:
        """The wrapped source's unit kind."""
        return self.source.kind

    def __len__(self) -> int:
        return len(self.source)

    def key_hint(self, index: int):
        """Delegate the unit's logical key to the wrapped source."""
        hint = getattr(self.source, "key_hint", None)
        return hint(index) if hint is not None else None

    def unit_at(self, index: int) -> StreamUnit:
        """The wrapped source's unit, cut down to the window's rounds."""
        unit = self.source.unit_at(index)
        if unit.columns is not None:
            return StreamUnit(
                key=unit.key,
                kind=unit.kind,
                records=(),
                meta=unit.meta,
                columns=unit.columns.slice(self.low, self.high),
            )
        return StreamUnit(
            key=unit.key,
            kind=unit.kind,
            records=unit.records[self.low:self.high],
            meta=unit.meta,
        )

    def __iter__(self) -> Iterator[StreamUnit]:
        for index in range(len(self.source)):
            yield self.unit_at(index)


# ---------------------------------------------------------------------------
# Sharded fan-out with bounded per-shard queues
# ---------------------------------------------------------------------------

_DONE = "__shard_done__"


class ShardError(RuntimeError):
    """A shard worker died; carries the shard's traceback and metrics.

    ``metrics_delta`` is the failing worker's registry delta since its
    last completed unit -- the counters/histograms the doomed unit
    managed to record before the exception -- so a post-mortem sees how
    far into the unit the shard got, not just the traceback.
    """

    def __init__(self, shard: int, worker_traceback: str, metrics_delta) -> None:
        counters = (metrics_delta or {}).get("counters", {})
        context = (
            "; metrics delta: "
            + ", ".join(f"{name}={counters[name]:g}" for name in sorted(counters))
            if counters
            else ""
        )
        super().__init__(
            f"stream shard {shard} failed{context}\n{worker_traceback}"
        )
        self.shard = shard
        self.metrics_delta = metrics_delta or {}


def _shard_worker(
    source, worker_index: int, shards: int, start: int, queue, stop
) -> None:
    """Worker loop: build this shard's units and push them with telemetry.

    The queue is bounded, so ``put`` blocks when the consumer lags --
    that is the backpressure contract.  ``stop`` is the drain event: a
    consumer that abandons the stream mid-window sets it, and the worker
    exits cleanly at the next unit boundary (or the next ``put`` retry)
    instead of being terminated mid-write.  Counters incremented inside
    the builders travel back as per-unit registry snapshot deltas,
    exactly like :func:`repro.datasets.parallel.fork_map` workers -- and
    on a crash the delta of the half-finished unit rides along with the
    traceback.
    """
    registry = obs_metrics.get_registry()
    baseline = registry.snapshot()

    def _put(item) -> bool:
        """Bounded put that gives up when the consumer has drained away."""
        while not stop.is_set():
            try:
                queue.put(item, timeout=0.1)
                return True
            except _QueueFull:
                continue
        return False

    try:
        for index in range(start + worker_index, len(source), shards):
            if stop.is_set():
                return
            baseline = registry.snapshot()
            unit = source.unit_at(index)
            if not _put(("unit", index, unit, registry.delta_since(baseline))):
                return
        _put((_DONE, worker_index, None, None))
    except BaseException:  # surfaced to the parent, never swallowed
        _put(
            ("error", worker_index, traceback.format_exc(),
             registry.delta_since(baseline))
        )


_FAILED = "__unit_failed__"


def _injectors(plane, index: int, attempt: int, registry, queue=None) -> None:
    """Fire the per-unit fault injectors scheduled for this attempt.

    Crash exits the process mid-unit (its counter is recomputed by the
    supervising parent -- an ``os._exit`` ships no registry delta);
    stall sleeps inside the unit's delta window; transient raises
    :class:`~repro.faults.plane.InjectedFault` for the retry loop.

    A crash first flushes the queue's feeder thread: units the worker
    already handed off must not be lost to the exit, or the parent
    would misattribute the crash to an earlier index and the
    attempt-gated schedule would lose determinism.
    """
    if plane is None:
        return
    if plane.crash(index, attempt):
        if queue is not None:
            queue.close()
            queue.join_thread()
        os._exit(41)
    stall = plane.stall_s_for(index, attempt)
    if stall > 0:
        registry.counter("faults.injected").inc()
        registry.counter("faults.injected{kind=stall}").inc()
        time.sleep(stall)
    if plane.transient(index, attempt):
        registry.counter("faults.injected").inc()
        registry.counter("faults.injected{kind=transient}").inc()
        raise InjectedFault("transient", f"unit {index} attempt {attempt}")


def _supervised_worker(
    source,
    worker_index: int,
    shards: int,
    start: int,
    queue,
    stop,
    resume_from: int,
    resume_attempt: int,
    policy: SupervisionPolicy,
) -> None:
    """Shard worker with in-process unit retry and fault injection.

    Like :func:`_shard_worker`, but a unit whose build raises (injected
    transient or real) is retried up to ``policy.unit_attempts`` times
    before the worker reports it as *failed* and moves on -- a sick unit
    costs itself, never the shard.  ``resume_from``/``resume_attempt``
    let a restarted incarnation skip the stride prefix its predecessor
    already delivered and continue that unit's attempt numbering, which
    keeps the attempt-gated fault schedule deterministic across
    restarts.
    """
    registry = obs_metrics.get_registry()
    plane = get_plane()
    baseline = registry.snapshot()

    def _put(item) -> bool:
        while not stop.is_set():
            try:
                queue.put(item, timeout=0.1)
                return True
            except _QueueFull:
                continue
        return False

    try:
        for index in range(start + worker_index, len(source), shards):
            if index < resume_from:
                continue
            if stop.is_set():
                return
            base = resume_attempt if index == resume_from else 0
            attempt = base
            baseline = registry.snapshot()
            unit = None
            failure = None
            while True:
                try:
                    _injectors(plane, index, attempt, registry, queue)
                    unit = source.unit_at(index)
                    break
                except Exception:
                    attempt += 1
                    if attempt - base >= policy.unit_attempts:
                        failure = traceback.format_exc()
                        break
            if failure is not None:
                if not _put(
                    (_FAILED, index, failure, registry.delta_since(baseline))
                ):
                    return
                continue
            if not _put(("unit", index, unit, registry.delta_since(baseline))):
                return
        _put((_DONE, worker_index, None, None))
    except BaseException:  # infra failure: surfaced, shard restarts
        _put(
            ("error", worker_index, traceback.format_exc(),
             registry.delta_since(baseline))
        )


class ShardedSource:
    """Fan a platform source's units across forked workers.

    Worker ``w`` of ``shards`` builds units ``start+w, start+w+shards,
    ...`` and pushes them into its own bounded queue
    (``queue_units`` deep); the parent pops queues round-robin in global
    unit order, so consumers see exactly the serial order.  Falls back to
    the serial loop for one shard or platforms without ``fork``.

    With a :class:`~repro.faults.plane.SupervisionPolicy` the fan-out is
    *supervised*: a dead or stalled worker is restarted with
    deterministic exponential backoff (bounded per shard), a shard that
    exhausts its restart budget is quarantined -- the merge keeps going
    and yields :class:`~repro.faults.completeness.MissingUnit` markers
    for the units that shard owned -- with every miss recorded in a
    :class:`DataCompleteness` accountant (consumers record deliveries,
    so supervised and unsupervised runs account identically).  Because
    units are independent pure functions of their index, any schedule of
    crashes and restarts that still delivers every index yields a stream
    byte-identical to the fault-free one.
    """

    def __init__(
        self,
        source,
        shards: int,
        queue_units: int = 4,
        supervision: Optional[SupervisionPolicy] = None,
        completeness: Optional["DataCompleteness | CompletenessView"] = None,
    ) -> None:
        if queue_units < 1:
            raise ValueError("queue_units must be positive")
        self.source = source
        self.shards = int(shards)
        self.queue_units = int(queue_units)
        self.supervision = supervision
        self.completeness = completeness or DataCompleteness()
        self.last_workers: List[multiprocessing.Process] = []
        """The worker processes of the most recent fan-out (diagnostics:
        after the iterator is exhausted or closed, all must be dead)."""

    @property
    def kind(self) -> str:
        """The wrapped source's unit kind."""
        return self.source.kind

    def __len__(self) -> int:
        return len(self.source)

    def iter_from(self, start: int = 0) -> Iterator[StreamUnit]:
        """Yield units ``start..`` in order, building them across shards.

        Live telemetry per pop: labeled per-shard queue-depth gauges and
        receive counters (``stream.queue_depth{shard=N}`` /
        ``stream.shard_units{shard=N}``), a ``stream.merge_lag`` gauge
        (units built by workers but not yet merged into the ordered
        stream), and status-board heartbeats -- the last time each
        shard delivered a unit -- for ``/status`` and the dashboard.
        """
        total = len(self.source)
        shards = min(self.shards, max(1, total - start))
        registry = obs_metrics.get_registry()
        status = obs_live.get_status()
        if self.supervision is not None:
            if "fork" in multiprocessing.get_all_start_methods():
                yield from self._iter_supervised(start, total, shards)
            else:  # pragma: no cover - non-fork platforms
                yield from self._iter_serial_supervised(start, total)
            return
        if shards <= 1 or "fork" not in multiprocessing.get_all_start_methods():
            status.set_shards(1)
            serial_units = registry.counter("stream.shard_units{shard=0}")
            for index in range(start, total):
                unit = self.source.unit_at(index)
                serial_units.inc()
                status.shard_unit(0)
                yield unit
            return

        status.set_shards(shards)
        depth_gauge = registry.gauge("stream.queue_depth")
        lag_gauge = registry.gauge("stream.merge_lag")
        # Distribution of the instantaneous lag (units built by workers
        # but not yet merged), sampled at every pop -- the p99 of this is
        # the backpressure number the service benchmark reports.
        lag_hist = registry.histogram(
            "stream.merge_lag_units", buckets=(0.0, 1.0, 2.0, 4.0, 8.0,
                                               16.0, 32.0, 64.0, 128.0)
        )
        shard_depths = [
            registry.gauge(f"stream.queue_depth{{shard={worker}}}")
            for worker in range(shards)
        ]
        shard_units = [
            registry.counter(f"stream.shard_units{{shard={worker}}}")
            for worker in range(shards)
        ]
        context = multiprocessing.get_context("fork")
        stop = context.Event()
        queues = [context.Queue(maxsize=self.queue_units) for _ in range(shards)]
        workers = [
            context.Process(
                target=_shard_worker,
                args=(self.source, worker, shards, start, queues[worker], stop),
                daemon=True,
            )
            for worker in range(shards)
        ]
        self.last_workers = workers
        for process in workers:
            process.start()
        try:
            for index in range(start, total):
                shard = (index - start) % shards
                queue = queues[shard]
                try:
                    depth_gauge.set(queue.qsize())
                    shard_depths[shard].set(queue.qsize())
                    lag = sum(q.qsize() for q in queues)
                    lag_gauge.set(lag)
                    lag_hist.observe(lag)
                except NotImplementedError:  # macOS has no qsize
                    pass
                tag, value, payload, delta = queue.get()
                if tag == "error":
                    if delta:
                        registry.merge(delta)
                    raise ShardError(value, payload, delta)
                if value != index:  # pragma: no cover - ordering invariant
                    raise RuntimeError(
                        f"stream shard returned unit {value}, expected {index}"
                    )
                registry.merge(delta)
                shard_units[shard].inc()
                status.shard_unit(shard)
                yield payload
        finally:
            self._drain(workers, queues, stop)

    def _iter_supervised(
        self, start: int, total: int, shards: int
    ) -> Iterator[object]:
        """Supervised merge: restart, backoff, quarantine, account.

        Yields :class:`StreamUnit` for delivered units and
        :class:`MissingUnit` markers (same global index order) for units
        lost to a quarantined shard or an exhausted retry budget, so the
        consumer's unit counter -- and therefore checkpoint offsets --
        never skews against unit indices.
        """
        policy = self.supervision
        plane = get_plane()
        registry = obs_metrics.get_registry()
        status = obs_live.get_status()
        completeness = self.completeness
        seed = plane.config.seed if plane is not None else 0
        key_hint = getattr(self.source, "key_hint", None)

        status.set_shards(shards)
        depth_gauge = registry.gauge("stream.queue_depth")
        lag_gauge = registry.gauge("stream.merge_lag")
        lag_hist = registry.histogram(
            "stream.merge_lag_units", buckets=(0.0, 1.0, 2.0, 4.0, 8.0,
                                               16.0, 32.0, 64.0, 128.0)
        )
        shard_units = [
            registry.counter(f"stream.shard_units{{shard={worker}}}")
            for worker in range(shards)
        ]

        context = multiprocessing.get_context("fork")
        stop = context.Event()
        all_workers: List[multiprocessing.Process] = []
        all_queues: List[object] = []
        queues: List[object] = [None] * shards
        procs: List[Optional[multiprocessing.Process]] = [None] * shards
        restarts = [0] * shards
        attempts: Dict[int, int] = {}
        quarantined: Set[int] = set()

        def _spawn(shard: int, resume_from: int, resume_attempt: int) -> None:
            queue = context.Queue(maxsize=self.queue_units)
            process = context.Process(
                target=_supervised_worker,
                args=(self.source, shard, shards, start, queue, stop,
                      resume_from, resume_attempt, policy),
                daemon=True,
            )
            queues[shard] = queue
            procs[shard] = process
            all_queues.append(queue)
            all_workers.append(process)
            process.start()

        def _missing(index: int, shard: int, reason: str) -> MissingUnit:
            key = None
            if key_hint is not None:
                try:
                    key = key_hint(index)
                except Exception:
                    key = None
            marker = MissingUnit(
                index=index, shard=shard, reason=reason, key=key
            )
            completeness.record_missing(marker)
            registry.counter("stream.units_missing").inc()
            return marker

        def _handle_down(shard: int, index: int, cause: str) -> None:
            """One worker incarnation is gone: restart or quarantine."""
            attempt = attempts.get(index, 0)
            if plane is not None and cause == "crash" and plane.crash(
                index, attempt
            ):
                # The exiting worker could not ship this counter itself.
                registry.counter("faults.injected").inc()
                registry.counter("faults.injected{kind=crash}").inc()
            if plane is not None and cause == "stall" and plane.stall_s_for(
                index, attempt
            ) > 0:
                registry.counter("faults.injected").inc()
                registry.counter("faults.injected{kind=stall}").inc()
            attempts[index] = attempt + 1
            restarts[shard] += 1
            registry.counter("shard.restarts").inc()
            registry.counter(f"shard.restarts{{shard={shard}}}").inc()
            if restarts[shard] > policy.max_restarts:
                quarantined.add(shard)
                registry.counter("shard.quarantined").inc()
                registry.counter(f"shard.quarantined{{shard={shard}}}").inc()
                status.shard_state(
                    shard, "quarantined", restarts=restarts[shard]
                )
                return
            status.shard_state(shard, "restarting", restarts=restarts[shard])
            delay = backoff_delay(
                policy.restart_backoff_s, policy.backoff_ceiling_s,
                restarts[shard], seed, shard,
            )
            if delay > 0:
                time.sleep(delay)
            _spawn(shard, index, attempts[index])
            status.shard_state(shard, "ok", restarts=restarts[shard])

        for shard in range(shards):
            _spawn(shard, start, 0)
        self.last_workers = all_workers

        try:
            for index in range(start, total):
                shard = (index - start) % shards
                result = None
                wait_started = time.monotonic()
                while result is None:
                    if shard in quarantined:
                        result = _missing(index, shard, "quarantined")
                        break
                    queue = queues[shard]
                    process = procs[shard]
                    try:
                        depth_gauge.set(queue.qsize())
                        lag = sum(
                            queues[s].qsize() for s in range(shards)
                            if s not in quarantined
                        )
                        lag_gauge.set(lag)
                        lag_hist.observe(lag)
                    except NotImplementedError:  # macOS has no qsize
                        pass
                    try:
                        item = queue.get(timeout=policy.poll_s)
                    except _QueueEmpty:
                        if not process.is_alive():
                            try:  # the dying worker may have delivered
                                item = queue.get_nowait()
                            except _QueueEmpty:
                                _handle_down(shard, index, "crash")
                                wait_started = time.monotonic()
                                continue
                        elif (
                            time.monotonic() - wait_started
                            > policy.stall_timeout_s
                        ):
                            process.terminate()
                            process.join()
                            _handle_down(shard, index, "stall")
                            wait_started = time.monotonic()
                            continue
                        else:
                            continue
                    tag, value, payload, delta = item
                    if tag == "unit":
                        if value != index:  # pragma: no cover - invariant
                            raise RuntimeError(
                                f"stream shard returned unit {value}, "
                                f"expected {index}"
                            )
                        registry.merge(delta)
                        result = payload
                    elif tag == _FAILED:
                        if value != index:  # pragma: no cover - invariant
                            raise RuntimeError(
                                f"stream shard failed unit {value}, "
                                f"expected {index}"
                            )
                        if delta:
                            registry.merge(delta)
                        registry.counter("stream.unit_failures").inc()
                        result = _missing(index, shard, "unit_failed")
                    elif tag == "error":
                        if delta:
                            registry.merge(delta)
                        process.join()
                        _handle_down(shard, index, "error")
                        wait_started = time.monotonic()
                    elif tag == _DONE:  # pragma: no cover - invariant
                        raise RuntimeError(
                            f"stream shard {shard} finished early at "
                            f"unit {index}"
                        )
                if isinstance(result, MissingUnit):
                    yield result
                else:
                    # Delivery accounting belongs to the consumer (it
                    # runs identically on unsupervised paths, keeping
                    # completeness reports byte-identical across modes);
                    # the fan-out only ever records misses.
                    shard_units[shard].inc()
                    status.shard_unit(shard)
                    yield result
        finally:
            self._drain(all_workers, all_queues, stop)

    def _iter_serial_supervised(
        self, start: int, total: int
    ) -> Iterator[object]:  # pragma: no cover - non-fork platforms
        """In-process fallback with the same retry/accounting contract.

        Without ``fork`` a crash injection cannot kill a worker process,
        so crash and stall degrade to retryable in-process faults with a
        budget equivalent to the forked path's
        (``max(unit_attempts, max_restarts + 1)``).
        """
        policy = self.supervision
        plane = get_plane()
        registry = obs_metrics.get_registry()
        status = obs_live.get_status()
        key_hint = getattr(self.source, "key_hint", None)
        status.set_shards(1)
        serial_units = registry.counter("stream.shard_units{shard=0}")
        budget = max(policy.unit_attempts, policy.max_restarts + 1)
        for index in range(start, total):
            attempt = 0
            unit = None
            while True:
                try:
                    if plane is not None:
                        if plane.crash(index, attempt):
                            registry.counter("faults.injected").inc()
                            registry.counter(
                                "faults.injected{kind=crash}"
                            ).inc()
                            raise InjectedFault(
                                "crash", f"unit {index} (in-process)"
                            )
                        stall = plane.stall_s_for(index, attempt)
                        if stall > 0:
                            registry.counter("faults.injected").inc()
                            registry.counter(
                                "faults.injected{kind=stall}"
                            ).inc()
                            time.sleep(stall)
                        if plane.transient(index, attempt):
                            registry.counter("faults.injected").inc()
                            registry.counter(
                                "faults.injected{kind=transient}"
                            ).inc()
                            raise InjectedFault(
                                "transient", f"unit {index} attempt {attempt}"
                            )
                    unit = self.source.unit_at(index)
                    break
                except Exception:
                    attempt += 1
                    if attempt >= budget:
                        break
            if unit is None:
                key = None
                if key_hint is not None:
                    try:
                        key = key_hint(index)
                    except Exception:
                        key = None
                marker = MissingUnit(
                    index=index, shard=0, reason="unit_failed", key=key
                )
                self.completeness.record_missing(marker)
                registry.counter("stream.units_missing").inc()
                yield marker
            else:
                serial_units.inc()
                status.shard_unit(0)
                yield unit

    @staticmethod
    def _drain(workers, queues, stop, join_timeout: float = 5.0) -> None:
        """Deterministic shutdown of a (possibly mid-window) fan-out.

        Order matters: signal the stop event first so every producer
        exits at its next unit boundary or ``put`` retry, then keep the
        queues empty so a producer blocked inside a full bounded queue
        can finish its ``put`` and observe the event.  Workers are only
        terminated as a last resort after the join timeout -- the common
        path (completion, consumer ``close()``, supervisor drain) ends
        every worker cleanly with exit code 0 and no stuck queue feeder
        threads.
        """
        stop.set()
        deadline = time.monotonic() + join_timeout
        pending = list(workers)
        while pending and time.monotonic() < deadline:
            for queue in queues:  # unblock producers stuck in put()
                try:
                    while True:
                        queue.get_nowait()
                except (_QueueEmpty, OSError, ValueError):
                    pass
            pending = [process for process in pending if process.is_alive()]
            if pending:
                pending[0].join(timeout=0.05)
        for process in pending:  # pragma: no cover - hung-worker fallback
            process.terminate()
        for process in workers:
            process.join()
        for queue in queues:
            queue.cancel_join_thread()
            queue.close()

    def __iter__(self) -> Iterator[StreamUnit]:
        return self.iter_from(0)
