"""Stream record types: one measurement observation per record.

The streaming engine consumes *records* -- flat, immutable observations
carrying exactly what the incremental operators need -- instead of the
batch pipeline's whole-campaign timeline arrays.  One
:class:`TracerouteRecord` is one traceroute sample of one (src, dst,
version) pair in one collection round; :class:`PingRecord` and
:class:`SegmentRecord` are the ping- and per-hop-traceroute analogues.

These intentionally mirror (and are derived from) the batch containers
in :mod:`repro.datasets.timeline` / :mod:`repro.datasets.shortterm`, so
a record stream replayed through the streaming operators reproduces the
batch analyses' outputs.  They are plain data: picklable across the
sharded source's worker queues and serializable to the round-major JSONL
format in :mod:`repro.datasets.io`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["UnitKey", "TracerouteRecord", "PingRecord", "SegmentRecord"]

UnitKey = Tuple[int, int, int]
"""A stream unit's identity: ``(src_server_id, dst_server_id, int(version))``."""


@dataclass(frozen=True)
class TracerouteRecord:
    """One long-term traceroute observation.

    Attributes:
        src / dst: Server ids of the measured pair.
        version: IP version as an int (4 or 6).
        round_index: Collection round on the campaign grid.
        time_hours: The round's nominal timestamp.
        rtt_ms: End-to-end RTT (NaN when the destination was not reached).
        outcome: :class:`repro.measurement.traceroute.TraceOutcome` value.
        as_path: Observed AS path as a tuple of AS numbers, or ``None``
            when the sample has no attributable path (incomplete / loop).
    """

    src: int
    dst: int
    version: int
    round_index: int
    time_hours: float
    rtt_ms: float
    outcome: int
    as_path: Optional[Tuple[int, ...]]


@dataclass(frozen=True)
class PingRecord:
    """One short-term ping observation (``rtt_ms`` is NaN for a loss)."""

    src: int
    dst: int
    version: int
    round_index: int
    time_hours: float
    rtt_ms: float


@dataclass(frozen=True)
class SegmentRecord:
    """One short-term traceroute round with per-hop RTTs.

    ``hop_rtt_ms[i]`` is hop ``i``'s RTT in this round (NaN where the hop
    did not answer); the end-to-end RTT is the last hop's entry, since the
    destination server always answers.
    """

    src: int
    dst: int
    version: int
    round_index: int
    time_hours: float
    hop_rtt_ms: Tuple[float, ...]

    @property
    def rtt_ms(self) -> float:
        """End-to-end RTT of this round."""
        return self.hop_rtt_ms[-1] if self.hop_rtt_ms else float("nan")
