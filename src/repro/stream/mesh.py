"""Synthetic million-pair mesh: the campaign service's scale workload.

The paper's platform measured a full server mesh continuously for 16
months.  The simulated platform reproduces its *figures* faithfully but
tops out around 10^4 pair-campaigns per build -- far from the "millions
of pairs, forever" regime an always-on service must sustain.  This
module supplies that regime synthetically: a mesh of up to millions of
pairs whose RTT samples are a **pure counter hash** of
``(seed, pair, absolute round)``, so any sample can be generated at any
time, in any order, on any shard, with no RNG state at all.

Design points:

- **Block units.**  One :class:`StreamUnit` carries a
  ``(block_pairs, rounds)`` matrix (:class:`MeshColumns`), not one pair
  -- per-unit overhead (queue hops, pickles, operator dispatch) is paid
  once per ~thousand pairs, which is what lets a million pairs stream
  through a single consumer process.
- **Stateless sampling.**  ``splitmix64``-style integer mixing (no
  ``numpy.random``), vectorized over the block.  Sharding, windowing
  and resume order can never influence a draw because there is no
  stream to advance -- the same determinism-by-construction story as
  the platform's named RNG streams, taken to its limit.
- **O(1) operator state.**  :class:`MeshStatsOperator` folds each block
  into scalar aggregates plus a fixed-width integer histogram of
  per-pair RTT spreads, so service RSS stays flat however many cycles
  the mesh campaign runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.stream.records import PingRecord, UnitKey
from repro.stream.source import StreamUnit

__all__ = [
    "MeshConfig",
    "MeshColumns",
    "SyntheticMeshSource",
    "MeshStatsOperator",
    "mesh_results",
]

_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C = np.uint64(0x94D049BB133111EB)


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a ``uint64`` array (wrapping arithmetic)."""
    z = values + _MIX_A
    z = (z ^ (z >> np.uint64(30))) * _MIX_B
    z = (z ^ (z >> np.uint64(27))) * _MIX_C
    return z ^ (z >> np.uint64(31))


def _uniform01(values: np.ndarray) -> np.ndarray:
    """Map mixed ``uint64`` words onto float64 uniforms in ``[0, 1)``."""
    return (values >> np.uint64(11)).astype(np.float64) * (2.0**-53)


@dataclass(frozen=True)
class MeshConfig:
    """Shape and statistics of the synthetic mesh campaign.

    ``rounds_per_cycle`` rounds are generated per service cycle at
    ``cadence_hours`` spacing; ``pair * ROUND_CAPACITY + absolute_round``
    indexes the counter hash, so cycles are unbounded.
    """

    pairs: int = 1_000_000
    block_pairs: int = 1024
    rounds_per_cycle: int = 8
    cadence_hours: float = 0.25
    seed: int = 0
    base_rtt_ms: float = 10.0
    spread_rtt_ms: float = 180.0
    jitter_ms: float = 2.0
    diurnal_ms: float = 8.0
    congested_fraction: float = 0.2
    loss_rate: float = 0.01

    def __post_init__(self) -> None:
        if self.pairs < 1 or self.block_pairs < 1 or self.rounds_per_cycle < 1:
            raise ValueError("mesh dimensions must be positive")

    @property
    def blocks(self) -> int:
        """Units per cycle (the last block may be ragged)."""
        return -(-self.pairs // self.block_pairs)


_ROUND_CAPACITY = np.uint64(1) << np.uint64(24)
"""Rounds addressable per pair before counter reuse (~191 years at 15 min)."""


@dataclass(frozen=True)
class MeshColumns:
    """One block of mesh pairs as a ``(pairs, rounds)`` RTT matrix.

    Lost rounds are NaN.  ``__len__`` counts samples (matrix cells) so
    unit/record accounting matches the per-pair sources.
    """

    key: UnitKey
    pair_ids: np.ndarray
    times_hours: np.ndarray
    rtt_ms: np.ndarray
    round_offset: int = 0

    def __len__(self) -> int:
        return int(self.rtt_ms.size)

    def slice(self, low: int, high: int) -> "MeshColumns":
        """Rounds ``[low, high)`` as a new block (all pairs kept)."""
        return MeshColumns(
            key=self.key,
            pair_ids=self.pair_ids,
            times_hours=self.times_hours[low:high],
            rtt_ms=self.rtt_ms[:, low:high],
            round_offset=self.round_offset + low,
        )

    def records(self) -> Iterator[PingRecord]:
        """Materialize per-sample records (tests/debugging only)."""
        times = self.times_hours.tolist()
        for row, pair in enumerate(self.pair_ids.tolist()):
            rtts = self.rtt_ms[row].tolist()
            for index in range(len(times)):
                yield PingRecord(
                    src=pair,
                    dst=-1,
                    version=4,
                    round_index=self.round_offset + index,
                    time_hours=times[index],
                    rtt_ms=rtts[index],
                )


class SyntheticMeshSource:
    """Random-access block units of one mesh cycle.

    Compatible with :class:`~repro.stream.source.ShardedSource`
    (``__len__`` / ``unit_at`` / ``kind``): a million-pair cycle at the
    default block size is ~977 units, each built independently by
    whichever shard owns its stride.
    """

    kind = "mesh"

    def __init__(self, config: MeshConfig, cycle: int = 0) -> None:
        self.config = config
        self.cycle = int(cycle)

    def __len__(self) -> int:
        return self.config.blocks

    def key_hint(self, index: int) -> UnitKey:
        """The unit key for ``index`` without building the block --
        completeness reports name missing units by key, not just index."""
        if not 0 <= index < self.config.blocks:
            raise IndexError(index)
        return (self.cycle, index, 4)

    def unit_at(self, index: int) -> StreamUnit:
        """Build block ``index`` of this cycle from the counter hash."""
        cfg = self.config
        if not 0 <= index < cfg.blocks:
            raise IndexError(index)
        low = index * cfg.block_pairs
        high = min(low + cfg.block_pairs, cfg.pairs)
        pairs = np.arange(low, high, dtype=np.uint64)
        rounds = cfg.rounds_per_cycle
        first_round = self.cycle * rounds
        absolute = np.arange(first_round, first_round + rounds, dtype=np.uint64)
        seed = _mix64(np.array([[cfg.seed]], dtype=np.uint64))

        # Per-pair static character: base RTT and congestion affinity.
        pair_words = _mix64(pairs ^ seed[0])
        base_u = _uniform01(pair_words)
        base = cfg.base_rtt_ms + cfg.spread_rtt_ms * base_u**2
        congested = _uniform01(_mix64(pair_words)) < cfg.congested_fraction
        amplitude = np.where(congested, cfg.diurnal_ms, 0.0)
        phase = _uniform01(_mix64(pair_words ^ _MIX_B))

        # Per-sample counter words: pair * capacity + absolute round.
        counters = pairs[:, None] * _ROUND_CAPACITY + absolute[None, :]
        words = _mix64(counters ^ seed)
        jitter_u = _uniform01(words)
        loss_u = _uniform01(_mix64(words))

        times = absolute.astype(np.float64) * cfg.cadence_hours
        day_fraction = (times / 24.0) % 1.0
        diurnal = amplitude[:, None] * (
            np.sin(2.0 * math.pi * (day_fraction[None, :] + phase[:, None]))
            ** 2
        )
        rtt = (
            base[:, None]
            - cfg.jitter_ms * np.log1p(-jitter_u * (1.0 - 1e-12))
            + diurnal
        )
        rtt = np.where(loss_u < cfg.loss_rate, np.nan, rtt)

        obs_metrics.counter("stream.units").inc()
        key: UnitKey = (self.cycle, index, 4)
        return StreamUnit(
            key=key,
            kind=self.kind,
            records=(),
            columns=MeshColumns(
                key=key,
                pair_ids=pairs.astype(np.int64),
                times_hours=times,
                rtt_ms=rtt,
                round_offset=first_round,
            ),
        )

    def __iter__(self) -> Iterator[StreamUnit]:
        for index in range(len(self)):
            yield self.unit_at(index)


@dataclass
class MeshStatsOperator:
    """Fold mesh blocks into O(1) aggregate state.

    Tracks sample/loss counts, RTT moments and extremes, and a
    fixed-width integer histogram of per-pair min-max RTT spreads per
    block -- enough for loss-rate, mean/stddev and spread-percentile
    figures over an arbitrarily long campaign.  Every field accumulates
    in unit order, so a checkpoint/resume replay is bit-identical to an
    uninterrupted run.
    """

    name = "mesh-stats"

    spread_threshold_ms: float = 10.0
    spread_bin_ms: float = 0.5
    spread_max_ms: float = 400.0
    samples: int = 0
    lost: int = 0
    pair_rows: int = 0
    rtt_sum: float = 0.0
    rtt_sq_sum: float = 0.0
    rtt_min: float = math.inf
    rtt_max: float = -math.inf
    spread_exceeds: int = 0
    spread_counts: Optional[np.ndarray] = field(default=None, repr=False)

    def _bins(self) -> int:
        return int(self.spread_max_ms / self.spread_bin_ms) + 1

    def start_unit(self, key: UnitKey, meta: object = None) -> None:
        """Mesh blocks carry no per-unit state; nothing to open."""

    def observe_columns(self, columns: MeshColumns) -> None:
        """Fold one block's matrix into the aggregates (vectorized)."""
        if self.spread_counts is None:
            self.spread_counts = np.zeros(self._bins(), dtype=np.int64)
        rtt = columns.rtt_ms
        finite = np.isfinite(rtt)
        valid = finite.sum(axis=1)
        self.samples += int(rtt.size)
        self.lost += int(rtt.size - finite.sum())
        self.pair_rows += int(rtt.shape[0])
        present = rtt[finite]
        if present.size:
            self.rtt_sum += float(present.sum())
            self.rtt_sq_sum += float(np.square(present).sum())
            self.rtt_min = min(self.rtt_min, float(present.min()))
            self.rtt_max = max(self.rtt_max, float(present.max()))
        highs = np.where(finite, rtt, -np.inf).max(axis=1)
        lows = np.where(finite, rtt, np.inf).min(axis=1)
        spread = np.where(valid > 0, highs - lows, 0.0)
        self.spread_exceeds += int((spread > self.spread_threshold_ms).sum())
        slots = np.minimum(
            (spread / self.spread_bin_ms).astype(np.int64), self._bins() - 1
        )
        self.spread_counts += np.bincount(slots, minlength=self._bins())

    def _spread_percentile(self, q: float) -> float:
        """Percentile of the spread distribution from the histogram."""
        if self.spread_counts is None or self.pair_rows == 0:
            return 0.0
        target = math.ceil(q * self.pair_rows)
        cumulative = np.cumsum(self.spread_counts)
        slot = int(np.searchsorted(cumulative, target))
        return min(slot * self.spread_bin_ms, self.spread_max_ms)

    def finalize(self) -> Dict[str, object]:
        """Aggregate figures as a JSON-stable dict (deterministic)."""
        observed = self.samples - self.lost
        mean = self.rtt_sum / observed if observed else 0.0
        variance = (
            max(self.rtt_sq_sum / observed - mean * mean, 0.0) if observed else 0.0
        )
        return {
            "samples": self.samples,
            "lost": self.lost,
            "loss_rate": round(self.lost / self.samples, 9) if self.samples else 0.0,
            "pair_rows": self.pair_rows,
            "rtt_mean_ms": round(mean, 9),
            "rtt_stddev_ms": round(math.sqrt(variance), 9),
            "rtt_min_ms": round(self.rtt_min, 9) if observed else None,
            "rtt_max_ms": round(self.rtt_max, 9) if observed else None,
            "spread_p50_ms": self._spread_percentile(0.50),
            "spread_p90_ms": self._spread_percentile(0.90),
            "spread_p99_ms": self._spread_percentile(0.99),
            "spread_exceeds": self.spread_exceeds,
        }


def mesh_results(operator: MeshStatsOperator, cycles: int) -> Dict[str, object]:
    """The mesh campaign's results payload after ``cycles`` cycles."""
    payload = operator.finalize()
    payload["cycles"] = int(cycles)
    return payload
