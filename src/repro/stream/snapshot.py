"""Hardened snapshot file I/O shared by both checkpoint stores.

A checkpoint file that *exists* is not the same as a checkpoint file
that is *trustworthy*: a torn rename, a half-flushed page cache at
power loss, or an injected corruption must read as "recoverable", not
as a crash or -- worse -- a silently wrong resume.  This module gives
both :class:`~repro.stream.checkpoint.CheckpointStore` and
:class:`~repro.service.checkpoint.CampaignCheckpointStore` the same
three defenses:

* **Content checksums** -- every snapshot is framed as a magic header
  plus the SHA-256 digest of the pickled body; any bit flip or
  truncation fails the digest check and raises
  :class:`SnapshotCorrupt` instead of unpickling garbage.
* **Generation rotation** -- :func:`write_snapshot` rotates the
  current primary to a ``.1`` fallback before installing the new one,
  so a snapshot corrupted *at rest* (or torn between the two renames)
  recovers to the previous generation instead of restarting from zero.
* **Stale-temp reaping** -- writes go through ``<name>.tmp.<pid>``
  staging files that are fsynced before the atomic replace; a process
  killed between write and rename leaves its temp behind, and
  :func:`reap_stale_temps` sweeps those on store open.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import List, Optional

__all__ = [
    "FALLBACK_SUFFIX",
    "SNAPSHOT_MAGIC",
    "SnapshotCorrupt",
    "corrupt_file",
    "read_snapshot",
    "reap_stale_temps",
    "temp_path",
    "write_snapshot",
]

SNAPSHOT_MAGIC = b"RPROCKPT1\n"
_DIGEST_BYTES = hashlib.sha256().digest_size

FALLBACK_SUFFIX = ".1"
"""Appended to a primary's file name for its previous-generation copy."""


class SnapshotCorrupt(Exception):
    """A snapshot file exists but fails magic, digest, or unpickle."""


def temp_path(path: Path) -> Path:
    """The staging file for an in-progress write of ``path``."""
    return path.with_name(f"{path.name}.tmp.{os.getpid()}")


def fallback_path(path: Path) -> Path:
    """The previous-generation copy kept beside ``path``."""
    return path.with_name(path.name + FALLBACK_SUFFIX)


def write_snapshot(path: Path, payload: object) -> None:
    """Atomically install a checksummed snapshot, keeping one fallback.

    Order matters: fsync the staged bytes, rotate the old primary to
    ``.1``, then rename the staged file into place.  A crash at any
    point leaves either the old primary or the ``.1`` fallback intact
    and digest-valid.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    staging = temp_path(path)
    with open(staging, "wb") as handle:
        handle.write(SNAPSHOT_MAGIC)
        handle.write(hashlib.sha256(body).digest())
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    if path.exists():
        os.replace(path, fallback_path(path))
    os.replace(staging, path)


def read_snapshot(path: Path) -> object:
    """Verify and unpickle one snapshot file.

    Raises :class:`FileNotFoundError` when absent and
    :class:`SnapshotCorrupt` on any framing, digest, or unpickle
    failure -- the store decides whether a fallback generation can
    answer instead.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    header = len(SNAPSHOT_MAGIC) + _DIGEST_BYTES
    if len(blob) < header or not blob.startswith(SNAPSHOT_MAGIC):
        raise SnapshotCorrupt(f"bad snapshot header: {path}")
    digest = blob[len(SNAPSHOT_MAGIC):header]
    body = blob[header:]
    if hashlib.sha256(body).digest() != digest:
        raise SnapshotCorrupt(f"snapshot digest mismatch: {path}")
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise SnapshotCorrupt(f"snapshot unpickle failed: {path}: {exc}")


def reap_stale_temps(directory: Path, stem: str) -> List[Path]:
    """Remove staging files a dead process left behind.

    ``stem`` is the store's primary file name without extension (e.g.
    ``stream-<fingerprint>``); both the current ``<name>.ckpt.tmp.<pid>``
    staging names and the legacy ``<stem>.tmp.<pid>`` names (from the
    pre-hardening ``with_suffix`` bug this PR fixes) are swept.  Only
    temps whose owning pid is gone -- or unparseable -- are removed, so
    a concurrent live writer is never raced.
    """
    reaped: List[Path] = []
    if not directory.is_dir():
        return reaped
    for candidate in sorted(directory.glob(f"{stem}*.tmp.*")):
        pid = _temp_pid(candidate.name)
        if pid is not None and pid != os.getpid() and _pid_alive(pid):
            continue
        if pid == os.getpid():
            continue
        try:
            candidate.unlink()
            reaped.append(candidate)
        except FileNotFoundError:
            pass
    return reaped


def _temp_pid(name: str) -> Optional[int]:
    suffix = name.rsplit(".tmp.", 1)[-1]
    try:
        return int(suffix)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def corrupt_file(path: Path, flavor: str = "truncate") -> None:
    """Deterministically damage a snapshot file (fault injection).

    ``truncate`` chops the file to half its length (simulating a torn
    write); ``garble`` flips bits mid-body (simulating at-rest rot).
    Both defeat the digest check, which is the point.
    """
    blob = path.read_bytes()
    if flavor == "truncate":
        path.write_bytes(blob[: max(1, len(blob) // 2)])
    elif flavor == "garble":
        middle = len(blob) // 2
        damaged = bytes([blob[middle] ^ 0xFF]) if blob else b"\xff"
        path.write_bytes(blob[:middle] + damaged + blob[middle + 1:])
    else:
        raise ValueError(f"unknown corruption flavor: {flavor!r}")
