"""Columnar stream payloads: one pair-campaign as parallel arrays.

The object-path stream decomposes every timeline into a tuple of frozen
per-round record objects, then feeds them to the operators one at a
time -- paying Python object construction, pickling (across shard
queues) and per-record dispatch for every round of every pair.  The
columnar payloads here carry the same information as the arrays the
builders already produced: a :class:`TraceColumns` is one long-term
timeline's columns plus its interned path table, :class:`PingColumns`
and :class:`SegmentColumns` the ping / per-hop analogues.

Operators consume them wholesale through ``observe_columns`` (see
:mod:`repro.stream.operators`); anything that still wants records --
the JSONL codec, tests, external consumers -- can materialize them
lazily with :meth:`records`, which yields objects identical to the ones
the object path would have built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.stream.records import PingRecord, SegmentRecord, TracerouteRecord, UnitKey

__all__ = ["TraceColumns", "PingColumns", "SegmentColumns"]


@dataclass(frozen=True)
class TraceColumns:
    """One long-term trace timeline as columns (round order).

    ``round_offset`` is the absolute grid round of the first column --
    zero for a whole-campaign block, the window's low edge for a slice
    -- so lazily materialized records keep their campaign-absolute
    ``round_index`` whatever the cut.
    """

    key: UnitKey
    times_hours: np.ndarray
    rtt_ms: np.ndarray
    outcome: np.ndarray
    path_id: np.ndarray
    paths: Tuple[Tuple[int, ...], ...]
    round_offset: int = 0

    @classmethod
    def from_timeline(cls, timeline) -> "TraceColumns":
        """Wrap a :class:`~repro.datasets.timeline.TraceTimeline`."""
        return cls(
            key=(timeline.src_server_id, timeline.dst_server_id, int(timeline.version)),
            times_hours=timeline.times_hours,
            rtt_ms=timeline.rtt_ms,
            outcome=timeline.outcome,
            path_id=timeline.path_id,
            paths=tuple(tuple(path) for path in timeline.paths),
        )

    def __len__(self) -> int:
        return int(self.times_hours.size)

    def slice(self, low: int, high: int) -> "TraceColumns":
        """Rounds ``[low, high)`` as a new block (path table shared whole)."""
        return TraceColumns(
            key=self.key,
            times_hours=self.times_hours[low:high],
            rtt_ms=self.rtt_ms[low:high],
            outcome=self.outcome[low:high],
            path_id=self.path_id[low:high],
            paths=self.paths,
            round_offset=self.round_offset + low,
        )

    def records(self) -> Iterator[TracerouteRecord]:
        """Materialize the records the object path would have built."""
        src, dst, version = self.key
        times = self.times_hours.tolist()
        rtts = self.rtt_ms.tolist()
        outcomes = self.outcome.tolist()
        path_ids = self.path_id.tolist()
        paths = self.paths
        for index in range(len(times)):
            yield TracerouteRecord(
                src=src,
                dst=dst,
                version=version,
                round_index=self.round_offset + index,
                time_hours=times[index],
                rtt_ms=rtts[index],
                outcome=outcomes[index],
                as_path=paths[path_ids[index]] if path_ids[index] >= 0 else None,
            )


@dataclass(frozen=True)
class PingColumns:
    """One ping timeline as columns (round order)."""

    key: UnitKey
    times_hours: np.ndarray
    rtt_ms: np.ndarray
    round_offset: int = 0

    @classmethod
    def from_timeline(cls, timeline) -> "PingColumns":
        """Wrap a :class:`~repro.datasets.timeline.PingTimeline`."""
        return cls(
            key=(timeline.src_server_id, timeline.dst_server_id, int(timeline.version)),
            times_hours=timeline.times_hours,
            rtt_ms=timeline.rtt_ms,
        )

    def __len__(self) -> int:
        return int(self.times_hours.size)

    def slice(self, low: int, high: int) -> "PingColumns":
        """Rounds ``[low, high)`` as a new block."""
        return PingColumns(
            key=self.key,
            times_hours=self.times_hours[low:high],
            rtt_ms=self.rtt_ms[low:high],
            round_offset=self.round_offset + low,
        )

    def records(self) -> Iterator[PingRecord]:
        """Materialize the records the object path would have built."""
        src, dst, version = self.key
        times = self.times_hours.tolist()
        rtts = self.rtt_ms.tolist()
        for index in range(len(times)):
            yield PingRecord(
                src=src,
                dst=dst,
                version=version,
                round_index=self.round_offset + index,
                time_hours=times[index],
                rtt_ms=rtts[index],
            )


@dataclass(frozen=True)
class SegmentColumns:
    """One per-hop traceroute series as a (hops, rounds) matrix."""

    key: UnitKey
    times_hours: np.ndarray
    hop_rtt_ms: np.ndarray
    round_offset: int = 0

    def slice(self, low: int, high: int) -> "SegmentColumns":
        """Rounds ``[low, high)`` as a new block (all hops kept)."""
        return SegmentColumns(
            key=self.key,
            times_hours=self.times_hours[low:high],
            hop_rtt_ms=self.hop_rtt_ms[:, low:high],
            round_offset=self.round_offset + low,
        )

    @classmethod
    def from_entry(cls, key: UnitKey, entry) -> Optional["SegmentColumns"]:
        """Wrap a :class:`~repro.datasets.shortterm.SegmentSeries`."""
        if entry is None:
            return None
        return cls(
            key=key, times_hours=entry.times_hours, hop_rtt_ms=entry.hop_rtt_ms
        )

    def __len__(self) -> int:
        return int(self.times_hours.size)

    def records(self) -> Iterator[SegmentRecord]:
        """Materialize the records the object path would have built."""
        src, dst, version = self.key
        times = self.times_hours.tolist()
        columns = self.hop_rtt_ms.T.tolist()
        for index in range(len(times)):
            yield SegmentRecord(
                src=src,
                dst=dst,
                version=version,
                round_index=self.round_offset + index,
                time_hours=times[index],
                hop_rtt_ms=tuple(columns[index]),
            )
