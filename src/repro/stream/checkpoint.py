"""Versioned, fingerprint-keyed snapshots of streaming operator state.

A checkpoint captures everything the engine needs to resume a killed run
mid-campaign: which phase was active, how many stream units it had fully
consumed, the live operator's state, and the finalized payloads of the
phases already completed.  Because stream units are deterministic and
independent (every unit draws from its own named RNG stream), replaying
the remaining units on top of a restored operator reproduces the
uninterrupted run **bit-identically**.

Keying reuses the :func:`repro.harness.engine.config_fingerprint` scheme
that the :class:`~repro.harness.engine.ArtifactCache` uses: the
fingerprint covers the platform/campaign/stream configs, the experiment
list, and :data:`CHECKPOINT_SCHEMA_VERSION`, so a checkpoint can never be
resumed against a run it does not exactly describe -- a mismatched or
corrupt snapshot reads as "no checkpoint" and the run starts over.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.faults.plane import get_plane
from repro.harness.engine import config_fingerprint
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.stream.snapshot import (
    SnapshotCorrupt,
    corrupt_file,
    fallback_path,
    reap_stale_temps,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "checkpoint_fingerprint",
    "CheckpointStore",
]

CHECKPOINT_SCHEMA_VERSION = 3
"""Bump when the pickled layout of operator state changes shape.

Version 3: snapshots moved to the checksummed, generation-rotated
framing of :mod:`repro.stream.snapshot` (magic + SHA-256 digest +
pickle body, with a ``.1`` previous-generation fallback); raw-pickle
version-2 files fail the magic check and read as misses.

Version 2: :class:`~repro.stream.operators.PathStatsOperator` dropped
its per-path p90 estimators (write-only state no summary ever read), so
version-1 pair-state tuples no longer unpickle into the live class.

Part of the checkpoint fingerprint surface (and, like the cache schema
version, watched by the CCH001 lint rule's fingerprint contract): old
checkpoints become unreadable misses instead of wrong resumes.
"""

_LOG = get_logger("repro.stream.checkpoint")


def checkpoint_fingerprint(*parts: object) -> str:
    """Fingerprint of everything a resumable stream run depends on.

    Callers pass the platform config, campaign configs, stream config and
    the experiment selection; the schema version is mixed in here.
    """
    return config_fingerprint("stream-checkpoint", CHECKPOINT_SCHEMA_VERSION, *parts)


class CheckpointStore:
    """Checksummed, generation-rotated snapshots keyed by run fingerprint.

    Writes go through an fsynced temp file and two atomic renames: the
    previous snapshot rotates to a ``.1`` fallback before the new one
    lands, so a crash mid-save -- or a snapshot corrupted at rest --
    recovers to the prior generation instead of aborting the resume.
    Stale temp files from dead writers are reaped on store open.
    """

    def __init__(self, directory: Union[str, Path], fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self._saves = 0
        reaped = reap_stale_temps(self.directory, f"stream-{fingerprint}")
        if reaped:
            obs_metrics.counter("stream.checkpoint.temps_reaped").inc(
                len(reaped)
            )
            _LOG.info(
                "stream.checkpoint.temps_reaped",
                count=len(reaped),
                paths=",".join(p.name for p in reaped),
            )

    @property
    def path(self) -> Path:
        """Where this run's snapshot lives."""
        return self.directory / f"stream-{self.fingerprint}.ckpt"

    def save(
        self,
        phase: str,
        units_done: int,
        operator_state: object,
        completed: Dict[str, object],
    ) -> None:
        """Snapshot the live phase's progress and all finished phases."""
        started = time.perf_counter()
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "phase": phase,
            "units_done": int(units_done),
            "operator": operator_state,
            "completed": completed,
        }
        write_snapshot(self.path, payload)
        plane = get_plane()
        if plane is not None and plane.corrupt("stream", self._saves):
            obs_metrics.counter("faults.injected").inc()
            obs_metrics.counter("faults.injected{kind=corrupt}").inc()
            _LOG.warning(
                "faults.injected", kind="corrupt", store="stream",
                save=self._saves,
            )
            corrupt_file(self.path)
        self._saves += 1
        elapsed = time.perf_counter() - started
        obs_metrics.counter("stream.checkpoint.saves").inc()
        obs_metrics.histogram("stream.checkpoint_seconds").observe(elapsed)
        obs_metrics.gauge("stream.checkpoint_units_done").set(units_done)
        obs_live.get_status().set_checkpoint(
            fingerprint=self.fingerprint,
            schema=CHECKPOINT_SCHEMA_VERSION,
            phase=phase,
            units_done=int(units_done),
        )
        _LOG.debug(
            "stream.checkpoint.saved",
            phase=phase,
            units_done=units_done,
            seconds=round(elapsed, 6),
        )

    def load(self) -> Optional[Dict[str, object]]:
        """The snapshot, or ``None`` when absent, corrupt, or mismatched.

        A corrupt or torn primary falls back to the previous generation
        (``.1``): recovery to a slightly older resume point beats
        restarting the campaign from zero, and replaying the extra
        units is bit-identical anyway.
        """
        payload = None
        primary_corrupt = False
        try:
            payload = read_snapshot(self.path)
        except FileNotFoundError:
            pass
        except SnapshotCorrupt:
            primary_corrupt = True
            obs_metrics.counter("stream.checkpoint.corrupt").inc()
            _LOG.warning("stream.checkpoint.corrupt", path=str(self.path))
        if payload is None:
            fallback = fallback_path(self.path)
            try:
                payload = read_snapshot(fallback)
            except FileNotFoundError:
                return None
            except SnapshotCorrupt:
                if primary_corrupt:
                    _LOG.warning(
                        "stream.checkpoint.fallback_corrupt",
                        path=str(fallback),
                    )
                return None
            obs_metrics.counter("stream.checkpoint.recovered").inc()
            _LOG.warning("stream.checkpoint.recovered", path=str(fallback))
        if not isinstance(payload, dict):
            obs_metrics.counter("stream.checkpoint.corrupt").inc()
            return None
        if payload.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            obs_metrics.counter("stream.checkpoint.schema_mismatch").inc()
            _LOG.warning(
                "stream.checkpoint.schema_mismatch",
                found=payload.get("schema"),
                expected=CHECKPOINT_SCHEMA_VERSION,
            )
            return None
        if payload.get("fingerprint") != self.fingerprint:
            obs_metrics.counter("stream.checkpoint.fingerprint_mismatch").inc()
            return None
        obs_metrics.counter("stream.checkpoint.loads").inc()
        return payload

    def clear(self) -> None:
        """Remove the snapshot, its fallback generation, and any temps."""
        for stale in (self.path, fallback_path(self.path)):
            try:
                stale.unlink()
            except FileNotFoundError:
                pass
        reap_stale_temps(self.directory, f"stream-{self.fingerprint}")


def required_phases(experiments: Sequence[str]) -> Dict[str, bool]:
    """Which stream phases the requested experiments need.

    Shared between the engine (phase scheduling) and the CLI (manifest
    reporting).  Localization implies the ping phase too: its probed
    pairs are the ones the ping analysis flags.
    """
    wanted = set(experiments)
    longterm = bool(wanted & {"fig3", "fig6"})
    ping = bool(wanted & {"congestion-norm", "localization"})
    segment = "localization" in wanted
    return {"longterm": longterm, "ping": ping, "segment": segment}
