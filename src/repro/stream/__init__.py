"""repro.stream: bounded-memory streaming analysis of the campaigns.

The batch pipeline materializes every timeline before :mod:`repro.core`
runs; this package runs the same analyses *online* over record streams:

- :mod:`repro.stream.records` -- flat per-observation record types.
- :mod:`repro.stream.columns` -- the same observations as per-unit
  column blocks, the payload the vectorized operators consume.
- :mod:`repro.stream.source` -- pull-based unit sources (live platform,
  persisted archives) plus a sharded fan-out with bounded queues.
- :mod:`repro.stream.operators` -- incremental operators: route-change /
  prevalence accumulators, P-squared percentile estimators, and the
  sliding-window Goertzel congestion detector with windowed
  localization.
- :mod:`repro.stream.checkpoint` -- versioned, fingerprint-keyed
  operator snapshots for bit-identical kill/resume.
- :mod:`repro.stream.engine` -- the phase driver behind
  ``python -m repro reproduce --stream``.

Exports resolve lazily (PEP 562) following the package convention: the
stream stack needs numpy, and dependency-light tools must be able to
import ``repro`` without it.
"""

from __future__ import annotations

__all__ = [
    "TracerouteRecord",
    "PingRecord",
    "SegmentRecord",
    "TraceColumns",
    "PingColumns",
    "SegmentColumns",
    "StreamUnit",
    "LongTermTraceSource",
    "PingSource",
    "SegmentTraceSource",
    "LongTermFileSource",
    "ShardedSource",
    "P2Quantile",
    "PathStatsOperator",
    "CongestionWindowOperator",
    "SegmentWindowOperator",
    "windowed_diurnal_power_ratio",
    "CheckpointStore",
    "checkpoint_fingerprint",
    "CHECKPOINT_SCHEMA_VERSION",
    "StreamConfig",
    "StreamEngine",
    "StreamInterrupted",
    "STREAM_EXPERIMENTS",
]

_LAZY_EXPORTS = {
    "TracerouteRecord": "repro.stream.records",
    "PingRecord": "repro.stream.records",
    "SegmentRecord": "repro.stream.records",
    "TraceColumns": "repro.stream.columns",
    "PingColumns": "repro.stream.columns",
    "SegmentColumns": "repro.stream.columns",
    "StreamUnit": "repro.stream.source",
    "LongTermTraceSource": "repro.stream.source",
    "PingSource": "repro.stream.source",
    "SegmentTraceSource": "repro.stream.source",
    "LongTermFileSource": "repro.stream.source",
    "ShardedSource": "repro.stream.source",
    "P2Quantile": "repro.stream.operators",
    "PathStatsOperator": "repro.stream.operators",
    "CongestionWindowOperator": "repro.stream.operators",
    "SegmentWindowOperator": "repro.stream.operators",
    "windowed_diurnal_power_ratio": "repro.stream.operators",
    "CheckpointStore": "repro.stream.checkpoint",
    "checkpoint_fingerprint": "repro.stream.checkpoint",
    "CHECKPOINT_SCHEMA_VERSION": "repro.stream.checkpoint",
    "StreamConfig": "repro.stream.engine",
    "StreamEngine": "repro.stream.engine",
    "StreamInterrupted": "repro.stream.engine",
    "STREAM_EXPERIMENTS": "repro.stream.engine",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
