"""Composable incremental operators over measurement record streams.

Each operator consumes records one at a time and keeps only bounded
state, yet reproduces a batch analysis from :mod:`repro.core`:

- :class:`PathStatsOperator` -- the route-change / lifetime / prevalence
  analysis of :mod:`repro.core.routechange` plus the per-path RTT
  percentile stats behind Figure 6.  Route changes compare each usable
  AS path only against the *previous* one; lifetimes are running counts;
  percentiles are streaming P-squared estimators.  Route-change counts,
  lifetimes and prevalence are **exactly** the batch values (counts and
  count-times-period sums are integer-valued floats, so no rounding ever
  differs); the P-squared percentile estimates carry the documented
  per-operator tolerance (exact below five samples, typically within a
  few ms of the true percentile at campaign sample counts).
- :class:`CongestionWindowOperator` -- the Section 5.1 detector of
  :mod:`repro.core.congestion` over a sliding window, with the spectral
  test evaluated by Goertzel recursions at the daily bins and the total
  (non-DC) power obtained from Parseval's theorem, so the power *ratio*
  matches the batch FFT's to ~1e-9 relative without storing a spectrum.
  With the window covering the whole campaign (the default) the verdict
  set is identical to the batch detector's.
- :class:`SegmentWindowOperator` -- Section 5.2 localization fed from
  the same sliding window: per-hop RTT rows are kept in a ring buffer
  and correlated against the end-to-end series with the *same*
  masked-Pearson code the batch pipeline uses.

All operator state is plain data (lists, dicts, numpy ring buffers) so a
checkpoint can pickle it mid-campaign and resume bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.congestion import (
    HOURS_PER_DAY,
    CongestionDetector,
    CongestionVerdict,
    PopulationStats,
    fill_missing_rtts,
)
from repro.core.localization import segment_correlations
from repro.core.rttstats import MIN_BUCKET_SAMPLES
from repro.core.suboptimal import DEFAULT_THRESHOLDS_MS
from repro.measurement.traceroute import TraceOutcome
from repro.obs import metrics as obs_metrics
from repro.stream.records import PingRecord, SegmentRecord, TracerouteRecord, UnitKey

__all__ = [
    "P2Quantile",
    "RingWindow",
    "goertzel_power",
    "windowed_diurnal_power_ratio",
    "PathSummary",
    "PathStatsOperator",
    "CongestionWindowOperator",
    "SegmentMeta",
    "SegmentOutcome",
    "SegmentWindowOperator",
]

USABLE_OUTCOMES = frozenset(
    {
        int(TraceOutcome.COMPLETE),
        int(TraceOutcome.MISSING_AS),
        int(TraceOutcome.MISSING_IP),
    }
)

# Sentinel for "no usable sample seen yet"; distinct from None, which is
# a usable sample without an attributable AS path.
_UNSEEN = "__unseen__"


# ---------------------------------------------------------------------------
# Streaming percentile estimation (P-squared, Jain & Chlamtac 1985)
# ---------------------------------------------------------------------------


class P2Quantile:
    """Single-quantile P-squared estimator in O(1) memory.

    Exact (via ``np.percentile`` over a five-element buffer) until five
    observations have arrived, then maintained with the classic
    five-marker parabolic update.  Tolerance: exact for buckets smaller
    than five samples -- which covers the batch pipeline's
    ``MIN_BUCKET_SAMPLES`` floor -- and an approximation error that
    shrinks with the bucket size above that (empirically a few ms at the
    RTT scales and sample counts of the campaigns here).
    """

    __slots__ = ("quantile", "count", "_initial", "_heights", "_positions", "_desired")

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        self.quantile = quantile
        self.count = 0
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions: List[int] = []
        self._desired: List[float] = []

    def __getstate__(self):
        return (self.quantile, self.count, self._initial, self._heights,
                self._positions, self._desired)

    def __setstate__(self, state) -> None:
        (self.quantile, self.count, self._initial, self._heights,
         self._positions, self._desired) = state

    def observe(self, value: float) -> None:
        """Feed one sample."""
        self.count += 1
        if self._heights is None:
            self._initial.append(float(value))
            if len(self._initial) == 5:
                q = self.quantile
                self._heights = sorted(self._initial)
                self._positions = [0, 1, 2, 3, 4]
                self._desired = [0.0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0]
            return
        self._update(float(value))

    def _update(self, x: float) -> None:
        h, n = self._heights, self._positions
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x < h[1]:
            cell = 0
        elif x < h[2]:
            cell = 1
        elif x < h[3]:
            cell = 2
        elif x < h[4]:
            cell = 3
        else:
            h[4] = x
            cell = 3
        for i in range(cell + 1, 5):
            n[i] += 1
        q = self.quantile
        for i, step in enumerate((0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)):
            self._desired[i] += step
        for i in (1, 2, 3):
            drift = self._desired[i] - n[i]
            if (drift >= 1.0 and n[i + 1] - n[i] > 1) or (
                drift <= -1.0 and n[i - 1] - n[i] < -1
            ):
                sign = 1 if drift > 0 else -1
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = h[i] + sign * (h[i + sign] - h[i]) / (n[i + sign] - n[i])
                n[i] += sign

    def _parabolic(self, i: int, sign: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def value(self) -> float:
        """Current estimate (NaN before any sample)."""
        if self._heights is None:
            if not self._initial:
                return float("nan")
            return float(np.percentile(self._initial, self.quantile * 100.0))
        return float(self._heights[2])


# ---------------------------------------------------------------------------
# Sliding windows and the Goertzel spectral test
# ---------------------------------------------------------------------------


class RingWindow:
    """Fixed-capacity ring buffer of float32 samples (or sample vectors).

    ``rows=None`` stores a scalar series; an integer stores one vector of
    that many rows per push (the per-hop RTT columns of the localization
    window).  ``values()`` returns the window contents oldest-first.
    """

    __slots__ = ("capacity", "rows", "_buffer", "_filled", "_next")

    def __init__(self, capacity: int, rows: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be positive")
        self.capacity = capacity
        self.rows = rows
        shape = (capacity,) if rows is None else (rows, capacity)
        self._buffer = np.full(shape, np.nan, dtype=np.float32)
        self._filled = 0
        self._next = 0

    def __getstate__(self):
        return (self.capacity, self.rows, self._buffer, self._filled, self._next)

    def __setstate__(self, state) -> None:
        self.capacity, self.rows, self._buffer, self._filled, self._next = state

    def __len__(self) -> int:
        return self._filled

    def push(self, value) -> None:
        """Append one sample, evicting the oldest at capacity."""
        if self.rows is None:
            self._buffer[self._next] = value
        else:
            self._buffer[:, self._next] = value
        self._next = (self._next + 1) % self.capacity
        self._filled = min(self._filled + 1, self.capacity)

    def values(self) -> np.ndarray:
        """Window contents in arrival order (float32)."""
        if self._filled < self.capacity:
            if self.rows is None:
                return self._buffer[: self._filled].copy()
            return self._buffer[:, : self._filled].copy()
        if self._next == 0:
            return self._buffer.copy()
        if self.rows is None:
            return np.concatenate([self._buffer[self._next:], self._buffer[: self._next]])
        return np.concatenate(
            [self._buffer[:, self._next:], self._buffer[:, : self._next]], axis=1
        )


def goertzel_power(values: np.ndarray, k: int) -> float:
    """``|X_k|**2`` of one DFT bin via the Goertzel recursion.

    Evaluates a single bin of the unnormalized forward DFT (numpy's FFT
    convention) in O(n) time and O(1) space -- the streaming detector
    needs only the daily bins, never the full spectrum.
    """
    samples = np.asarray(values, dtype=float).tolist()
    n = len(samples)
    if n == 0:
        return 0.0
    coeff = 2.0 * math.cos(2.0 * math.pi * k / n)
    s_prev = 0.0
    s_prev2 = 0.0
    for x in samples:
        s_prev, s_prev2 = x + coeff * s_prev - s_prev2, s_prev
    return s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2


def windowed_diurnal_power_ratio(
    rtt_ms: np.ndarray, period_hours: float, band: int = 1
) -> float:
    """The :func:`repro.core.congestion.diurnal_power_ratio` of a window.

    Same gap filling, same guards, same band -- but the daily-bin powers
    come from Goertzel recursions and the total non-DC power from
    Parseval's theorem (``sum|X_k|**2 = n * sum x**2``), so no spectrum
    is ever materialized.  Agrees with the batch FFT ratio to ~1e-9
    relative (floating-point summation order is the only difference).
    """
    values = np.asarray(rtt_ms, dtype=float)
    filled = fill_missing_rtts(values)
    if filled is None:
        return float("nan")
    n = int(filled.size)
    if n < 8:
        return float("nan")
    days = period_hours * n / HOURS_PER_DAY
    if days < 1.0:
        return float("nan")

    centered = filled - filled.mean()
    sum_sq = float(np.dot(centered, centered))
    dc_power = float(centered.sum()) ** 2
    # Parseval over the one-sided (rfft) spectrum, bins 1..n//2: every
    # interior bin appears twice in the full spectrum, DC and (for even
    # n) the Nyquist bin once.
    if n % 2 == 0:
        alternating = float(centered[::2].sum() - centered[1::2].sum())
        nyquist_power = alternating * alternating
        total = (n * sum_sq - dc_power - nyquist_power) / 2.0 + nyquist_power
    else:
        total = (n * sum_sq - dc_power) / 2.0
    if total <= 0:
        return 0.0
    spectrum_size = n // 2 + 1
    daily_bin = int(round(days))
    low = max(1, daily_bin - band)
    high = min(spectrum_size - 1, daily_bin + band)
    if low > high:
        return float("nan")
    band_power = 0.0
    for bin_index in range(low, high + 1):
        band_power += goertzel_power(centered, bin_index)
    return float(band_power / total)


# ---------------------------------------------------------------------------
# Long-term stream: route changes, prevalence, per-path percentiles
# ---------------------------------------------------------------------------


@dataclass
class PathSummary:
    """Finalized per-pair routing statistics (Figures 3 and 6 inputs)."""

    key: UnitKey
    changes: int
    unique_paths: int
    popular_prevalence: Optional[float]
    suboptimal: Dict[float, float] = field(default_factory=dict)


class _PairPathState:
    __slots__ = ("last", "changes", "counts", "finite", "p10", "p90")

    def __init__(self) -> None:
        self.last: object = _UNSEEN
        self.changes = 0
        self.counts: Dict[Tuple[int, ...], int] = {}
        self.finite: Dict[Tuple[int, ...], int] = {}
        self.p10: Dict[Tuple[int, ...], P2Quantile] = {}
        self.p90: Dict[Tuple[int, ...], P2Quantile] = {}

    def __getstate__(self):
        return (self.last, self.changes, self.counts, self.finite, self.p10, self.p90)

    def __setstate__(self, state) -> None:
        self.last, self.changes, self.counts, self.finite, self.p10, self.p90 = state


class PathStatsOperator:
    """Incremental route-change + per-path RTT statistics per pair.

    Keeps, per (src, dst, version): the previous usable AS path, a change
    counter, per-path observation counts (lifetimes are counts times the
    grid period), and P-squared p10/p90 estimators per path.  Everything
    except the percentile estimates is exactly the batch computation.
    """

    def __init__(self, period_hours: float) -> None:
        self.period_hours = float(period_hours)
        self._states: Dict[UnitKey, _PairPathState] = {}

    def start_unit(self, key: UnitKey, meta: object = None) -> None:
        """Register a unit so empty timelines still appear in finals."""
        if key not in self._states:
            self._states[key] = _PairPathState()

    def observe(self, record: TracerouteRecord) -> None:
        """Feed one traceroute record (records of a pair in time order)."""
        if record.outcome not in USABLE_OUTCOMES:
            return
        key = (record.src, record.dst, record.version)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _PairPathState()
        path = record.as_path
        if state.last is not _UNSEEN and state.last != path:
            state.changes += 1
        state.last = path
        if path is None:
            return
        state.counts[path] = state.counts.get(path, 0) + 1
        rtt = record.rtt_ms
        if math.isfinite(rtt):
            state.finite[path] = state.finite.get(path, 0) + 1
            if path not in state.p10:
                state.p10[path] = P2Quantile(0.10)
                state.p90[path] = P2Quantile(0.90)
            state.p10[path].observe(rtt)
            state.p90[path].observe(rtt)

    def finalize(
        self, thresholds_ms: Tuple[float, ...] = DEFAULT_THRESHOLDS_MS
    ) -> Dict[UnitKey, PathSummary]:
        """Per-pair summaries, in unit arrival order."""
        summaries: Dict[UnitKey, PathSummary] = {}
        for key, state in self._states.items():
            summaries[key] = self._summarize(key, state, thresholds_ms)
        return summaries

    def _summarize(
        self, key: UnitKey, state: _PairPathState, thresholds_ms: Tuple[float, ...]
    ) -> PathSummary:
        paths = list(state.counts)
        if not paths:
            return PathSummary(
                key=key, changes=state.changes, unique_paths=0,
                popular_prevalence=None,
                suboptimal={threshold: 0.0 for threshold in thresholds_ms},
            )
        # Lifetimes are integer counts times the grid period; their sum is
        # exact in floating point, so prevalence matches batch bit for bit.
        lifetimes = [state.counts[path] * self.period_hours for path in paths]
        total = sum(lifetimes)
        prevalence = [lifetime / total for lifetime in lifetimes]
        popular = prevalence[0]
        for value in prevalence[1:]:
            if value > popular:
                popular = value

        # Figure 6: increase of each path's p10 over the best path's; the
        # best path breaks percentile ties by first-seen order, mirroring
        # the batch tie-break on (value, path_id).
        selection = {
            index: state.p10[path].value()
            for index, path in enumerate(paths)
            if state.finite.get(path, 0) >= MIN_BUCKET_SAMPLES
        }
        suboptimal = {threshold: 0.0 for threshold in thresholds_ms}
        if len(selection) >= 2:
            best = min(selection, key=lambda index: (selection[index], index))
            for threshold in thresholds_ms:
                suboptimal[threshold] = sum(
                    prevalence[index]
                    for index, value in selection.items()
                    if index != best and value - selection[best] >= threshold
                )
        return PathSummary(
            key=key,
            changes=state.changes,
            unique_paths=len(paths),
            popular_prevalence=popular,
            suboptimal=suboptimal,
        )


# ---------------------------------------------------------------------------
# Ping stream: the sliding-window congestion detector
# ---------------------------------------------------------------------------


class _CongestionState:
    __slots__ = ("window", "valid", "seen")

    def __init__(self, capacity: int) -> None:
        self.window = RingWindow(capacity)
        self.valid = 0
        self.seen = 0

    def __getstate__(self):
        return (self.window, self.valid, self.seen)

    def __setstate__(self, state) -> None:
        self.window, self.valid, self.seen = state


class CongestionWindowOperator:
    """Section 5.1 congestion verdicts from a sliding RTT window.

    With ``window_rounds`` covering the whole campaign (the engine's
    default) every verdict matches the batch detector's; a smaller window
    turns the detector into a rolling one whose verdict reflects the most
    recent ``window_rounds`` samples only (documented approximation).
    """

    def __init__(
        self,
        period_hours: float,
        window_rounds: int,
        detector: Optional[CongestionDetector] = None,
    ) -> None:
        self.period_hours = float(period_hours)
        self.window_rounds = int(window_rounds)
        self.detector = detector or CongestionDetector()
        self._states: Dict[UnitKey, _CongestionState] = {}

    def start_unit(self, key: UnitKey, meta: object = None) -> None:
        """Register one pair's series."""
        if key not in self._states:
            self._states[key] = _CongestionState(self.window_rounds)

    def observe(self, record: PingRecord) -> None:
        """Feed one ping record."""
        key = (record.src, record.dst, record.version)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _CongestionState(self.window_rounds)
        state.window.push(record.rtt_ms)
        state.seen += 1
        if math.isfinite(record.rtt_ms):
            state.valid += 1

    def _assess(self, state: _CongestionState) -> CongestionVerdict:
        values = state.window.values().astype(float)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            spread = float("nan")
        else:
            low, high = self.detector.spread_percentiles
            spread = float(np.percentile(finite, high) - np.percentile(finite, low))
        ratio = windowed_diurnal_power_ratio(
            values, self.period_hours, band=self.detector.band
        )
        return CongestionVerdict(
            spread_ms=spread,
            power_ratio=ratio,
            spread_exceeds=bool(
                np.isfinite(spread) and spread > self.detector.spread_threshold_ms
            ),
            diurnal=bool(
                np.isfinite(ratio) and ratio >= self.detector.power_ratio_threshold
            ),
        )

    def verdicts(self) -> Dict[UnitKey, CongestionVerdict]:
        """Current verdict per pair (window occupancy goes to metrics)."""
        occupancy = obs_metrics.histogram("stream.window_occupancy")
        results: Dict[UnitKey, CongestionVerdict] = {}
        for key, state in self._states.items():
            occupancy.observe(len(state.window))
            results[key] = self._assess(state)
        return results

    def valid_counts(self) -> Dict[UnitKey, int]:
        """Answered-probe count per pair (whole stream, not the window)."""
        return {key: state.valid for key, state in self._states.items()}

    def population_stats(
        self,
        verdicts: Dict[UnitKey, CongestionVerdict],
        version: int,
        min_valid_samples: int = 600,
    ) -> PopulationStats:
        """The Section 5.1 population counts for one protocol."""
        pairs = spread_count = congested_count = 0
        for key, state in self._states.items():
            if key[2] != version:
                continue
            required = min(min_valid_samples, int(0.9 * state.seen))
            if state.valid < required:
                continue
            verdict = verdicts[key]
            pairs += 1
            if verdict.spread_exceeds:
                spread_count += 1
            if verdict.congested:
                congested_count += 1
        return PopulationStats(
            pairs=pairs, spread_exceeds=spread_count, congested=congested_count
        )


# ---------------------------------------------------------------------------
# Short-term trace stream: windowed localization
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentMeta:
    """Static per-unit context for the localization window."""

    hop_addresses: Tuple[object, ...]
    segment_keys: Tuple[object, ...]
    static_path: bool


@dataclass
class SegmentOutcome:
    """Windowed localization outcome for one pair."""

    key: UnitKey
    static_path: bool
    end_to_end_diurnal: bool
    congested_hop: Optional[int]
    link: Optional[Tuple[object, object]]
    segment_keys: Tuple[object, ...]


class _SegmentState:
    __slots__ = ("meta", "window")

    def __init__(self, meta: SegmentMeta, capacity: int) -> None:
        self.meta = meta
        self.window = RingWindow(capacity, rows=len(meta.hop_addresses))

    def __getstate__(self):
        return (self.meta, self.window)

    def __setstate__(self, state) -> None:
        self.meta, self.window = state


class _WindowEntry:
    """Duck-typed :class:`repro.datasets.shortterm.SegmentSeries` view.

    Carries exactly the attributes
    :func:`repro.core.localization.segment_correlations` reads, so the
    windowed correlations reuse the batch code path verbatim.
    """

    __slots__ = ("rtt_ms", "hop_rtt_ms", "n_hops")

    def __init__(self, matrix: np.ndarray) -> None:
        self.hop_rtt_ms = matrix
        self.rtt_ms = matrix[-1]
        self.n_hops = int(matrix.shape[0])


class SegmentWindowOperator:
    """Section 5.2 localization fed from the sliding window.

    The end-to-end verdict uses the same Goertzel-windowed spectral test
    as :class:`CongestionWindowOperator`; segment correlation walks hops
    with the batch masked-Pearson code over the windowed matrix.
    """

    def __init__(
        self,
        period_hours: float,
        window_rounds: int,
        detector: Optional[CongestionDetector] = None,
        rho_threshold: float = 0.5,
    ) -> None:
        self.period_hours = float(period_hours)
        self.window_rounds = int(window_rounds)
        self.detector = detector or CongestionDetector()
        self.rho_threshold = float(rho_threshold)
        self._states: Dict[UnitKey, _SegmentState] = {}

    def start_unit(self, key: UnitKey, meta: object = None) -> None:
        """Register one pair's window; ``meta`` must be a SegmentMeta."""
        if key not in self._states:
            if not isinstance(meta, SegmentMeta):
                raise TypeError("SegmentWindowOperator units need SegmentMeta")
            self._states[key] = _SegmentState(meta, self.window_rounds)

    def observe(self, record: SegmentRecord) -> None:
        """Feed one per-hop traceroute round."""
        key = (record.src, record.dst, record.version)
        state = self._states[key]
        state.window.push(np.asarray(record.hop_rtt_ms, dtype=np.float32))

    def _assess_e2e(self, e2e: np.ndarray) -> CongestionVerdict:
        values = e2e.astype(float)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            spread = float("nan")
        else:
            low, high = self.detector.spread_percentiles
            spread = float(np.percentile(finite, high) - np.percentile(finite, low))
        ratio = windowed_diurnal_power_ratio(
            values, self.period_hours, band=self.detector.band
        )
        return CongestionVerdict(
            spread_ms=spread,
            power_ratio=ratio,
            spread_exceeds=bool(
                np.isfinite(spread) and spread > self.detector.spread_threshold_ms
            ),
            diurnal=bool(
                np.isfinite(ratio) and ratio >= self.detector.power_ratio_threshold
            ),
        )

    def outcomes(self) -> Dict[UnitKey, SegmentOutcome]:
        """Windowed localization per pair, in unit arrival order."""
        occupancy = obs_metrics.histogram("stream.window_occupancy")
        results: Dict[UnitKey, SegmentOutcome] = {}
        for key, state in self._states.items():
            occupancy.observe(len(state.window))
            matrix = state.window.values()
            verdict = self._assess_e2e(matrix[-1])
            congested_hop: Optional[int] = None
            link = None
            if verdict.congested:
                correlations = segment_correlations(_WindowEntry(matrix))
                for hop, correlation in enumerate(correlations):
                    if np.isfinite(correlation) and correlation >= self.rho_threshold:
                        near = state.meta.hop_addresses[hop - 1] if hop > 0 else None
                        congested_hop = hop
                        link = (near, state.meta.hop_addresses[hop])
                        break
            results[key] = SegmentOutcome(
                key=key,
                static_path=state.meta.static_path,
                end_to_end_diurnal=verdict.congested,
                congested_hop=congested_hop,
                link=link,
                segment_keys=state.meta.segment_keys,
            )
        return results
