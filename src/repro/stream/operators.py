"""Composable incremental operators over measurement record streams.

Each operator consumes records one at a time and keeps only bounded
state, yet reproduces a batch analysis from :mod:`repro.core`:

- :class:`PathStatsOperator` -- the route-change / lifetime / prevalence
  analysis of :mod:`repro.core.routechange` plus the per-path RTT
  percentile stats behind Figure 6.  Route changes compare each usable
  AS path only against the *previous* one; lifetimes are running counts;
  percentiles are streaming P-squared estimators.  Route-change counts,
  lifetimes and prevalence are **exactly** the batch values (counts and
  count-times-period sums are integer-valued floats, so no rounding ever
  differs); the P-squared percentile estimates carry the documented
  per-operator tolerance (exact below five samples, typically within a
  few ms of the true percentile at campaign sample counts).
- :class:`CongestionWindowOperator` -- the Section 5.1 detector of
  :mod:`repro.core.congestion` over a sliding window, with the spectral
  test evaluated by Goertzel recursions at the daily bins and the total
  (non-DC) power obtained from Parseval's theorem, so the power *ratio*
  matches the batch FFT's to ~1e-9 relative without storing a spectrum.
  With the window covering the whole campaign (the default) the verdict
  set is identical to the batch detector's.
- :class:`SegmentWindowOperator` -- Section 5.2 localization fed from
  the same sliding window: per-hop RTT rows are kept in a ring buffer
  and correlated against the end-to-end series with the *same*
  masked-Pearson code the batch pipeline uses.

All operator state is plain data (lists, dicts, numpy ring buffers) so a
checkpoint can pickle it mid-campaign and resume bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.congestion import (
    HOURS_PER_DAY,
    CongestionDetector,
    CongestionVerdict,
    PopulationStats,
    fill_missing_rtts,
)
from repro.core.localization import segment_correlations
from repro.core.rttstats import MIN_BUCKET_SAMPLES
from repro.core.suboptimal import DEFAULT_THRESHOLDS_MS
from repro.measurement.traceroute import TraceOutcome
from repro.obs import metrics as obs_metrics
from repro.stream.records import PingRecord, SegmentRecord, TracerouteRecord, UnitKey

__all__ = [
    "P2Quantile",
    "RingWindow",
    "goertzel_power",
    "windowed_diurnal_power_ratio",
    "batched_diurnal_power_ratios",
    "PathSummary",
    "PathStatsOperator",
    "CongestionWindowOperator",
    "SegmentMeta",
    "SegmentOutcome",
    "SegmentWindowOperator",
]

USABLE_OUTCOMES = frozenset(
    {
        int(TraceOutcome.COMPLETE),
        int(TraceOutcome.MISSING_AS),
        int(TraceOutcome.MISSING_IP),
    }
)

_USABLE_LUT = np.zeros(256, dtype=bool)
_USABLE_LUT[sorted(USABLE_OUTCOMES)] = True

# Sentinel for "no usable sample seen yet"; distinct from None, which is
# a usable sample without an attributable AS path.
_UNSEEN = "__unseen__"


# ---------------------------------------------------------------------------
# Streaming percentile estimation (P-squared, Jain & Chlamtac 1985)
# ---------------------------------------------------------------------------


class P2Quantile:
    """Single-quantile P-squared estimator in O(1) memory.

    Exact (via ``np.percentile`` over a five-element buffer) until five
    observations have arrived, then maintained with the classic
    five-marker parabolic update.  Tolerance: exact for buckets smaller
    than five samples -- which covers the batch pipeline's
    ``MIN_BUCKET_SAMPLES`` floor -- and an approximation error that
    shrinks with the bucket size above that (empirically a few ms at the
    RTT scales and sample counts of the campaigns here).
    """

    __slots__ = ("quantile", "count", "_initial", "_heights", "_positions", "_desired")

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        self.quantile = quantile
        self.count = 0
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions: List[int] = []
        self._desired: List[float] = []

    def __getstate__(self):
        return (self.quantile, self.count, self._initial, self._heights,
                self._positions, self._desired)

    def __setstate__(self, state) -> None:
        (self.quantile, self.count, self._initial, self._heights,
         self._positions, self._desired) = state

    def observe(self, value: float) -> None:
        """Feed one sample."""
        self.count += 1
        if self._heights is None:
            self._initial.append(float(value))
            if len(self._initial) == 5:
                q = self.quantile
                self._heights = sorted(self._initial)
                self._positions = [0, 1, 2, 3, 4]
                self._desired = [0.0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0]
            return
        self._update(float(value))

    def observe_many(self, values) -> None:
        """Feed a batch of samples, equivalent to repeated :meth:`observe`.

        The estimator's update is inherently sequential, so this is the
        same marker arithmetic in a tight loop -- it saves only the
        per-sample method dispatch, which is exactly what the columnar
        operators need when draining a whole unit at once.
        """
        iterator = iter(np.asarray(values, dtype=float).tolist())
        if self._heights is None:
            for value in iterator:
                self.count += 1
                self._initial.append(value)
                if len(self._initial) == 5:
                    q = self.quantile
                    self._heights = sorted(self._initial)
                    self._positions = [0, 1, 2, 3, 4]
                    self._desired = [0.0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0]
                    break
            if self._heights is None:
                return
        update = self._update
        count = self.count
        for value in iterator:
            count += 1
            update(value)
        self.count = count

    def _update(self, x: float) -> None:
        h, n = self._heights, self._positions
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x < h[1]:
            cell = 0
        elif x < h[2]:
            cell = 1
        elif x < h[3]:
            cell = 2
        elif x < h[4]:
            cell = 3
        else:
            h[4] = x
            cell = 3
        for i in range(cell + 1, 5):
            n[i] += 1
        q = self.quantile
        for i, step in enumerate((0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)):
            self._desired[i] += step
        for i in (1, 2, 3):
            drift = self._desired[i] - n[i]
            if (drift >= 1.0 and n[i + 1] - n[i] > 1) or (
                drift <= -1.0 and n[i - 1] - n[i] < -1
            ):
                sign = 1 if drift > 0 else -1
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = h[i] + sign * (h[i + sign] - h[i]) / (n[i + sign] - n[i])
                n[i] += sign

    def _parabolic(self, i: int, sign: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def value(self) -> float:
        """Current estimate (NaN before any sample)."""
        if self._heights is None:
            if not self._initial:
                return float("nan")
            return float(np.percentile(self._initial, self.quantile * 100.0))
        return float(self._heights[2])


# ---------------------------------------------------------------------------
# Sliding windows and the Goertzel spectral test
# ---------------------------------------------------------------------------


class RingWindow:
    """Fixed-capacity ring buffer of float32 samples (or sample vectors).

    ``rows=None`` stores a scalar series; an integer stores one vector of
    that many rows per push (the per-hop RTT columns of the localization
    window).  ``values()`` returns the window contents oldest-first.
    """

    __slots__ = ("capacity", "rows", "_buffer", "_filled", "_next")

    def __init__(self, capacity: int, rows: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be positive")
        self.capacity = capacity
        self.rows = rows
        shape = (capacity,) if rows is None else (rows, capacity)
        self._buffer = np.full(shape, np.nan, dtype=np.float32)
        self._filled = 0
        self._next = 0

    def __getstate__(self):
        return (self.capacity, self.rows, self._buffer, self._filled, self._next)

    def __setstate__(self, state) -> None:
        self.capacity, self.rows, self._buffer, self._filled, self._next = state

    def __len__(self) -> int:
        return self._filled

    def push(self, value) -> None:
        """Append one sample, evicting the oldest at capacity."""
        if self.rows is None:
            self._buffer[self._next] = value
        else:
            self._buffer[:, self._next] = value
        self._next = (self._next + 1) % self.capacity
        self._filled = min(self._filled + 1, self.capacity)

    def extend(self, values: np.ndarray) -> None:
        """Append many samples at once, equivalent to repeated pushes.

        ``values`` is a 1-D series (scalar windows) or a ``(rows, n)``
        matrix (vector windows); only the last ``capacity`` samples can
        survive, so anything older is never written at all.
        """
        values = np.asarray(values, dtype=np.float32)
        capacity = self.capacity
        buffer = self._buffer
        if self.rows is None:
            n = int(values.size)
            if n == 0:
                return
            if n >= capacity:
                keep = values[n - capacity:]
                start = (self._next + (n - capacity)) % capacity
                split = capacity - start
                buffer[start:] = keep[:split]
                buffer[:start] = keep[split:]
            else:
                end = self._next + n
                if end <= capacity:
                    buffer[self._next:end] = values
                else:
                    split = capacity - self._next
                    buffer[self._next:] = values[:split]
                    buffer[: end - capacity] = values[split:]
        else:
            n = int(values.shape[1])
            if n == 0:
                return
            if n >= capacity:
                keep = values[:, n - capacity:]
                start = (self._next + (n - capacity)) % capacity
                split = capacity - start
                buffer[:, start:] = keep[:, :split]
                buffer[:, :start] = keep[:, split:]
            else:
                end = self._next + n
                if end <= capacity:
                    buffer[:, self._next:end] = values
                else:
                    split = capacity - self._next
                    buffer[:, self._next:] = values[:, :split]
                    buffer[:, : end - capacity] = values[:, split:]
        self._next = (self._next + n) % capacity
        self._filled = min(self._filled + n, capacity)

    def values(self) -> np.ndarray:
        """Window contents in arrival order (float32)."""
        if self._filled < self.capacity:
            if self.rows is None:
                return self._buffer[: self._filled].copy()
            return self._buffer[:, : self._filled].copy()
        if self._next == 0:
            return self._buffer.copy()
        if self.rows is None:
            return np.concatenate([self._buffer[self._next:], self._buffer[: self._next]])
        return np.concatenate(
            [self._buffer[:, self._next:], self._buffer[:, : self._next]], axis=1
        )


def goertzel_power(values: np.ndarray, k: int) -> float:
    """``|X_k|**2`` of one DFT bin via the Goertzel recursion.

    Evaluates a single bin of the unnormalized forward DFT (numpy's FFT
    convention) in O(n) time and O(1) space -- the streaming detector
    needs only the daily bins, never the full spectrum.
    """
    samples = np.asarray(values, dtype=float).tolist()
    n = len(samples)
    if n == 0:
        return 0.0
    coeff = 2.0 * math.cos(2.0 * math.pi * k / n)
    s_prev = 0.0
    s_prev2 = 0.0
    for x in samples:
        s_prev, s_prev2 = x + coeff * s_prev - s_prev2, s_prev
    return s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2


def windowed_diurnal_power_ratio(
    rtt_ms: np.ndarray, period_hours: float, band: int = 1
) -> float:
    """The :func:`repro.core.congestion.diurnal_power_ratio` of a window.

    Same gap filling, same guards, same band -- but the daily-bin powers
    come from Goertzel recursions and the total non-DC power from
    Parseval's theorem (``sum|X_k|**2 = n * sum x**2``), so no spectrum
    is ever materialized.  Agrees with the batch FFT ratio to ~1e-9
    relative (floating-point summation order is the only difference).
    """
    values = np.asarray(rtt_ms, dtype=float)
    filled = fill_missing_rtts(values)
    if filled is None:
        return float("nan")
    n = int(filled.size)
    if n < 8:
        return float("nan")
    days = period_hours * n / HOURS_PER_DAY
    if days < 1.0:
        return float("nan")

    centered = filled - filled.mean()
    sum_sq = float(np.dot(centered, centered))
    dc_power = float(centered.sum()) ** 2
    # Parseval over the one-sided (rfft) spectrum, bins 1..n//2: every
    # interior bin appears twice in the full spectrum, DC and (for even
    # n) the Nyquist bin once.
    if n % 2 == 0:
        alternating = float(centered[::2].sum() - centered[1::2].sum())
        nyquist_power = alternating * alternating
        total = (n * sum_sq - dc_power - nyquist_power) / 2.0 + nyquist_power
    else:
        total = (n * sum_sq - dc_power) / 2.0
    if total <= 0:
        return 0.0
    spectrum_size = n // 2 + 1
    daily_bin = int(round(days))
    low = max(1, daily_bin - band)
    high = min(spectrum_size - 1, daily_bin + band)
    if low > high:
        return float("nan")
    band_power = 0.0
    for bin_index in range(low, high + 1):
        band_power += goertzel_power(centered, bin_index)
    return float(band_power / total)


def batched_diurnal_power_ratios(
    series_list: List[np.ndarray], period_hours: float, band: int = 1
) -> List[float]:
    """:func:`windowed_diurnal_power_ratio` over many windows at once.

    Per-window guards, centering and Parseval totals are element-for-
    element the scalar function's; the Goertzel recursions then run as
    vector updates over all (window, bin) pairs of the same length, so a
    population of P windows costs one length-n loop of array ops instead
    of P*bins scalar recursions.  The recursion keeps the scalar code's
    float association (``(x + coeff*s) - s2``) and takes its bin
    coefficients from ``math.cos``, so every returned ratio is bitwise
    the scalar function's.
    """
    results: List[float] = [float("nan")] * len(series_list)
    groups: Dict[Tuple[int, int, int], List[Tuple[int, np.ndarray, float]]] = {}
    for index, rtt_ms in enumerate(series_list):
        values = np.asarray(rtt_ms, dtype=float)
        filled = fill_missing_rtts(values)
        if filled is None:
            continue
        n = int(filled.size)
        if n < 8:
            continue
        days = period_hours * n / HOURS_PER_DAY
        if days < 1.0:
            continue
        centered = filled - filled.mean()
        sum_sq = float(np.dot(centered, centered))
        dc_power = float(centered.sum()) ** 2
        if n % 2 == 0:
            alternating = float(centered[::2].sum() - centered[1::2].sum())
            nyquist_power = alternating * alternating
            total = (n * sum_sq - dc_power - nyquist_power) / 2.0 + nyquist_power
        else:
            total = (n * sum_sq - dc_power) / 2.0
        if total <= 0:
            results[index] = 0.0
            continue
        spectrum_size = n // 2 + 1
        daily_bin = int(round(days))
        low = max(1, daily_bin - band)
        high = min(spectrum_size - 1, daily_bin + band)
        if low > high:
            continue
        groups.setdefault((n, low, high), []).append((index, centered, total))

    for (n, low, high), members in groups.items():
        stacked = np.stack([centered for _, centered, _ in members])
        coeff = np.array(
            [2.0 * math.cos(2.0 * math.pi * k / n) for k in range(low, high + 1)]
        )
        shape = (len(members), coeff.size)
        s_prev = np.zeros(shape)
        s_prev2 = np.zeros(shape)
        for step in range(n):
            x_t = stacked[:, step : step + 1]
            s_prev, s_prev2 = (x_t + coeff * s_prev) - s_prev2, s_prev
        powers = (s_prev * s_prev + s_prev2 * s_prev2) - (coeff * s_prev) * s_prev2
        band_power = np.zeros(len(members))
        for column in range(coeff.size):
            band_power = band_power + powers[:, column]
        for row, (index, _, total) in enumerate(members):
            results[index] = float(band_power[row] / total)
    return results


# ---------------------------------------------------------------------------
# Long-term stream: route changes, prevalence, per-path percentiles
# ---------------------------------------------------------------------------


@dataclass
class PathSummary:
    """Finalized per-pair routing statistics (Figures 3 and 6 inputs)."""

    key: UnitKey
    changes: int
    unique_paths: int
    popular_prevalence: Optional[float]
    suboptimal: Dict[float, float] = field(default_factory=dict)


class _PairPathState:
    __slots__ = ("last", "changes", "counts", "finite", "p10")

    def __init__(self) -> None:
        self.last: object = _UNSEEN
        self.changes = 0
        self.counts: Dict[Tuple[int, ...], int] = {}
        self.finite: Dict[Tuple[int, ...], int] = {}
        self.p10: Dict[Tuple[int, ...], P2Quantile] = {}

    def __getstate__(self):
        return (self.last, self.changes, self.counts, self.finite, self.p10)

    def __setstate__(self, state) -> None:
        self.last, self.changes, self.counts, self.finite, self.p10 = state


class PathStatsOperator:
    """Incremental route-change + per-path RTT statistics per pair.

    Keeps, per (src, dst, version): the previous usable AS path, a change
    counter, per-path observation counts (lifetimes are counts times the
    grid period), and a P-squared p10 estimator per path (the only
    percentile the Figure 6 summary reads).  Everything except the
    percentile estimates is exactly the batch computation.

    Units arrive either as records (:meth:`observe`, one round at a
    time) or as whole columns (:meth:`observe_columns`); both leave the
    operator in the same state.
    """

    def __init__(self, period_hours: float) -> None:
        self.period_hours = float(period_hours)
        self._states: Dict[UnitKey, _PairPathState] = {}

    def start_unit(self, key: UnitKey, meta: object = None) -> None:
        """Register a unit so empty timelines still appear in finals."""
        if key not in self._states:
            self._states[key] = _PairPathState()

    def observe(self, record: TracerouteRecord) -> None:
        """Feed one traceroute record (records of a pair in time order)."""
        if record.outcome not in USABLE_OUTCOMES:
            return
        key = (record.src, record.dst, record.version)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _PairPathState()
        path = record.as_path
        if state.last is not _UNSEEN and state.last != path:
            state.changes += 1
        state.last = path
        if path is None:
            return
        state.counts[path] = state.counts.get(path, 0) + 1
        rtt = record.rtt_ms
        if math.isfinite(rtt):
            state.finite[path] = state.finite.get(path, 0) + 1
            if path not in state.p10:
                state.p10[path] = P2Quantile(0.10)
            state.p10[path].observe(rtt)

    def observe_columns(self, columns) -> None:
        """Feed one unit's trace columns (same state as per-record feed).

        Path ids are interned per timeline, so id equality is path
        equality: route changes count sign changes in the usable id
        sequence, per-path tallies come from bincounts, and each path's
        finite RTTs reach its p10 estimator grouped but still in time
        order.  Dict insertion order (which fixes the summary's path
        list) follows first appearance, as the record feed's does.
        """
        state = self._states.get(columns.key)
        if state is None:
            state = self._states[columns.key] = _PairPathState()
        usable = _USABLE_LUT[columns.outcome]
        pids = columns.path_id[usable]
        if pids.size == 0:
            return
        paths = columns.paths
        first_pid = int(pids[0])
        first_path = paths[first_pid] if first_pid >= 0 else None
        if state.last is not _UNSEEN and state.last != first_path:
            state.changes += 1
        state.changes += int(np.count_nonzero(pids[1:] != pids[:-1]))
        last_pid = int(pids[-1])
        state.last = paths[last_pid] if last_pid >= 0 else None

        attributed = pids >= 0
        if not attributed.any():
            return
        apids = pids[attributed]
        tallies = np.bincount(apids, minlength=len(paths))
        uniq, first_index = np.unique(apids, return_index=True)
        for rank in np.argsort(first_index, kind="stable"):
            pid = int(uniq[rank])
            path = paths[pid]
            state.counts[path] = state.counts.get(path, 0) + int(tallies[pid])

        rtt = columns.rtt_ms[usable]
        finite_idx = np.flatnonzero(attributed & np.isfinite(rtt))
        if finite_idx.size == 0:
            return
        group_pids = pids[finite_idx]
        order = np.argsort(group_pids, kind="stable")
        sorted_pids = group_pids[order]
        sorted_rtts = rtt[finite_idx][order]
        bounds = np.flatnonzero(sorted_pids[1:] != sorted_pids[:-1]) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [sorted_pids.size]))
        for start, end in zip(starts.tolist(), ends.tolist()):
            path = paths[int(sorted_pids[start])]
            state.finite[path] = state.finite.get(path, 0) + (end - start)
            estimator = state.p10.get(path)
            if estimator is None:
                estimator = state.p10[path] = P2Quantile(0.10)
            estimator.observe_many(sorted_rtts[start:end])

    def finalize(
        self, thresholds_ms: Tuple[float, ...] = DEFAULT_THRESHOLDS_MS
    ) -> Dict[UnitKey, PathSummary]:
        """Per-pair summaries, in unit arrival order."""
        summaries: Dict[UnitKey, PathSummary] = {}
        for key, state in self._states.items():
            summaries[key] = self._summarize(key, state, thresholds_ms)
        return summaries

    def _summarize(
        self, key: UnitKey, state: _PairPathState, thresholds_ms: Tuple[float, ...]
    ) -> PathSummary:
        paths = list(state.counts)
        if not paths:
            return PathSummary(
                key=key, changes=state.changes, unique_paths=0,
                popular_prevalence=None,
                suboptimal={threshold: 0.0 for threshold in thresholds_ms},
            )
        # Lifetimes are integer counts times the grid period; their sum is
        # exact in floating point, so prevalence matches batch bit for bit.
        lifetimes = [state.counts[path] * self.period_hours for path in paths]
        total = sum(lifetimes)
        prevalence = [lifetime / total for lifetime in lifetimes]
        popular = prevalence[0]
        for value in prevalence[1:]:
            if value > popular:
                popular = value

        # Figure 6: increase of each path's p10 over the best path's; the
        # best path breaks percentile ties by first-seen order, mirroring
        # the batch tie-break on (value, path_id).
        selection = {
            index: state.p10[path].value()
            for index, path in enumerate(paths)
            if state.finite.get(path, 0) >= MIN_BUCKET_SAMPLES
        }
        suboptimal = {threshold: 0.0 for threshold in thresholds_ms}
        if len(selection) >= 2:
            best = min(selection, key=lambda index: (selection[index], index))
            for threshold in thresholds_ms:
                suboptimal[threshold] = sum(
                    prevalence[index]
                    for index, value in selection.items()
                    if index != best and value - selection[best] >= threshold
                )
        return PathSummary(
            key=key,
            changes=state.changes,
            unique_paths=len(paths),
            popular_prevalence=popular,
            suboptimal=suboptimal,
        )


# ---------------------------------------------------------------------------
# Ping stream: the sliding-window congestion detector
# ---------------------------------------------------------------------------


class _CongestionState:
    __slots__ = ("window", "valid", "seen")

    def __init__(self, capacity: int) -> None:
        self.window = RingWindow(capacity)
        self.valid = 0
        self.seen = 0

    def __getstate__(self):
        return (self.window, self.valid, self.seen)

    def __setstate__(self, state) -> None:
        self.window, self.valid, self.seen = state


class CongestionWindowOperator:
    """Section 5.1 congestion verdicts from a sliding RTT window.

    With ``window_rounds`` covering the whole campaign (the engine's
    default) every verdict matches the batch detector's; a smaller window
    turns the detector into a rolling one whose verdict reflects the most
    recent ``window_rounds`` samples only (documented approximation).
    """

    def __init__(
        self,
        period_hours: float,
        window_rounds: int,
        detector: Optional[CongestionDetector] = None,
    ) -> None:
        self.period_hours = float(period_hours)
        self.window_rounds = int(window_rounds)
        self.detector = detector or CongestionDetector()
        self._states: Dict[UnitKey, _CongestionState] = {}

    def start_unit(self, key: UnitKey, meta: object = None) -> None:
        """Register one pair's series."""
        if key not in self._states:
            self._states[key] = _CongestionState(self.window_rounds)

    def observe(self, record: PingRecord) -> None:
        """Feed one ping record."""
        key = (record.src, record.dst, record.version)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _CongestionState(self.window_rounds)
        state.window.push(record.rtt_ms)
        state.seen += 1
        if math.isfinite(record.rtt_ms):
            state.valid += 1

    def observe_columns(self, columns) -> None:
        """Feed one unit's ping columns (same state as per-record feed)."""
        state = self._states.get(columns.key)
        if state is None:
            state = self._states[columns.key] = _CongestionState(self.window_rounds)
        rtt = columns.rtt_ms
        state.window.extend(rtt)
        state.seen += int(rtt.size)
        state.valid += int(np.count_nonzero(np.isfinite(rtt)))

    def _assess(self, state: _CongestionState) -> CongestionVerdict:
        values = state.window.values().astype(float)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            spread = float("nan")
        else:
            low, high = self.detector.spread_percentiles
            spread = float(np.percentile(finite, high) - np.percentile(finite, low))
        ratio = windowed_diurnal_power_ratio(
            values, self.period_hours, band=self.detector.band
        )
        return CongestionVerdict(
            spread_ms=spread,
            power_ratio=ratio,
            spread_exceeds=bool(
                np.isfinite(spread) and spread > self.detector.spread_threshold_ms
            ),
            diurnal=bool(
                np.isfinite(ratio) and ratio >= self.detector.power_ratio_threshold
            ),
        )

    def verdicts(self) -> Dict[UnitKey, CongestionVerdict]:
        """Current verdict per pair (window occupancy goes to metrics).

        The diurnal ratios of all windows run through one batched
        Goertzel pass (bitwise the per-window recursion); the spreads
        stay per-window percentile calls.
        """
        occupancy = obs_metrics.histogram("stream.window_occupancy")
        keys = list(self._states)
        results: Dict[UnitKey, CongestionVerdict] = {}
        # Chunked so the f64 window copies never all live at once -- the
        # memory bound is the operator's contract, not just its buffers'.
        chunk = 256
        for offset in range(0, len(keys), chunk):
            block = keys[offset : offset + chunk]
            windows: List[np.ndarray] = []
            for key in block:
                state = self._states[key]
                occupancy.observe(len(state.window))
                windows.append(state.window.values().astype(float))
            ratios = batched_diurnal_power_ratios(
                windows, self.period_hours, band=self.detector.band
            )
            for key, values, ratio in zip(block, windows, ratios):
                finite = values[np.isfinite(values)]
                if finite.size == 0:
                    spread = float("nan")
                else:
                    low, high = self.detector.spread_percentiles
                    spread = float(
                        np.percentile(finite, high) - np.percentile(finite, low)
                    )
                results[key] = CongestionVerdict(
                    spread_ms=spread,
                    power_ratio=ratio,
                    spread_exceeds=bool(
                        np.isfinite(spread) and spread > self.detector.spread_threshold_ms
                    ),
                    diurnal=bool(
                        np.isfinite(ratio) and ratio >= self.detector.power_ratio_threshold
                    ),
                )
        return results

    def valid_counts(self) -> Dict[UnitKey, int]:
        """Answered-probe count per pair (whole stream, not the window)."""
        return {key: state.valid for key, state in self._states.items()}

    def population_stats(
        self,
        verdicts: Dict[UnitKey, CongestionVerdict],
        version: int,
        min_valid_samples: int = 600,
    ) -> PopulationStats:
        """The Section 5.1 population counts for one protocol."""
        pairs = spread_count = congested_count = 0
        for key, state in self._states.items():
            if key[2] != version:
                continue
            required = min(min_valid_samples, int(0.9 * state.seen))
            if state.valid < required:
                continue
            verdict = verdicts[key]
            pairs += 1
            if verdict.spread_exceeds:
                spread_count += 1
            if verdict.congested:
                congested_count += 1
        return PopulationStats(
            pairs=pairs, spread_exceeds=spread_count, congested=congested_count
        )


# ---------------------------------------------------------------------------
# Short-term trace stream: windowed localization
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentMeta:
    """Static per-unit context for the localization window."""

    hop_addresses: Tuple[object, ...]
    segment_keys: Tuple[object, ...]
    static_path: bool


@dataclass
class SegmentOutcome:
    """Windowed localization outcome for one pair."""

    key: UnitKey
    static_path: bool
    end_to_end_diurnal: bool
    congested_hop: Optional[int]
    link: Optional[Tuple[object, object]]
    segment_keys: Tuple[object, ...]


class _SegmentState:
    __slots__ = ("meta", "window")

    def __init__(self, meta: SegmentMeta, capacity: int) -> None:
        self.meta = meta
        self.window = RingWindow(capacity, rows=len(meta.hop_addresses))

    def __getstate__(self):
        return (self.meta, self.window)

    def __setstate__(self, state) -> None:
        self.meta, self.window = state


class _WindowEntry:
    """Duck-typed :class:`repro.datasets.shortterm.SegmentSeries` view.

    Carries exactly the attributes
    :func:`repro.core.localization.segment_correlations` reads, so the
    windowed correlations reuse the batch code path verbatim.
    """

    __slots__ = ("rtt_ms", "hop_rtt_ms", "n_hops")

    def __init__(self, matrix: np.ndarray) -> None:
        self.hop_rtt_ms = matrix
        self.rtt_ms = matrix[-1]
        self.n_hops = int(matrix.shape[0])


class SegmentWindowOperator:
    """Section 5.2 localization fed from the sliding window.

    The end-to-end verdict uses the same Goertzel-windowed spectral test
    as :class:`CongestionWindowOperator`; segment correlation walks hops
    with the batch masked-Pearson code over the windowed matrix.
    """

    def __init__(
        self,
        period_hours: float,
        window_rounds: int,
        detector: Optional[CongestionDetector] = None,
        rho_threshold: float = 0.5,
    ) -> None:
        self.period_hours = float(period_hours)
        self.window_rounds = int(window_rounds)
        self.detector = detector or CongestionDetector()
        self.rho_threshold = float(rho_threshold)
        self._states: Dict[UnitKey, _SegmentState] = {}

    def start_unit(self, key: UnitKey, meta: object = None) -> None:
        """Register one pair's window; ``meta`` must be a SegmentMeta."""
        if key not in self._states:
            if not isinstance(meta, SegmentMeta):
                raise TypeError("SegmentWindowOperator units need SegmentMeta")
            self._states[key] = _SegmentState(meta, self.window_rounds)

    def observe(self, record: SegmentRecord) -> None:
        """Feed one per-hop traceroute round."""
        key = (record.src, record.dst, record.version)
        state = self._states[key]
        state.window.push(np.asarray(record.hop_rtt_ms, dtype=np.float32))

    def observe_columns(self, columns) -> None:
        """Feed one unit's per-hop matrix (same state as per-record feed)."""
        state = self._states[columns.key]
        state.window.extend(columns.hop_rtt_ms)

    def _assess_e2e(self, e2e: np.ndarray) -> CongestionVerdict:
        values = e2e.astype(float)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            spread = float("nan")
        else:
            low, high = self.detector.spread_percentiles
            spread = float(np.percentile(finite, high) - np.percentile(finite, low))
        ratio = windowed_diurnal_power_ratio(
            values, self.period_hours, band=self.detector.band
        )
        return CongestionVerdict(
            spread_ms=spread,
            power_ratio=ratio,
            spread_exceeds=bool(
                np.isfinite(spread) and spread > self.detector.spread_threshold_ms
            ),
            diurnal=bool(
                np.isfinite(ratio) and ratio >= self.detector.power_ratio_threshold
            ),
        )

    def outcomes(self) -> Dict[UnitKey, SegmentOutcome]:
        """Windowed localization per pair, in unit arrival order."""
        occupancy = obs_metrics.histogram("stream.window_occupancy")
        keys = list(self._states)
        matrices: List[np.ndarray] = []
        e2e_values: List[np.ndarray] = []
        for key in keys:
            state = self._states[key]
            occupancy.observe(len(state.window))
            matrix = state.window.values()
            matrices.append(matrix)
            e2e_values.append(matrix[-1].astype(float))
        ratios = batched_diurnal_power_ratios(
            e2e_values, self.period_hours, band=self.detector.band
        )
        results: Dict[UnitKey, SegmentOutcome] = {}
        for key, matrix, values, ratio in zip(keys, matrices, e2e_values, ratios):
            state = self._states[key]
            finite = values[np.isfinite(values)]
            if finite.size == 0:
                spread = float("nan")
            else:
                low, high = self.detector.spread_percentiles
                spread = float(np.percentile(finite, high) - np.percentile(finite, low))
            verdict = CongestionVerdict(
                spread_ms=spread,
                power_ratio=ratio,
                spread_exceeds=bool(
                    np.isfinite(spread) and spread > self.detector.spread_threshold_ms
                ),
                diurnal=bool(
                    np.isfinite(ratio) and ratio >= self.detector.power_ratio_threshold
                ),
            )
            congested_hop: Optional[int] = None
            link = None
            if verdict.congested:
                correlations = segment_correlations(_WindowEntry(matrix))
                for hop, correlation in enumerate(correlations):
                    if np.isfinite(correlation) and correlation >= self.rho_threshold:
                        near = state.meta.hop_addresses[hop - 1] if hop > 0 else None
                        congested_hop = hop
                        link = (near, state.meta.hop_addresses[hop])
                        break
            results[key] = SegmentOutcome(
                key=key,
                static_path=state.meta.static_path,
                end_to_end_diurnal=verdict.congested,
                congested_hop=congested_hop,
                link=link,
                segment_keys=state.meta.segment_keys,
            )
        return results
