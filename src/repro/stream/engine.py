"""The streaming engine: online reproduction of the paper's analyses.

:class:`StreamEngine` runs the experiments the incremental operators can
serve -- ``fig3``, ``fig6``, ``congestion-norm`` and ``localization`` --
over record streams in three phases (long-term traceroutes, short-term
pings, short-term per-hop traceroutes), holding only one pair's records
plus the operators' bounded state in memory at any time.  Results come
back as the same :class:`~repro.harness.experiments.ExperimentResult`
objects the batch drivers produce, with identical metric names, paper
values and rendered reports; the only documented divergence is the
P-squared percentile approximation behind ``fig6``.

Checkpoint/resume: with a :class:`~repro.stream.checkpoint.CheckpointStore`
attached, the engine snapshots the live operator every
``checkpoint_every`` units and at each phase boundary.  A killed run
resumed from its last snapshot replays only the remaining units --
every unit draws from its own named RNG stream, so the resumed run's
reports are **byte-identical** to an uninterrupted run's.

Telemetry: spans per phase (``stream:<phase>`` with unit/record counts
and records/sec), counters (``stream.units``, ``stream.records``),
queue-depth and window-occupancy gauges/histograms from the sources and
operators, and checkpoint latency histograms from the store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.congestion import PopulationStats
from repro.core.ecdf import ECDF
from repro.core.suboptimal import DEFAULT_THRESHOLDS_MS
from repro.datasets.longterm import LongTermConfig
from repro.datasets.shortterm import ShortTermConfig
from repro.harness.experiments import ExperimentResult, Metric
from repro.harness.report import render_ecdf, render_table
from repro.measurement.platform import MeasurementPlatform
from repro.net.ip import IPVersion
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger
from repro.obs.trace import get_tracer
from repro.stream.checkpoint import (
    CheckpointStore,
    checkpoint_fingerprint,
    required_phases,
)
from repro.stream.operators import (
    CongestionWindowOperator,
    PathStatsOperator,
    SegmentWindowOperator,
)
from repro.faults.completeness import DataCompleteness, MissingUnit
from repro.faults.plane import SupervisionPolicy
from repro.stream.source import (
    LongTermTraceSource,
    PingSource,
    SegmentTraceSource,
    ShardedSource,
    StreamUnit,
)

__all__ = [
    "STREAM_EXPERIMENTS",
    "StreamConfig",
    "StreamInterrupted",
    "StreamEngine",
]

STREAM_EXPERIMENTS: Tuple[str, ...] = (
    "fig3",
    "fig6",
    "congestion-norm",
    "localization",
)
"""The experiments the incremental operators can serve."""

_LOG = get_logger("repro.stream.engine")

_VERSIONS = (IPVersion.V4, IPVersion.V6)


@dataclass
class StreamConfig:
    """Knobs of the streaming run.

    Attributes:
        window_rounds: Sliding-window length (in rounds) of the
            congestion/localization operators.  ``None`` sizes each
            window to its full campaign, which makes the stream verdicts
            equal to the batch detector's; smaller windows bound memory
            harder but assess only the most recent rounds.
        shards: Worker processes fanning unit construction
            (``1`` = serial in-process).
        queue_units: Bound of each shard's unit queue (backpressure
            depth).
        checkpoint_every: Snapshot the live operator every this many
            stream units (when a checkpoint store is attached).
        trim_realizations: Drop the platform's per-pair realization
            cache after each unit, keeping memory flat over the mesh.
        columnar: Build units through the columnar kernels and feed the
            operators whole column blocks instead of per-round record
            objects.  Results are identical either way; the record path
            remains as the reference implementation.
    """

    window_rounds: Optional[int] = None
    shards: int = 1
    queue_units: int = 4
    checkpoint_every: int = 64
    trim_realizations: bool = True
    columnar: bool = True
    supervision: Optional[SupervisionPolicy] = None
    """Shard supervision (restart/backoff/quarantine) for the fan-out;
    ``None`` keeps the fail-fast :class:`ShardError` behavior.  Part of
    the checkpoint fingerprint like every stream knob."""


class StreamInterrupted(RuntimeError):
    """Raised when a run hits its ``max_units`` budget (kill simulation)."""

    def __init__(self, phase: str, units_done: int) -> None:
        super().__init__(f"stream interrupted in phase {phase!r} after {units_done} units")
        self.phase = phase
        self.units_done = units_done


class StreamEngine:
    """Drive the streaming operators over a platform's record streams."""

    def __init__(
        self,
        platform: MeasurementPlatform,
        longterm_config: Optional[LongTermConfig] = None,
        shortterm_config: Optional[ShortTermConfig] = None,
        experiments: Sequence[str] = STREAM_EXPERIMENTS,
        config: Optional[StreamConfig] = None,
        checkpoint_dir: Optional[object] = None,
    ) -> None:
        unsupported = [name for name in experiments if name not in STREAM_EXPERIMENTS]
        if unsupported:
            raise ValueError(
                f"experiments not served by the stream engine: {unsupported}; "
                f"available: {list(STREAM_EXPERIMENTS)}"
            )
        self.platform = platform
        self.longterm_config = longterm_config or LongTermConfig()
        self.shortterm_config = shortterm_config or ShortTermConfig()
        self.experiments = tuple(experiments)
        self.config = config or StreamConfig()
        self.fingerprint = checkpoint_fingerprint(
            platform.config,
            self.longterm_config,
            self.shortterm_config,
            self.config,
            self.experiments,
        )
        self.checkpoint_store: Optional[CheckpointStore] = (
            CheckpointStore(checkpoint_dir, self.fingerprint)
            if checkpoint_dir is not None
            else None
        )
        self._completed: Dict[str, object] = {}
        self._processed = 0
        self._max_units: Optional[int] = None
        self.completeness = DataCompleteness()
        """Delivered/missing accounting across all phases (only a
        supervised fan-out ever records misses)."""
        self._completeness_base = 0
        """Global unit-index offset of the next phase (phases reuse
        indices from 0, the accountant needs disjoint ranges)."""

    # ------------------------------------------------------------------
    # Phase driving
    # ------------------------------------------------------------------

    def _window(self, campaign_rounds: int) -> int:
        if self.config.window_rounds is None:
            return campaign_rounds
        return min(self.config.window_rounds, campaign_rounds)

    def _feed(self, operator, unit: StreamUnit) -> None:
        if unit.kind == "segment" and unit.meta is None:
            return  # placeholder for a pair the builders skipped
        operator.start_unit(unit.key, unit.meta)
        if unit.columns is not None:
            operator.observe_columns(unit.columns)
            return
        for record in unit.records:
            operator.observe(record)

    def _consume(self, phase: str, source, operator, units_done: int) -> None:
        """Feed units ``units_done..`` of a phase into its operator."""
        total = len(source)
        base = self._completeness_base
        self._completeness_base = base + total
        sharded = ShardedSource(
            source,
            self.config.shards,
            self.config.queue_units,
            supervision=self.config.supervision,
            completeness=self.completeness.offset_view(base),
        )
        records_counter = obs_metrics.counter("stream.records")
        store = self.checkpoint_store
        every = self.config.checkpoint_every
        obs_live.get_status().set_phase(f"stream:{phase}")
        registry = obs_metrics.get_registry()
        registry.gauge("stream.phase_units_total").set(total)
        units_done_gauge = registry.gauge("stream.units_done")
        units_done_gauge.set(units_done)
        with get_tracer().span(
            f"stream:{phase}", units=total, resumed_at=units_done
        ) as span:
            started = time.perf_counter()
            records = 0
            for unit in sharded.iter_from(units_done):
                if isinstance(unit, MissingUnit):
                    # Quarantined/exhausted unit: the completeness
                    # accountant already holds the deficit row; the
                    # stream keeps its cursor moving so the rest of the
                    # phase still lands.
                    pass
                else:
                    self._feed(operator, unit)
                    self.completeness.deliver(base + units_done)
                    records += unit.record_count
                    records_counter.inc(unit.record_count)
                units_done += 1
                self._processed += 1
                units_done_gauge.set(units_done)
                if store is not None and every and units_done % every == 0 and units_done < total:
                    store.save(phase, units_done, operator, self._completed)
                if self._max_units is not None and self._processed >= self._max_units:
                    if units_done < total:
                        raise StreamInterrupted(phase, units_done)
            elapsed = time.perf_counter() - started
            span.attrs["records"] = records
            span.attrs["records_per_second"] = (
                round(records / elapsed, 1) if elapsed > 0 else 0.0
            )
        _LOG.info(
            "stream.phase.done", phase=phase, units=total, records=records
        )

    def _restore(self, phase: str, state: Optional[Dict[str, object]]):
        """(operator, units_done) to resume a phase from, or (None, 0)."""
        if (
            state is not None
            and state.get("phase") == phase
            and state.get("operator") is not None
        ):
            return state["operator"], int(state["units_done"])
        return None, 0

    def _phase_done(self, phase: str) -> None:
        """Snapshot a finished phase so a resume never replays it."""
        if self.checkpoint_store is not None:
            self.checkpoint_store.save(phase, 0, None, self._completed)
        if self._max_units is not None and self._processed >= self._max_units:
            raise StreamInterrupted(phase, self._processed)

    def run(
        self, resume: bool = False, max_units: Optional[int] = None
    ) -> List[ExperimentResult]:
        """Run all phases the requested experiments need.

        Args:
            resume: Restore phase progress from the checkpoint store (a
                missing/mismatched snapshot silently starts from zero).
            max_units: Stop (with :class:`StreamInterrupted`) after this
                many stream units -- the kill switch the resume tests
                use to simulate a mid-campaign crash.
        """
        self._max_units = max_units
        self._processed = 0
        state = (
            self.checkpoint_store.load()
            if (resume and self.checkpoint_store is not None)
            else None
        )
        self._completed = dict(state["completed"]) if state is not None else {}
        phases = required_phases(self.experiments)

        with get_tracer().span("stream:run", experiments=",".join(self.experiments)):
            if phases["longterm"] and "longterm" not in self._completed:
                operator, start = self._restore("longterm", state)
                if operator is None:
                    operator = PathStatsOperator(self.longterm_config.period_hours)
                source = LongTermTraceSource(
                    self.platform,
                    self.longterm_config,
                    trim_realizations=self.config.trim_realizations,
                    columnar=self.config.columnar,
                )
                self._consume("longterm", source, operator, start)
                self._completed["longterm"] = operator.finalize()
                self._phase_done("longterm")

            if phases["ping"] and "ping" not in self._completed:
                operator, start = self._restore("ping", state)
                source = PingSource(
                    self.platform,
                    self.shortterm_config,
                    trim_realizations=self.config.trim_realizations,
                    columnar=self.config.columnar,
                )
                if operator is None:
                    operator = CongestionWindowOperator(
                        source.grid.period_hours, self._window(source.grid.rounds)
                    )
                self._consume("ping", source, operator, start)
                verdicts = operator.verdicts()
                self._completed["ping"] = {
                    "verdicts": verdicts,
                    "stats": {
                        int(version): operator.population_stats(verdicts, int(version))
                        for version in _VERSIONS
                    },
                    "flagged": sorted(
                        {
                            (key[0], key[1])
                            for key, verdict in verdicts.items()
                            if verdict.congested
                        }
                    ),
                }
                self._phase_done("ping")

            if phases["segment"] and "segment" not in self._completed:
                operator, start = self._restore("segment", state)
                pairs = self._flagged_pairs()
                source = SegmentTraceSource(
                    self.platform,
                    pairs,
                    self.shortterm_config,
                    trim_realizations=self.config.trim_realizations,
                    columnar=self.config.columnar,
                )
                if operator is None:
                    operator = SegmentWindowOperator(
                        source.grid.period_hours, self._window(source.grid.rounds)
                    )
                self._consume("segment", source, operator, start)
                self._completed["segment"] = operator.outcomes()
                self._phase_done("segment")

        if self.checkpoint_store is not None:
            # The run finished; a stale snapshot must not shadow the next.
            self.checkpoint_store.clear()
        return self.results()

    def _flagged_pairs(self):
        """Server pairs the ping phase flagged (the Section 5.2 targets)."""
        flagged = self._completed["ping"]["flagged"]
        servers = {
            server.server_id: server
            for server in self.platform.measurement_servers()
        }
        return [
            (servers[src_id], servers[dst_id])
            for src_id, dst_id in flagged
            if src_id in servers and dst_id in servers
        ]

    # ------------------------------------------------------------------
    # Result building (mirrors repro.harness.experiments byte for byte)
    # ------------------------------------------------------------------

    def results(self) -> List[ExperimentResult]:
        """Experiment results from the completed phases, in batch order."""
        builders = {
            "fig3": self._result_fig3,
            "fig6": self._result_fig6,
            "congestion-norm": self._result_congestion_norm,
            "localization": self._result_localization,
        }
        return [
            builders[name]()
            for name in STREAM_EXPERIMENTS
            if name in self.experiments
        ]

    def _summaries(self, version: IPVersion):
        summaries = self._completed["longterm"]
        return [
            summary
            for key, summary in summaries.items()
            if key[2] == int(version)
        ]

    def _result_fig3(self) -> ExperimentResult:
        metrics: List[Metric] = []
        reports: List[str] = []
        for version in _VERSIONS:
            stats = self._summaries(version)
            prevalences = [
                s.popular_prevalence for s in stats if s.popular_prevalence is not None
            ]
            prevalence_ecdf = ECDF(prevalences)
            dominant = 100 * prevalence_ecdf.tail_fraction(0.5)
            metrics.append(
                Metric(f"timelines with dominant path (prev>=50%) v{int(version)}",
                       80.0, dominant, "%")
            )
            changes_ecdf = ECDF([s.changes for s in stats])
            metrics.append(
                Metric(f"no-change timelines v{int(version)}",
                       18.0 if version is IPVersion.V4 else 16.0,
                       100 * changes_ecdf.at(0.0), "%")
            )
            metrics.append(
                Metric(f"changes/timeline p90 v{int(version)}", 30.0,
                       changes_ecdf.quantile(0.9))
            )
            reports.append(render_ecdf(prevalence_ecdf,
                                       f"prevalence of popular AS path (IPv{int(version)})",
                                       probe_points=(0.5,)))
            reports.append(render_ecdf(changes_ecdf,
                                       f"route changes per trace timeline (IPv{int(version)})",
                                       probe_points=(0, 30)))
        return ExperimentResult(
            "fig3", "Popular-path prevalence and route-change frequency", metrics,
            "\n".join(reports),
        )

    def _result_fig6(self) -> ExperimentResult:
        metrics: List[Metric] = []
        reports: List[str] = []
        paper = {
            (IPVersion.V4, 20.0): (0.30, 10.0),
            (IPVersion.V6, 20.0): (0.50, 10.0),
            (IPVersion.V4, 100.0): (0.20, 1.1),
            (IPVersion.V6, 100.0): (0.40, 1.3),
        }
        for version in _VERSIONS:
            stats = self._summaries(version)
            for threshold in sorted(DEFAULT_THRESHOLDS_MS):
                ecdf = ECDF([s.suboptimal[threshold] for s in stats])
                reports.append(
                    render_ecdf(
                        ecdf,
                        f"prevalence of sub-optimal paths, >= {threshold:g}ms "
                        f"(IPv{int(version)})",
                        probe_points=(0.2, 0.3, 0.5),
                    )
                )
                key = (version, threshold)
                if key in paper:
                    probe, paper_pct = paper[key]
                    metrics.append(
                        Metric(
                            f"timelines with >= {threshold:g}ms paths at prevalence "
                            f">= {probe:g} v{int(version)}",
                            paper_pct,
                            100 * ecdf.tail_fraction(probe),
                            "%",
                        )
                    )
        return ExperimentResult("fig6", "Sub-optimal AS-path prevalence", metrics,
                                "\n".join(reports))

    def _result_congestion_norm(self) -> ExperimentResult:
        stats_by_version: Dict[int, PopulationStats] = self._completed["ping"]["stats"]
        metrics: List[Metric] = []
        rows = []
        paper_spread = {IPVersion.V4: 9.5, IPVersion.V6: 4.0}
        paper_congested = {IPVersion.V4: 2.0, IPVersion.V6: 0.6}
        for version in _VERSIONS:
            stats = stats_by_version[int(version)]
            metrics.append(
                Metric(f"pairs with >10ms p95-p5 spread v{int(version)}",
                       paper_spread[version], 100 * stats.spread_fraction, "%")
            )
            metrics.append(
                Metric(f"pairs with strong diurnal + spread v{int(version)}",
                       paper_congested[version], 100 * stats.congested_fraction, "%")
            )
            rows.append(
                (f"IPv{int(version)}", stats.pairs, stats.spread_exceeds, stats.congested)
            )
        report = render_table(
            ("protocol", "pairs", "spread>10ms", "consistent congestion"), rows
        )
        return ExperimentResult(
            "congestion-norm", "Congestion is not the norm (Section 5.1)",
            metrics, report,
        )

    def _result_localization(self) -> ExperimentResult:
        outcomes = self._completed["segment"]
        congested_keys = set(self.platform.congestion.congested_keys())
        located = persistent = attempted = correct = 0
        for outcome in outcomes.values():
            if not outcome.static_path:
                continue
            attempted += 1
            if outcome.end_to_end_diurnal:
                persistent += 1
            if outcome.congested_hop is None:
                continue
            located += 1
            truly_congested = [
                index
                for index, segment in enumerate(outcome.segment_keys)
                if segment in congested_keys
            ]
            if truly_congested and truly_congested[0] == outcome.congested_hop:
                correct += 1
        metrics = [
            Metric("pairs with persistent diurnal weeks later", 30.0,
                   100 * persistent / attempted if attempted else float("nan"), "%"),
            Metric("localization accuracy vs ground truth", None,
                   100 * correct / located if located else float("nan"), "%"),
            Metric("located pairs", None, float(located)),
        ]
        report = (
            f"static-path entries: {attempted}; persistent diurnal: {persistent}; "
            f"located: {located}; ground-truth-correct: {correct}"
        )
        return ExperimentResult("localization", "Locating congestion (Section 5.2)",
                                metrics, report)
