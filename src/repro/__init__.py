"""repro: a reproduction of *A Server-to-Server View of the Internet*.

CoNEXT 2015, Chandrasekaran, Smaragdakis, Berger, Luckie and Ng.

The paper measured the Internet's core from a commercial CDN's servers;
this library rebuilds the whole stack in simulation and re-implements the
paper's analysis pipeline on top:

- **Substrates** -- :mod:`repro.net` (addresses, prefix trie, geography),
  :mod:`repro.topology` (AS graph, addressing, routers, CDN deployment),
  :mod:`repro.routing` (valley-free BGP and routing dynamics),
  :mod:`repro.measurement` (RTT model, congestion processes, traceroute
  and ping engines, the platform façade).
- **Datasets** -- :mod:`repro.datasets` (trace/ping timelines, the
  long-term and short-term campaign builders, persistence).
- **The paper's analyses** -- :mod:`repro.core` (routing-change, congestion
  detection/localization, router ownership, dual-stack and inflation
  studies).
- **Harness** -- :mod:`repro.harness` (scenarios, per-figure experiment
  drivers, text rendering).

Quickstart::

    from repro import MeasurementPlatform, PlatformConfig
    platform = MeasurementPlatform(PlatformConfig(seed=7, cluster_count=12))
    src, dst = platform.server_pairs()[0]
    from repro.net.ip import IPVersion
    path = platform.realization(src, dst, IPVersion.V4, 0)
    record = platform.engine.trace(path, time_hours=10.0, rng=platform.rng("demo"))
    print(record.render())
"""

__version__ = "1.0.0"

__all__ = [
    "MeasurementPlatform",
    "PlatformConfig",
    "Scenario",
    "get_scenario",
    "scenario_platform",
    "scenario_longterm",
    "scenario_ping",
    "scenario_traces",
    "__version__",
]

# The convenience exports are resolved lazily (PEP 562): the simulation
# stack needs numpy, but dependency-light subpackages (repro.lint,
# repro.obs) must stay importable in environments without it -- CI's
# lint job installs only ruff.
_LAZY_EXPORTS = {
    "MeasurementPlatform": "repro.measurement.platform",
    "PlatformConfig": "repro.measurement.platform",
    "Scenario": "repro.harness.scenarios",
    "get_scenario": "repro.harness.scenarios",
    "scenario_platform": "repro.harness.scenarios",
    "scenario_longterm": "repro.harness.scenarios",
    "scenario_ping": "repro.harness.scenarios",
    "scenario_traces": "repro.harness.scenarios",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
