"""repro: a reproduction of *A Server-to-Server View of the Internet*.

CoNEXT 2015, Chandrasekaran, Smaragdakis, Berger, Luckie and Ng.

The paper measured the Internet's core from a commercial CDN's servers;
this library rebuilds the whole stack in simulation and re-implements the
paper's analysis pipeline on top:

- **Substrates** -- :mod:`repro.net` (addresses, prefix trie, geography),
  :mod:`repro.topology` (AS graph, addressing, routers, CDN deployment),
  :mod:`repro.routing` (valley-free BGP and routing dynamics),
  :mod:`repro.measurement` (RTT model, congestion processes, traceroute
  and ping engines, the platform façade).
- **Datasets** -- :mod:`repro.datasets` (trace/ping timelines, the
  long-term and short-term campaign builders, persistence).
- **The paper's analyses** -- :mod:`repro.core` (routing-change, congestion
  detection/localization, router ownership, dual-stack and inflation
  studies).
- **Harness** -- :mod:`repro.harness` (scenarios, per-figure experiment
  drivers, text rendering).

Quickstart::

    from repro import MeasurementPlatform, PlatformConfig
    platform = MeasurementPlatform(PlatformConfig(seed=7, cluster_count=12))
    src, dst = platform.server_pairs()[0]
    from repro.net.ip import IPVersion
    path = platform.realization(src, dst, IPVersion.V4, 0)
    record = platform.engine.trace(path, time_hours=10.0, rng=platform.rng("demo"))
    print(record.render())
"""

from repro.harness.scenarios import (
    Scenario,
    get_scenario,
    scenario_longterm,
    scenario_ping,
    scenario_platform,
    scenario_traces,
)
from repro.measurement.platform import MeasurementPlatform, PlatformConfig

__version__ = "1.0.0"

__all__ = [
    "MeasurementPlatform",
    "PlatformConfig",
    "Scenario",
    "get_scenario",
    "scenario_platform",
    "scenario_longterm",
    "scenario_ping",
    "scenario_traces",
    "__version__",
]
