"""The colocated-clusters campaign (Section 2.2, last paragraph).

"To infer congestion between clusters at the same location we performed
traceroute campaigns between all servers (full mesh) colocated at the same
datacenter or peering facility with a frequency of 30 minutes for a period
of 20 days."

Colocated pairs short-circuit the wide-area core: their paths stay inside
the metro, so a diurnal signal on such a pair localizes congestion to the
facility or the local interconnect rather than a long-haul link.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.datasets.shortterm import (
    ShortTermConfig,
    ShortTermTraceDataset,
    build_shortterm_trace_dataset,
)
from repro.measurement.platform import MeasurementPlatform
from repro.topology.cdn import Server

__all__ = ["colocated_pairs", "build_colocated_dataset"]


def colocated_pairs(platform: MeasurementPlatform) -> List[Tuple[Server, Server]]:
    """Ordered pairs of measurement servers sharing a city.

    Pairs within the same cluster are excluded (their path never leaves
    the rack); pairs in different clusters at the same location are the
    campaign's subject, whether or not the clusters share a host AS.
    """
    by_city: Dict[Tuple[str, str], List[Server]] = defaultdict(list)
    for server in platform.measurement_servers():
        by_city[(server.city.city, server.city.country)].append(server)
    pairs: List[Tuple[Server, Server]] = []
    for servers in by_city.values():
        for src in servers:
            for dst in servers:
                if src.cluster_id == dst.cluster_id:
                    continue
                if src.asn == dst.asn:
                    continue  # realizable paths need distinct host ASes
                pairs.append((src, dst))
    return pairs


def build_colocated_dataset(
    platform: MeasurementPlatform,
    days: float = 20.0,
) -> ShortTermTraceDataset:
    """Build the 30-minute colocated-clusters traceroute dataset.

    Returns an (possibly empty) :class:`ShortTermTraceDataset`; small
    deployments may simply have no colocated clusters.
    """
    config = ShortTermConfig(trace_days=days)
    return build_shortterm_trace_dataset(platform, colocated_pairs(platform), config)
