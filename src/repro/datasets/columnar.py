"""The columnar record plane: preallocated column buffers per campaign.

The batch builders and the streaming sources both ultimately need, per
(pair, version), four parallel arrays over the campaign grid -- RTT,
outcome, path id, true candidate -- plus an interned path table.  The
object path reaches them through per-epoch calls into
:mod:`repro.measurement.rttmodel` / :mod:`repro.measurement.traceroute`
that recompute everything epoch-independent (segment stretch, baseline
RTT, responsiveness products, congestion series) on every call.

This module hoists all of that into per-realization **kernels** and
samples each epoch directly into preallocated full-grid columns.  The
contract is **bit-identity**: every random draw happens in exactly the
order (and with exactly the argument arrays) of the object path, every
floating-point expression keeps the object path's association, and the
interned path table is built in the same sequence -- so a columnar
timeline is indistinguishable, byte for byte, from an object-path one.
The equivalence suite in ``tests/datasets/test_columnar_equivalence.py``
holds this line.

Layout notes (change any of these and the bit-identity contract breaks):

- Congestion is cached as one float64 series per congested segment key
  over the *full* grid, then summed per realization in path-occurrence
  order.  Elementwise sums commute with slicing, so a ``[low:high]``
  slice of the cached sum is bitwise what ``CongestionSchedule.path_series``
  returns for the epoch window.
- The miss-hop weight vector is normalized once per kernel with the same
  expression the object path uses per epoch.
- Gamma / Bernoulli / exponential / choice draws keep the object path's
  conditional structure (a draw that the object path skips -- e.g. the
  loop-position draw on a short path -- must stay skipped here).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.datasets.timeline import PingTimeline, TraceTimeline
from repro.measurement.fastseed import RecycledGenerator, pcg64_states
from repro.measurement.loss import LossModel
from repro.measurement.ping import DEFAULT_LOSS_PROBABILITY
from repro.measurement.platform import MeasurementPlatform
from repro.measurement.realization import UNKNOWN_ASN, PathRealization, SegmentKey
from repro.measurement.scheduler import CampaignGrid
from repro.measurement.traceroute import TraceOutcome, TracerouteFlavor, _loop_variant
from repro.net.asn import ASN
from repro.net.ip import IPVersion
from repro.obs import metrics as obs_metrics
from repro.topology.cdn import Server

__all__ = ["RealizationKernel", "CampaignKernels"]

_INCOMPLETE = int(TraceOutcome.INCOMPLETE)
_LOOP = int(TraceOutcome.LOOP)
_MISSING_IP = int(TraceOutcome.MISSING_IP)


class RealizationKernel:
    """Everything epoch-independent about sampling one realization.

    One kernel serves every epoch (of every campaign on the same grid)
    that routes over the same realization; building it costs one pass of
    the delay/artifact precomputation the object path repeats per epoch.
    """

    __slots__ = (
        "realization",
        "base_rtt",
        "noise_shape",
        "noise_scale",
        "spike_probability",
        "spike_mean_ms",
        "incomplete_probability",
        "loop_classic",
        "loop_paris",
        "respond",
        "p_all_respond",
        "miss_weights",
        "miss_cdf",
        "congestion_total",
        "observed_complete",
        "clean_outcome",
        "_miss_paths",
    )

    def __init__(
        self,
        realization: PathRealization,
        platform: MeasurementPlatform,
        congestion_total: Optional[np.ndarray],
    ) -> None:
        engine = platform.engine
        delay = platform.delay_model
        params = delay.params
        artifacts = engine.artifacts

        self.realization = realization
        self.base_rtt = delay.base_rtt(realization)
        self.noise_shape = params.noise_shape
        scale = params.noise_scale_ms
        if realization.version is IPVersion.V6:
            scale *= params.ipv6_noise_factor
        self.noise_scale = scale
        self.spike_probability = params.spike_probability
        self.spike_mean_ms = params.spike_mean_ms
        self.incomplete_probability = artifacts.incomplete_probability
        self.loop_classic = engine._loop_probability(realization, TracerouteFlavor.CLASSIC)
        self.loop_paris = engine._loop_probability(realization, TracerouteFlavor.PARIS)
        self.respond = np.array([hop.respond_probability for hop in realization.hops])
        self.p_all_respond = float(np.prod(self.respond))
        # Normalized exactly as the object path does per epoch; ``None``
        # encodes the degenerate all-respond case where the object path
        # clears the miss mask without drawing.
        miss_weights = 1.0 - self.respond
        if miss_weights.sum() <= 0:
            self.miss_weights: Optional[np.ndarray] = None
            self.miss_cdf: Optional[np.ndarray] = None
        else:
            self.miss_weights = miss_weights / miss_weights.sum()
            # ``Generator.choice(n, size, p)`` draws by building this CDF
            # and right-searchsorting uniforms into it; precomputing the
            # CDF and replaying that recipe per epoch consumes the same
            # random words and yields the same hops at a fraction of
            # choice()'s per-call overhead.
            cdf = self.miss_weights.cumsum()
            cdf /= cdf[-1]
            self.miss_cdf = cdf
        self.congestion_total = congestion_total
        self.observed_complete = realization.observed_path_complete
        self.clean_outcome = int(
            TraceOutcome.MISSING_AS
            if UNKNOWN_ASN in realization.observed_path_complete
            else TraceOutcome.COMPLETE
        )
        self._miss_paths: Dict[int, Tuple[ASN, ...]] = {}

    def miss_path(self, hop_index: int) -> Tuple[ASN, ...]:
        """The observed AS path when ``hop_index`` does not answer."""
        path = self._miss_paths.get(hop_index)
        if path is None:
            path = self.realization.observed_path_with_miss(hop_index)
            self._miss_paths[hop_index] = path
        return path


class CampaignKernels:
    """Per-grid kernel and congestion caches for one platform.

    Owns the shared full-grid ``times`` array (one allocation instead of
    one per timeline), a lazily-filled per-segment congestion series
    cache, and the realization kernels keyed like the platform's own
    realization cache -- including the matching :meth:`drop_pair`
    eviction for bounded-memory streaming.
    """

    def __init__(self, platform: MeasurementPlatform, grid: CampaignGrid) -> None:
        self.platform = platform
        self.grid = grid
        self.times = grid.times()
        self._congestion_series: Dict[SegmentKey, np.ndarray] = {}
        self._kernels: Dict[Tuple[int, int, int, int], Optional[RealizationKernel]] = {}
        self._paris_cuts: Dict[float, int] = {}
        self._stream_plans: Dict[
            Tuple[str, int, int, int], List[Tuple[int, int]]
        ] = {}
        # One recycled generator serves every planned stream: the
        # builders fully consume one epoch's stream before requesting
        # the next, and forked workers each hold their own copy.
        self._recycled = RecycledGenerator()
        self._samples_counter = obs_metrics.counter("traceroute.samples")
        self._ping_counter = obs_metrics.counter("rtt.samples")

    def plan_streams(
        self, label: str, tasks: Iterable[Tuple[Server, Server, IPVersion]]
    ) -> None:
        """Precompute every (pair, epoch) stream's PCG64 start state.

        Seeding through ``SeedSequence`` costs ~15us per stream, almost
        all of it per-instance Python overhead; batching the entropy-pool
        mixing over a whole build's ~20k streams (see
        :mod:`repro.measurement.fastseed`) brings it to ~2us.  Builders
        call this once with the full task list before fanning out --
        workers inherit the read-only plan through the fork.  Unplanned
        pairs (the bounded-memory stream sources skip planning) seed
        through :meth:`~repro.measurement.platform.MeasurementPlatform.rng_factory`
        unchanged, and a fastseed self-check failure downgrades the whole
        plan to that reference path: bit-identity never rides on trust.
        """
        platform = self.platform
        keys: List[Tuple[str, int, int, int]] = []
        spans: List[Tuple[int, int]] = []
        digests: List[int] = []
        for src, dst, version in tasks:
            digester = platform.stream_digester(
                label, src.server_id, dst.server_id, int(version)
            )
            count = len(platform.epochs(src, dst, version))
            keys.append((label, src.server_id, dst.server_id, int(version)))
            spans.append((len(digests), count))
            digests.extend(digester(number) for number in range(count))
        states = pcg64_states(platform.config.seed, digests)
        for key, (start, count) in zip(keys, spans):
            self._stream_plans[key] = states[start:start + count]

    def _stream_rng(
        self, label: str, src: Server, dst: Server, version: IPVersion
    ) -> Callable[[int], np.random.Generator]:
        """Per-epoch generator factory: planned fast path or reference."""
        plan = self._stream_plans.get(
            (label, src.server_id, dst.server_id, int(version))
        )
        if plan is None:
            return self.platform.rng_factory(
                label, src.server_id, dst.server_id, int(version)
            )
        recycled = self._recycled

        def make(epoch_number: int) -> np.random.Generator:
            state, inc = plan[epoch_number]
            return recycled.set(state, inc)

        return make

    def _paris_cut(self, paris_start_hour: float) -> int:
        """First grid index at or past the Paris cutover."""
        cut = self._paris_cuts.get(paris_start_hour)
        if cut is None:
            cut = int(self.times.searchsorted(paris_start_hour, side="left"))
            self._paris_cuts[paris_start_hour] = cut
        return cut

    def _congestion_for(self, key: SegmentKey) -> np.ndarray:
        series = self._congestion_series.get(key)
        if series is None:
            series = self.platform.congestion.series(key, self.times)
            self._congestion_series[key] = series
        return series

    def _congestion_total(self, realization: PathRealization) -> Optional[np.ndarray]:
        """Full-grid path congestion, summed in path-occurrence order."""
        congestion = self.platform.congestion
        if congestion is None:
            return None
        events = congestion.events
        congested = [key for key in realization.segment_keys if key in events]
        if not congested:
            return None
        total = np.zeros_like(self.times)
        for key in congested:
            total += self._congestion_for(key)
        return total

    def kernel(
        self, src: Server, dst: Server, version: IPVersion, candidate: int
    ) -> Optional[RealizationKernel]:
        """The kernel for one (pair, version, candidate), or ``None``."""
        cache_key = (src.server_id, dst.server_id, int(version), candidate)
        if cache_key in self._kernels:
            return self._kernels[cache_key]
        realization = self.platform.realization(src, dst, version, candidate)
        kernel: Optional[RealizationKernel] = None
        if realization is not None:
            kernel = RealizationKernel(
                realization, self.platform, self._congestion_total(realization)
            )
        self._kernels[cache_key] = kernel
        return kernel

    def drop_pair(self, src_id: int, dst_id: int) -> None:
        """Evict a pair's kernels (mirrors ``platform.drop_realizations``)."""
        stale = [key for key in self._kernels if key[0] == src_id and key[1] == dst_id]
        for key in stale:
            del self._kernels[key]

    # ------------------------------------------------------------------
    # Column samplers
    # ------------------------------------------------------------------

    def _rtt_base(
        self, kernel: RealizationKernel, low: int, high: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Baseline + queueing noise + congestion.

        The object path computes ``(base + noise) + congestion``; this
        computes ``(noise + base) + congestion`` -- bitwise equal because
        IEEE addition is commutative (the association is unchanged) --
        which saves allocating a baseline array per epoch.
        """
        count = high - low
        series = rng.gamma(kernel.noise_shape, kernel.noise_scale, size=count)
        spikes = rng.random(count) < kernel.spike_probability
        n_spikes = int(np.count_nonzero(spikes))
        if n_spikes:
            series[spikes] += rng.exponential(kernel.spike_mean_ms, size=n_spikes)
        series += kernel.base_rtt
        if kernel.congestion_total is not None:
            series += kernel.congestion_total[low:high]
        return series

    def sample_trace_epoch(
        self,
        kernel: RealizationKernel,
        low: int,
        high: int,
        rng: np.random.Generator,
        paris_start_hour: Optional[float],
        rtt: np.ndarray,
        outcome: np.ndarray,
        path_id: np.ndarray,
        intern: Callable[[Tuple[int, ...]], int],
        miss_lut: np.ndarray,
    ) -> None:
        """Sample one routing epoch's traceroutes into the columns.

        ``intern`` maps a path tuple into the timeline's global path
        table; it is called in exactly the order the object path's
        per-epoch table would be remapped, so the table is identical.
        ``miss_lut`` carries the hop-to-global-path-id mapping this
        timeline has interned so far for this kernel (-1 for unseen).
        """
        count = high - low
        series = self._rtt_base(kernel, low, high, rng)
        complete_id = intern(kernel.observed_complete)
        # The outcome/path columns are written fully for this window, so
        # slice views stand in for the object path's temporaries.
        out = outcome[low:high]
        out[:] = kernel.clean_outcome
        gid = path_id[low:high]
        gid[:] = complete_id

        # One draw covers the incomplete and loop uniforms: consecutive
        # ``random(count)`` calls consume the same random words as one
        # ``random(2 * count)`` call split in half.
        u = rng.random(2 * count)
        incomplete = u[:count] < kernel.incomplete_probability
        series[incomplete] = np.nan
        out[incomplete] = _INCOMPLETE
        gid[incomplete] = -1

        # A routing epoch straddles the Paris cutover at most once, so
        # almost every epoch compares against one scalar probability --
        # element-for-element what the object path's np.where array does.
        if paris_start_hour is None or high <= self._paris_cut(paris_start_hour):
            loop_probability: object = kernel.loop_classic
        elif low >= self._paris_cut(paris_start_hour):
            loop_probability = kernel.loop_paris
        else:
            classic = self.times[low:high] < paris_start_hour
            loop_probability = np.where(classic, kernel.loop_classic, kernel.loop_paris)
        looped = (~incomplete) & (u[count:] < loop_probability)
        if np.count_nonzero(looped):
            loop_path = _loop_variant(kernel.observed_complete, rng)
            loop_id = intern(loop_path)
            out[looped] = _LOOP
            gid[looped] = loop_id

        normal = ~(incomplete | looped)
        misses = normal & (rng.random(count) >= kernel.p_all_respond)
        n_misses = int(np.count_nonzero(misses))
        if n_misses:
            if kernel.miss_cdf is None:
                misses[:] = False
            else:
                chosen_hops = kernel.miss_cdf.searchsorted(
                    rng.random(n_misses), side="right"
                )
                ids = miss_lut[chosen_hops]
                if np.count_nonzero(ids < 0):
                    # The object path interns each hop's miss variant at
                    # its first appearance; visiting the unique hops in
                    # first-appearance order preserves that sequence.
                    uniq, first_index = np.unique(chosen_hops, return_index=True)
                    for rank in np.argsort(first_index, kind="stable"):
                        hop_index = int(uniq[rank])
                        if miss_lut[hop_index] < 0:
                            miss_lut[hop_index] = intern(kernel.miss_path(hop_index))
                    ids = miss_lut[chosen_hops]
                out[misses] = _MISSING_IP
                gid[misses] = ids

        rtt[low:high] = series

    def sample_ping_epoch(
        self,
        kernel: RealizationKernel,
        low: int,
        high: int,
        rng: np.random.Generator,
        loss_model: LossModel,
        loss_probability: float,
        rtt: np.ndarray,
    ) -> None:
        """Sample one routing epoch's pings into the RTT column."""
        count = high - low
        series = self._rtt_base(kernel, low, high, rng)
        if loss_model is not None:
            if kernel.congestion_total is not None:
                lift = kernel.congestion_total[low:high]
            else:
                lift = np.zeros(count)
            series[loss_model.sample_losses(rng, lift)] = np.nan
        elif loss_probability > 0.0:
            lost = rng.random(count) < loss_probability
            series[lost] = np.nan
        rtt[low:high] = series

    # ------------------------------------------------------------------
    # Timeline builders
    # ------------------------------------------------------------------

    def build_trace_timeline(
        self, src: Server, dst: Server, version: IPVersion
    ) -> TraceTimeline:
        """One pair's long-term trace timeline, sampled into columns.

        Bit-identical to :func:`repro.datasets.longterm._build_timeline`:
        epochs visit in schedule order, each epoch draws from the same
        named RNG stream, and paths intern directly into the timeline's
        global table in the order the object path's per-epoch remap
        would insert them.
        """
        platform = self.platform
        times = self.times
        count = times.size
        rtt = np.full(count, np.nan, dtype=np.float32)
        outcome = np.full(count, int(TraceOutcome.INCOMPLETE), dtype=np.uint8)
        path_id = np.full(count, -1, dtype=np.int32)
        true_candidate = np.full(count, -1, dtype=np.int16)

        paths: List[Tuple[ASN, ...]] = []
        path_index: Dict[Tuple[ASN, ...], int] = {}

        def intern(path: Tuple[ASN, ...]) -> int:
            index = path_index.get(path)
            if index is None:
                index = len(paths)
                paths.append(path)
                path_index[path] = index
            return index

        paris_start = (
            platform.config.paris_start_hour if version is IPVersion.V4 else None
        )
        make_rng = self._stream_rng("longterm", src, dst, version)
        # Miss-variant intern state per candidate, for this timeline only
        # (path ids are timeline-local, so the LUTs must not outlive it).
        miss_luts: Dict[int, np.ndarray] = {}
        sampled = 0
        for epoch_number, epoch in enumerate(platform.epochs(src, dst, version)):
            low = int(times.searchsorted(epoch.start_hour, side="left"))
            high = int(times.searchsorted(epoch.end_hour, side="left"))
            if high <= low or epoch.candidate_index < 0:
                continue
            kernel = self.kernel(src, dst, version, epoch.candidate_index)
            if kernel is None:
                continue
            miss_lut = miss_luts.get(epoch.candidate_index)
            if miss_lut is None:
                miss_lut = np.full(kernel.respond.size, -1, dtype=np.int32)
                miss_luts[epoch.candidate_index] = miss_lut
            self.sample_trace_epoch(
                kernel,
                low,
                high,
                make_rng(epoch_number),
                paris_start,
                rtt,
                outcome,
                path_id,
                intern,
                miss_lut,
            )
            true_candidate[low:high] = epoch.candidate_index
            sampled += high - low
        if sampled:
            self._samples_counter.inc(sampled)

        return TraceTimeline(
            src_server_id=src.server_id,
            dst_server_id=dst.server_id,
            version=version,
            times_hours=times,
            rtt_ms=rtt,
            outcome=outcome,
            path_id=path_id,
            paths=paths,
            true_candidate=true_candidate,
        )

    def build_ping_timeline(
        self, src: Server, dst: Server, version: IPVersion, coupled_loss: bool
    ) -> PingTimeline:
        """One pair's ping timeline, bit-identical to the object path."""
        platform = self.platform
        times = self.times
        rtt = np.full(times.size, np.nan, dtype=np.float32)
        loss_model = LossModel() if coupled_loss else None
        make_rng = self._stream_rng("ping", src, dst, version)
        sampled = 0
        for epoch_number, epoch in enumerate(platform.epochs(src, dst, version)):
            low = int(times.searchsorted(epoch.start_hour, side="left"))
            high = int(times.searchsorted(epoch.end_hour, side="left"))
            if high <= low or epoch.candidate_index < 0:
                continue
            kernel = self.kernel(src, dst, version, epoch.candidate_index)
            if kernel is None:
                continue
            self.sample_ping_epoch(
                kernel,
                low,
                high,
                make_rng(epoch_number),
                loss_model,
                DEFAULT_LOSS_PROBABILITY,
                rtt,
            )
            sampled += high - low
        if sampled:
            self._ping_counter.inc(sampled)
        return PingTimeline(
            src_server_id=src.server_id,
            dst_server_id=dst.server_id,
            version=version,
            times_hours=times,
            rtt_ms=rtt,
        )
