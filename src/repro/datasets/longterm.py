"""The long-term dataset: full-mesh traceroutes every 3 hours (Section 2.1).

The builder walks each ordered pair's routing epochs, samples a vectorized
traceroute series per epoch from the platform's engine, and stitches the
epochs into one :class:`~repro.datasets.timeline.TraceTimeline` per pair
and protocol.  IPv4 switches from classic to Paris traceroute at the
platform's configured adoption time; IPv6 stays classic, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.datasets.columnar import CampaignKernels
from repro.datasets.mutation import VersionedDict, dict_version
from repro.datasets.parallel import fork_map
from repro.datasets.timeline import TraceTimeline
from repro.obs import metrics as obs_metrics
from repro.measurement.platform import MeasurementPlatform
from repro.measurement.scheduler import LONG_TERM_PERIOD_HOURS, CampaignGrid
from repro.measurement.traceroute import TraceOutcome
from repro.net.asn import ASN
from repro.net.ip import IPVersion
from repro.topology.cdn import Server

__all__ = ["LongTermConfig", "LongTermDataset", "build_longterm_dataset"]


@dataclass
class LongTermConfig:
    """Shape of the long-term campaign."""

    days: float = 485.0
    period_hours: float = LONG_TERM_PERIOD_HOURS
    dual_stack_only: bool = True
    versions: Tuple[IPVersion, ...] = (IPVersion.V4, IPVersion.V6)

    def grid(self) -> CampaignGrid:
        """The campaign's measurement grid."""
        return CampaignGrid.over_days(self.days, self.period_hours)


@dataclass
class LongTermDataset:
    """All long-term trace timelines, keyed by (src, dst, version)."""

    grid: CampaignGrid
    timelines: Dict[Tuple[int, int, IPVersion], TraceTimeline] = field(
        default_factory=VersionedDict
    )
    servers: Dict[int, Server] = field(default_factory=dict)
    _ordered_key_cache: Optional[Tuple[int, List[Tuple[int, int, IPVersion]]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.timelines, VersionedDict):
            self.timelines = VersionedDict(self.timelines)

    def _ordered_keys(self) -> List[Tuple[int, int, IPVersion]]:
        """Timeline keys in pair order, cached until the dict mutates.

        ``by_version`` and ``pairs`` are called per experiment (16 of
        them); re-sorting the full key set every time is quadratic noise
        at scale.  The cache keys on the dict's mutation counter (not its
        length, which misses same-size key replacement) so any insert,
        replacement, or delete invalidates it.
        """
        version = dict_version(self.timelines)
        if self._ordered_key_cache is None or self._ordered_key_cache[0] != version:
            ordered = sorted(self.timelines, key=lambda k: (k[0], k[1], int(k[2])))
            self._ordered_key_cache = (version, ordered)
        return self._ordered_key_cache[1]

    def timeline(self, src_id: int, dst_id: int, version: IPVersion) -> TraceTimeline:
        """The timeline for one directed pair and protocol."""
        return self.timelines[(src_id, dst_id, version)]

    def pairs(self) -> List[Tuple[int, int]]:
        """Distinct directed server-id pairs present in the dataset."""
        pairs: List[Tuple[int, int]] = []
        for src, dst, _ in self._ordered_keys():
            if not pairs or pairs[-1] != (src, dst):
                pairs.append((src, dst))
        return pairs

    def by_version(self, version: IPVersion) -> List[TraceTimeline]:
        """All timelines of one protocol, in pair order."""
        return [
            self.timelines[key] for key in self._ordered_keys() if key[2] is version
        ]

    def forward_reverse(
        self, src_id: int, dst_id: int, version: IPVersion
    ) -> Tuple[TraceTimeline, TraceTimeline]:
        """Forward and reverse timelines of an (unordered) pair."""
        return (
            self.timelines[(src_id, dst_id, version)],
            self.timelines[(dst_id, src_id, version)],
        )


def _build_timeline(
    platform: MeasurementPlatform,
    src: Server,
    dst: Server,
    version: IPVersion,
    grid: CampaignGrid,
) -> TraceTimeline:
    """Sample one pair's traceroute series across its routing epochs."""
    times = grid.times()
    count = times.size
    rtt = np.full(count, np.nan, dtype=np.float32)
    outcome = np.full(count, int(TraceOutcome.INCOMPLETE), dtype=np.uint8)
    path_id = np.full(count, -1, dtype=np.int32)
    true_candidate = np.full(count, -1, dtype=np.int16)

    paths: List[Tuple[ASN, ...]] = []
    path_index: Dict[Tuple[ASN, ...], int] = {}

    def intern(path: Tuple[ASN, ...]) -> int:
        index = path_index.get(path)
        if index is None:
            index = len(paths)
            paths.append(path)
            path_index[path] = index
        return index

    paris_start = platform.config.paris_start_hour if version is IPVersion.V4 else None

    for epoch_number, epoch in enumerate(platform.epochs(src, dst, version)):
        low = int(np.searchsorted(times, epoch.start_hour, side="left"))
        high = int(np.searchsorted(times, epoch.end_hour, side="left"))
        if high <= low:
            continue
        if epoch.candidate_index < 0:
            continue  # unreachable: stays INCOMPLETE/NaN
        realization = platform.realization(src, dst, version, epoch.candidate_index)
        if realization is None:
            continue
        rng = platform.rng("longterm", src.server_id, dst.server_id, int(version), epoch_number)
        series = platform.engine.sample_series(
            realization, times[low:high], rng, paris_start_hour=paris_start
        )
        # Counted here (inside workers under fork_map) and merged back to
        # the parent registry as a snapshot delta.
        obs_metrics.counter("traceroute.samples").inc(high - low)
        rtt[low:high] = series.rtt_ms
        outcome[low:high] = series.outcome
        true_candidate[low:high] = epoch.candidate_index
        remap = np.array([intern(variant) for variant in series.variants], dtype=np.int32)
        ids = series.variant_id
        mapped = np.where(ids >= 0, remap[np.maximum(ids, 0)], -1)
        path_id[low:high] = mapped

    return TraceTimeline(
        src_server_id=src.server_id,
        dst_server_id=dst.server_id,
        version=version,
        times_hours=times,
        rtt_ms=rtt,
        outcome=outcome,
        path_id=path_id,
        paths=paths,
        true_candidate=true_candidate,
    )


def build_longterm_dataset(
    platform: MeasurementPlatform,
    config: Optional[LongTermConfig] = None,
    pairs: Optional[Iterable[Tuple[Server, Server]]] = None,
    jobs: int = 1,
    columnar: bool = True,
) -> LongTermDataset:
    """Build the long-term full-mesh dataset.

    Args:
        platform: The assembled measurement platform; its configured
            duration must cover the campaign window.
        config: Campaign shape (defaults to the paper's 485 days at 3 h).
        pairs: Ordered server pairs to measure; defaults to the full mesh of
            dual-stack measurement servers in distinct ASes.
        jobs: Worker processes for the per-pair timeline loop (``<= 1``
            serial; ``0``/``None`` all cores).  Every timeline draws from
            its own named RNG stream and interns paths locally, so the
            parallel dataset is bit-identical to the serial one.
        columnar: Sample through the per-realization kernels of
            :mod:`repro.datasets.columnar` (the fast path) instead of the
            per-epoch object path.  Both produce bit-identical datasets;
            the object path is kept as the reference implementation.

    Raises:
        ValueError: If the campaign extends past the platform's window.
    """
    config = config or LongTermConfig()
    grid = config.grid()
    if grid.end_hour > platform.config.duration_hours + 1e-9:
        raise ValueError(
            f"campaign covers {grid.end_hour:.0f}h but the platform simulates "
            f"only {platform.config.duration_hours:.0f}h"
        )
    if pairs is None:
        pairs = platform.server_pairs(dual_stack_only=config.dual_stack_only)
    pairs = list(pairs)

    dataset = LongTermDataset(grid=grid)
    tasks: List[Tuple[Server, Server, IPVersion]] = []
    for src, dst in pairs:
        dataset.servers[src.server_id] = src
        dataset.servers[dst.server_id] = dst
        for version in config.versions:
            if src.address(version) is None or dst.address(version) is None:
                continue
            tasks.append((src, dst, version))

    obs_metrics.counter("dataset.longterm.pairs").inc(len(pairs))
    obs_metrics.counter("dataset.longterm.timelines").inc(len(tasks))

    if columnar:
        kernels = CampaignKernels(platform, grid)
        kernels.plan_streams("longterm", tasks)

        def run_task(task: Tuple[Server, Server, IPVersion]) -> TraceTimeline:
            src, dst, version = task
            return kernels.build_trace_timeline(src, dst, version)

    else:

        def run_task(task: Tuple[Server, Server, IPVersion]) -> TraceTimeline:
            src, dst, version = task
            return _build_timeline(platform, src, dst, version, grid)

    for (src, dst, version), timeline in zip(
        tasks, fork_map(run_task, tasks, jobs, label="longterm")
    ):
        dataset.timelines[(src.server_id, dst.server_id, version)] = timeline
    return dataset
