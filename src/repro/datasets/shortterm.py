"""Short-term datasets: 15-minute pings and 30-minute traceroutes (§2.2).

Two builders:

- :func:`build_shortterm_ping_dataset` -- one week of pings every 15
  minutes between server pairs; the input to the congestion-prevalence
  analysis (Section 5.1).
- :func:`build_shortterm_trace_dataset` -- two-to-three weeks of
  traceroutes every 30 minutes between selected pairs, with *per-hop* RTT
  series; the input to congestion localization (Section 5.2).  Following
  the paper, each entry records whether the pair's path stayed static over
  the window (localization only trusts static paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.datasets.columnar import CampaignKernels
from repro.datasets.mutation import VersionedDict, dict_version
from repro.datasets.parallel import fork_map
from repro.datasets.timeline import PingTimeline
from repro.obs import metrics as obs_metrics
from repro.measurement.loss import LossModel
from repro.measurement.ping import ping_series
from repro.measurement.platform import MeasurementPlatform
from repro.measurement.realization import PathRealization, SegmentKey
from repro.measurement.scheduler import PING_PERIOD_HOURS, SHORT_TRACE_PERIOD_HOURS, CampaignGrid
from repro.net.asn import ASN
from repro.net.ip import IPAddress, IPVersion
from repro.topology.cdn import Server

__all__ = [
    "ShortTermConfig",
    "ShortTermPingDataset",
    "SegmentSeries",
    "ShortTermTraceDataset",
    "build_shortterm_ping_dataset",
    "build_shortterm_trace_dataset",
]


@dataclass
class ShortTermConfig:
    """Shape of the short-term campaigns."""

    ping_days: float = 7.0
    ping_period_hours: float = PING_PERIOD_HOURS
    trace_days: float = 22.0
    trace_period_hours: float = SHORT_TRACE_PERIOD_HOURS
    start_hour: float = 0.0
    versions: Tuple[IPVersion, ...] = (IPVersion.V4, IPVersion.V6)
    congestion_coupled_loss: bool = True
    """Sample ping loss from the congestion-coupled loss model instead of
    a flat rate, enabling the packet-loss analysis extension."""

    def ping_grid(self) -> CampaignGrid:
        """Measurement grid of the ping campaign."""
        grid = CampaignGrid.over_days(self.ping_days, self.ping_period_hours)
        return CampaignGrid(self.start_hour, grid.period_hours, grid.rounds)

    def trace_grid(self) -> CampaignGrid:
        """Measurement grid of the traceroute campaign."""
        grid = CampaignGrid.over_days(self.trace_days, self.trace_period_hours)
        return CampaignGrid(self.start_hour, grid.period_hours, grid.rounds)


def _ordered_keys(
    entries: Dict[Tuple[int, int, IPVersion], object],
    cache: Optional[Tuple[int, List[Tuple[int, int, IPVersion]]]],
) -> Tuple[Tuple[int, int, IPVersion], ...]:
    """Sorted key order, recomputed whenever the dict has mutated.

    Keys on the dict's mutation counter (see
    :class:`repro.datasets.mutation.VersionedDict`), not its length: a
    same-size key replacement must invalidate the cached order too.
    """
    version = dict_version(entries)
    if cache is None or cache[0] != version:
        cache = (version, sorted(entries, key=lambda k: (k[0], k[1], int(k[2]))))
    return cache


@dataclass
class ShortTermPingDataset:
    """Ping timelines keyed by (src, dst, version)."""

    grid: CampaignGrid
    timelines: Dict[Tuple[int, int, IPVersion], PingTimeline] = field(
        default_factory=VersionedDict
    )
    _key_cache: Optional[Tuple[int, List[Tuple[int, int, IPVersion]]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.timelines, VersionedDict):
            self.timelines = VersionedDict(self.timelines)

    def by_version(self, version: IPVersion) -> List[PingTimeline]:
        """All timelines of one protocol, in pair order."""
        self._key_cache = _ordered_keys(self.timelines, self._key_cache)
        return [
            self.timelines[key] for key in self._key_cache[1] if key[2] is version
        ]


@dataclass
class SegmentSeries:
    """Per-hop RTT series of one pair over the traceroute campaign.

    Attributes:
        times_hours: Measurement grid.
        hop_rtt_ms: Shape ``(n_hops, n_times)``; NaN where the hop did not
            answer (or the sample fell outside the dominant routing epoch).
        hop_addresses / hop_mapped_asn / hop_owner_truth: Per-hop metadata;
            ``hop_owner_truth`` is simulator ground truth used only for
            validation, never by the analysis.
        segment_keys: Infrastructure key per hop (ground truth, validation
            only).
        rtt_ms: End-to-end RTT series (NaN outside the dominant epoch).
        static_path: Whether one routing epoch covered the whole window.
        observed_as_path: The fully-responsive observed AS path.
    """

    src_server_id: int
    dst_server_id: int
    version: IPVersion
    times_hours: np.ndarray
    hop_rtt_ms: np.ndarray
    hop_addresses: Tuple[IPAddress, ...]
    hop_mapped_asn: Tuple[Optional[ASN], ...]
    hop_owner_truth: Tuple[ASN, ...]
    segment_keys: Tuple[SegmentKey, ...]
    rtt_ms: np.ndarray
    static_path: bool
    observed_as_path: Tuple[ASN, ...]

    @property
    def pair(self) -> Tuple[int, int]:
        """The (src, dst) server-id pair."""
        return (self.src_server_id, self.dst_server_id)

    @property
    def n_hops(self) -> int:
        """Number of hops (rows of the matrix)."""
        return int(self.hop_rtt_ms.shape[0])


@dataclass
class ShortTermTraceDataset:
    """Segment series keyed by (src, dst, version)."""

    grid: CampaignGrid
    entries: Dict[Tuple[int, int, IPVersion], SegmentSeries] = field(
        default_factory=VersionedDict
    )
    _key_cache: Optional[Tuple[int, List[Tuple[int, int, IPVersion]]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.entries, VersionedDict):
            self.entries = VersionedDict(self.entries)

    def by_version(self, version: IPVersion) -> List[SegmentSeries]:
        """All entries of one protocol, in pair order."""
        self._key_cache = _ordered_keys(self.entries, self._key_cache)
        return [self.entries[key] for key in self._key_cache[1] if key[2] is version]


def _check_window(platform: MeasurementPlatform, grid: CampaignGrid) -> None:
    if grid.end_hour > platform.config.duration_hours + 1e-9:
        raise ValueError(
            f"campaign covers {grid.end_hour:.0f}h but the platform simulates "
            f"only {platform.config.duration_hours:.0f}h"
        )


def _dominant_epoch(
    platform: MeasurementPlatform,
    src: Server,
    dst: Server,
    version: IPVersion,
    grid: CampaignGrid,
) -> Tuple[Optional[int], bool]:
    """Candidate index covering most of the window, and staticness."""
    best_candidate: Optional[int] = None
    best_cover = 0.0
    epoch_count = 0
    for epoch in platform.epochs(src, dst, version):
        overlap = min(epoch.end_hour, grid.end_hour) - max(epoch.start_hour, grid.start_hour)
        if overlap <= 0:
            continue
        epoch_count += 1
        if epoch.candidate_index >= 0 and overlap > best_cover:
            best_cover = overlap
            best_candidate = epoch.candidate_index
    static = epoch_count == 1 and best_cover >= grid.duration_hours - 1e-9
    return best_candidate, static


def _build_ping_timeline(
    platform: MeasurementPlatform,
    src: Server,
    dst: Server,
    version: IPVersion,
    times: np.ndarray,
    config: ShortTermConfig,
) -> PingTimeline:
    """Sample one pair's ping series across its routing epochs."""
    rtt = np.full(times.size, np.nan, dtype=np.float32)
    for epoch_number, epoch in enumerate(platform.epochs(src, dst, version)):
        low = int(np.searchsorted(times, epoch.start_hour, side="left"))
        high = int(np.searchsorted(times, epoch.end_hour, side="left"))
        if high <= low or epoch.candidate_index < 0:
            continue
        realization = platform.realization(src, dst, version, epoch.candidate_index)
        if realization is None:
            continue
        rng = platform.rng(
            "ping", src.server_id, dst.server_id, int(version), epoch_number
        )
        rtt[low:high] = ping_series(
            realization,
            times[low:high],
            rng,
            delay_model=platform.delay_model,
            congestion=platform.congestion,
            loss_model=LossModel() if config.congestion_coupled_loss else None,
        )
        # Counted in the worker; fork_map merges the delta to the parent.
        obs_metrics.counter("rtt.samples").inc(high - low)
    return PingTimeline(
        src_server_id=src.server_id,
        dst_server_id=dst.server_id,
        version=version,
        times_hours=times,
        rtt_ms=rtt,
    )


def build_shortterm_ping_dataset(
    platform: MeasurementPlatform,
    config: Optional[ShortTermConfig] = None,
    pairs: Optional[Iterable[Tuple[Server, Server]]] = None,
    jobs: int = 1,
    columnar: bool = True,
) -> ShortTermPingDataset:
    """Build the one-week 15-minute ping dataset.

    Pairs default to the full mesh of measurement servers.  A pair's series
    uses the realization of each routing epoch in effect, so level shifts
    from routing changes appear in pings exactly as they would in reality.
    Every series draws from its own named RNG stream, so sharding the
    pair list across ``jobs`` workers is bit-identical to serial.
    ``columnar`` selects the kernel-based fast path of
    :mod:`repro.datasets.columnar` (bit-identical to the object path,
    which stays as the reference implementation).
    """
    config = config or ShortTermConfig()
    grid = config.ping_grid()
    _check_window(platform, grid)
    if pairs is None:
        pairs = platform.server_pairs(dual_stack_only=False)

    dataset = ShortTermPingDataset(grid=grid)
    times = grid.times()
    tasks = [
        (src, dst, version)
        for src, dst in pairs
        for version in config.versions
        if src.address(version) is not None and dst.address(version) is not None
    ]

    obs_metrics.counter("dataset.ping.timelines").inc(len(tasks))

    if columnar:
        kernels = CampaignKernels(platform, grid)
        kernels.plan_streams("ping", tasks)

        def run_task(task: Tuple[Server, Server, IPVersion]) -> PingTimeline:
            src, dst, version = task
            return kernels.build_ping_timeline(
                src, dst, version, config.congestion_coupled_loss
            )

    else:

        def run_task(task: Tuple[Server, Server, IPVersion]) -> PingTimeline:
            src, dst, version = task
            return _build_ping_timeline(platform, src, dst, version, times, config)

    for (src, dst, version), timeline in zip(
        tasks, fork_map(run_task, tasks, jobs, label="ping")
    ):
        dataset.timelines[(src.server_id, dst.server_id, version)] = timeline
    return dataset


def _segment_series(
    platform: MeasurementPlatform,
    realization: PathRealization,
    times: np.ndarray,
    fill_low: int,
    fill_high: int,
    static: bool,
    rng: np.random.Generator,
) -> SegmentSeries:
    n_hops = len(realization.hops)
    hop_rtt = np.full((n_hops, times.size), np.nan, dtype=np.float32)
    e2e = np.full(times.size, np.nan, dtype=np.float32)

    window = times[fill_low:fill_high]
    if window.size:
        matrix = platform.delay_model.hop_rtt_matrix(
            realization, window, rng, platform.congestion
        )
        respond = np.array([hop.respond_probability for hop in realization.hops])
        answered = rng.random((n_hops, window.size)) < respond[:, None]
        answered[-1, :] = True  # the destination server always answers
        matrix = np.where(answered, matrix, np.nan)
        hop_rtt[:, fill_low:fill_high] = matrix
        e2e[fill_low:fill_high] = matrix[-1]
        obs_metrics.counter("rtt.samples").inc(n_hops * int(window.size))

    return SegmentSeries(
        src_server_id=realization.src_server_id,
        dst_server_id=realization.dst_server_id,
        version=realization.version,
        times_hours=times,
        hop_rtt_ms=hop_rtt,
        hop_addresses=tuple(hop.address for hop in realization.hops),
        hop_mapped_asn=tuple(hop.mapped_asn for hop in realization.hops),
        hop_owner_truth=tuple(hop.owner for hop in realization.hops),
        segment_keys=realization.segment_keys,
        rtt_ms=e2e,
        static_path=static,
        observed_as_path=realization.observed_path_complete,
    )


def _build_trace_entry(
    platform: MeasurementPlatform,
    src: Server,
    dst: Server,
    version: IPVersion,
    times: np.ndarray,
    grid: CampaignGrid,
) -> Optional[SegmentSeries]:
    """One pair's per-hop series, or ``None`` when no epoch carries it."""
    candidate, static = _dominant_epoch(platform, src, dst, version, grid)
    if candidate is None:
        return None
    realization = platform.realization(src, dst, version, candidate)
    if realization is None:
        return None
    if static:
        fill_low, fill_high = 0, times.size
    else:
        # Fill only the samples inside the dominant epoch.
        fill_low, fill_high = 0, 0
        for epoch in platform.epochs(src, dst, version):
            if epoch.candidate_index != candidate:
                continue
            low = int(np.searchsorted(times, epoch.start_hour, side="left"))
            high = int(np.searchsorted(times, epoch.end_hour, side="left"))
            if high - low > fill_high - fill_low:
                fill_low, fill_high = low, high
    rng = platform.rng("shorttrace", src.server_id, dst.server_id, int(version))
    return _segment_series(
        platform, realization, times, fill_low, fill_high, static, rng
    )


def build_shortterm_trace_dataset(
    platform: MeasurementPlatform,
    pairs: Iterable[Tuple[Server, Server]],
    config: Optional[ShortTermConfig] = None,
    jobs: int = 1,
) -> ShortTermTraceDataset:
    """Build the 30-minute traceroute dataset with per-hop series.

    Args:
        platform: The assembled platform.
        pairs: Ordered server pairs to probe (in the paper these are the
            pairs flagged as congested by the ping analysis).
        config: Campaign shape.
        jobs: Worker processes for the per-pair loop; bit-identical to
            serial at any count.
    """
    config = config or ShortTermConfig()
    grid = config.trace_grid()
    _check_window(platform, grid)
    dataset = ShortTermTraceDataset(grid=grid)
    times = grid.times()
    tasks = [
        (src, dst, version)
        for src, dst in pairs
        for version in config.versions
        if src.address(version) is not None and dst.address(version) is not None
    ]

    def run_task(task: Tuple[Server, Server, IPVersion]) -> Optional[SegmentSeries]:
        src, dst, version = task
        return _build_trace_entry(platform, src, dst, version, times, grid)

    for (src, dst, version), entry in zip(
        tasks, fork_map(run_task, tasks, jobs, label="shorttrace")
    ):
        if entry is not None:
            dataset.entries[(src.server_id, dst.server_id, version)] = entry
    obs_metrics.counter("dataset.shorttrace.entries").inc(len(dataset.entries))
    return dataset
