"""Dataset persistence: long-term timelines to/from NPZ + JSON.

A :class:`~repro.datasets.longterm.LongTermDataset` can take minutes to
regenerate at paper scale; saving one lets benchmark runs and notebooks
reload it instantly.  Arrays go into a single compressed ``.npz``; the
variable-size metadata (AS-path tables, grid, server index) goes into a
JSON sidecar embedded in the same archive.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.datasets.longterm import LongTermDataset
from repro.datasets.shortterm import ShortTermPingDataset
from repro.datasets.timeline import PingTimeline, TraceTimeline
from repro.measurement.scheduler import CampaignGrid
from repro.net.ip import IPVersion

__all__ = ["save_longterm", "load_longterm", "save_pings", "load_pings"]

_PathLike = Union[str, Path]


def _key_token(src: int, dst: int, version: IPVersion) -> str:
    return f"{src}_{dst}_{int(version)}"


def save_longterm(dataset: LongTermDataset, path: _PathLike) -> None:
    """Serialize a long-term dataset to one compressed NPZ file.

    Server objects are not persisted (they belong to the platform); the
    loader returns a dataset with an empty server index.
    """
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, object] = {
        "grid": {
            "start_hour": dataset.grid.start_hour,
            "period_hours": dataset.grid.period_hours,
            "rounds": dataset.grid.rounds,
        },
        "timelines": [],
    }
    for (src, dst, version), timeline in sorted(
        dataset.timelines.items(), key=lambda item: (item[0][0], item[0][1], int(item[0][2]))
    ):
        token = _key_token(src, dst, version)
        arrays[f"rtt_{token}"] = timeline.rtt_ms
        arrays[f"outcome_{token}"] = timeline.outcome
        arrays[f"pathid_{token}"] = timeline.path_id
        arrays[f"cand_{token}"] = timeline.true_candidate
        meta["timelines"].append(
            {
                "src": src,
                "dst": dst,
                "version": int(version),
                "paths": [list(path) for path in timeline.paths],
            }
        )
    meta_bytes = json.dumps(meta).encode("utf-8")
    arrays["_meta"] = np.frombuffer(meta_bytes, dtype=np.uint8)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_longterm(path: _PathLike) -> LongTermDataset:
    """Load a dataset written by :func:`save_longterm`."""
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["_meta"].tobytes()).decode("utf-8"))
        grid = CampaignGrid(
            start_hour=float(meta["grid"]["start_hour"]),
            period_hours=float(meta["grid"]["period_hours"]),
            rounds=int(meta["grid"]["rounds"]),
        )
        times = grid.times()
        dataset = LongTermDataset(grid=grid)
        for entry in meta["timelines"]:
            src, dst = int(entry["src"]), int(entry["dst"])
            version = IPVersion(int(entry["version"]))
            token = _key_token(src, dst, version)
            paths: List[Tuple[int, ...]] = [tuple(path) for path in entry["paths"]]
            dataset.timelines[(src, dst, version)] = TraceTimeline(
                src_server_id=src,
                dst_server_id=dst,
                version=version,
                times_hours=times,
                rtt_ms=archive[f"rtt_{token}"],
                outcome=archive[f"outcome_{token}"],
                path_id=archive[f"pathid_{token}"],
                paths=paths,
                true_candidate=archive[f"cand_{token}"],
            )
    return dataset


def save_pings(dataset: ShortTermPingDataset, path: _PathLike) -> None:
    """Serialize a short-term ping dataset to one compressed NPZ file."""
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, object] = {
        "grid": {
            "start_hour": dataset.grid.start_hour,
            "period_hours": dataset.grid.period_hours,
            "rounds": dataset.grid.rounds,
        },
        "timelines": [],
    }
    for (src, dst, version), timeline in sorted(
        dataset.timelines.items(), key=lambda item: (item[0][0], item[0][1], int(item[0][2]))
    ):
        token = _key_token(src, dst, version)
        arrays[f"ping_{token}"] = timeline.rtt_ms
        meta["timelines"].append({"src": src, "dst": dst, "version": int(version)})
    meta_bytes = json.dumps(meta).encode("utf-8")
    arrays["_meta"] = np.frombuffer(meta_bytes, dtype=np.uint8)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_pings(path: _PathLike) -> ShortTermPingDataset:
    """Load a dataset written by :func:`save_pings`."""
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["_meta"].tobytes()).decode("utf-8"))
        grid = CampaignGrid(
            start_hour=float(meta["grid"]["start_hour"]),
            period_hours=float(meta["grid"]["period_hours"]),
            rounds=int(meta["grid"]["rounds"]),
        )
        times = grid.times()
        dataset = ShortTermPingDataset(grid=grid)
        for entry in meta["timelines"]:
            src, dst = int(entry["src"]), int(entry["dst"])
            version = IPVersion(int(entry["version"]))
            token = _key_token(src, dst, version)
            dataset.timelines[(src, dst, version)] = PingTimeline(
                src_server_id=src,
                dst_server_id=dst,
                version=version,
                times_hours=times,
                rtt_ms=archive[f"ping_{token}"],
            )
    return dataset
