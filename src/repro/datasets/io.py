"""Dataset persistence: long-term timelines to/from NPZ + JSON.

A :class:`~repro.datasets.longterm.LongTermDataset` can take minutes to
regenerate at paper scale; saving one lets benchmark runs and notebooks
reload it instantly.  Arrays go into a single compressed ``.npz``; the
variable-size metadata (AS-path tables, grid, server index) goes into a
JSON sidecar embedded in the same archive.

Two streaming access paths feed :mod:`repro.stream` without ever holding
a whole campaign in memory:

- :func:`iter_longterm` yields the archive's timelines **one at a time**
  (NPZ members decompress lazily on access); :func:`load_longterm` is a
  thin wrapper that drains it into the batch dataset dict.
- :func:`save_records` / :func:`iter_records` persist flat measurement
  records (:class:`~repro.stream.records.TracerouteRecord` /
  :class:`~repro.stream.records.PingRecord`) as JSON Lines, one record
  per line in writer order -- campaign dumps conventionally use
  round-major order (every pair's round ``r`` before any pair's round
  ``r+1``), matching how a live collection pipeline would emit them.
  Both ends are generators: constant memory however large the file.
"""

from __future__ import annotations

import gzip
import json
import math
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.datasets.longterm import LongTermDataset
from repro.datasets.shortterm import ShortTermPingDataset
from repro.datasets.timeline import PingTimeline, TraceTimeline
from repro.measurement.scheduler import CampaignGrid
from repro.net.ip import IPVersion
from repro.stream.columns import PingColumns, TraceColumns
from repro.stream.records import PingRecord, TracerouteRecord

__all__ = [
    "save_longterm",
    "load_longterm",
    "iter_longterm",
    "save_pings",
    "load_pings",
    "save_records",
    "iter_records",
    "iter_record_columns",
    "RECORDS_SCHEMA_VERSION",
]

_PathLike = Union[str, Path]


def _key_token(src: int, dst: int, version: IPVersion) -> str:
    return f"{src}_{dst}_{int(version)}"


def save_longterm(dataset: LongTermDataset, path: _PathLike) -> None:
    """Serialize a long-term dataset to one compressed NPZ file.

    Server objects are not persisted (they belong to the platform); the
    loader returns a dataset with an empty server index.
    """
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, object] = {
        "grid": {
            "start_hour": dataset.grid.start_hour,
            "period_hours": dataset.grid.period_hours,
            "rounds": dataset.grid.rounds,
        },
        "timelines": [],
    }
    for (src, dst, version), timeline in sorted(
        dataset.timelines.items(), key=lambda item: (item[0][0], item[0][1], int(item[0][2]))
    ):
        token = _key_token(src, dst, version)
        arrays[f"rtt_{token}"] = timeline.rtt_ms
        arrays[f"outcome_{token}"] = timeline.outcome
        arrays[f"pathid_{token}"] = timeline.path_id
        arrays[f"cand_{token}"] = timeline.true_candidate
        meta["timelines"].append(
            {
                "src": src,
                "dst": dst,
                "version": int(version),
                "paths": [list(path) for path in timeline.paths],
            }
        )
    meta_bytes = json.dumps(meta).encode("utf-8")
    arrays["_meta"] = np.frombuffer(meta_bytes, dtype=np.uint8)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def _parse_grid(meta: Dict[str, object]) -> CampaignGrid:
    return CampaignGrid(
        start_hour=float(meta["grid"]["start_hour"]),
        period_hours=float(meta["grid"]["period_hours"]),
        rounds=int(meta["grid"]["rounds"]),
    )


def _archive_timelines(archive, meta, times: np.ndarray) -> Iterator[TraceTimeline]:
    for entry in meta["timelines"]:
        src, dst = int(entry["src"]), int(entry["dst"])
        version = IPVersion(int(entry["version"]))
        token = _key_token(src, dst, version)
        paths: List[Tuple[int, ...]] = [tuple(path) for path in entry["paths"]]
        yield TraceTimeline(
            src_server_id=src,
            dst_server_id=dst,
            version=version,
            times_hours=times,
            rtt_ms=archive[f"rtt_{token}"],
            outcome=archive[f"outcome_{token}"],
            path_id=archive[f"pathid_{token}"],
            paths=paths,
            true_candidate=archive[f"cand_{token}"],
        )


def iter_longterm(path: _PathLike) -> Iterator[TraceTimeline]:
    """Yield an archive's timelines one at a time, in saved (pair) order.

    Only the yielded timeline's arrays are decompressed and alive at any
    moment -- NPZ members load lazily on access -- so replaying a
    paper-scale archive through the streaming operators stays within the
    stream's memory bound.  The archive handle closes when the generator
    is exhausted (or closed).
    """
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["_meta"].tobytes()).decode("utf-8"))
        times = _parse_grid(meta).times()
        yield from _archive_timelines(archive, meta, times)


def load_longterm(path: _PathLike) -> LongTermDataset:
    """Load a dataset written by :func:`save_longterm`.

    Thin wrapper over the :func:`iter_longterm` reader: drains the same
    lazy timeline stream into the batch dataset's dict.
    """
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["_meta"].tobytes()).decode("utf-8"))
        grid = _parse_grid(meta)
        dataset = LongTermDataset(grid=grid)
        for timeline in _archive_timelines(archive, meta, grid.times()):
            key = (timeline.src_server_id, timeline.dst_server_id, timeline.version)
            dataset.timelines[key] = timeline
    return dataset


def save_pings(dataset: ShortTermPingDataset, path: _PathLike) -> None:
    """Serialize a short-term ping dataset to one compressed NPZ file."""
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, object] = {
        "grid": {
            "start_hour": dataset.grid.start_hour,
            "period_hours": dataset.grid.period_hours,
            "rounds": dataset.grid.rounds,
        },
        "timelines": [],
    }
    for (src, dst, version), timeline in sorted(
        dataset.timelines.items(), key=lambda item: (item[0][0], item[0][1], int(item[0][2]))
    ):
        token = _key_token(src, dst, version)
        arrays[f"ping_{token}"] = timeline.rtt_ms
        meta["timelines"].append({"src": src, "dst": dst, "version": int(version)})
    meta_bytes = json.dumps(meta).encode("utf-8")
    arrays["_meta"] = np.frombuffer(meta_bytes, dtype=np.uint8)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_pings(path: _PathLike) -> ShortTermPingDataset:
    """Load a dataset written by :func:`save_pings`."""
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["_meta"].tobytes()).decode("utf-8"))
        grid = CampaignGrid(
            start_hour=float(meta["grid"]["start_hour"]),
            period_hours=float(meta["grid"]["period_hours"]),
            rounds=int(meta["grid"]["rounds"]),
        )
        times = grid.times()
        dataset = ShortTermPingDataset(grid=grid)
        for entry in meta["timelines"]:
            src, dst = int(entry["src"]), int(entry["dst"])
            version = IPVersion(int(entry["version"]))
            token = _key_token(src, dst, version)
            dataset.timelines[(src, dst, version)] = PingTimeline(
                src_server_id=src,
                dst_server_id=dst,
                version=version,
                times_hours=times,
                rtt_ms=archive[f"ping_{token}"],
            )
    return dataset


# ----------------------------------------------------------------------
# Flat measurement records as JSON Lines (the stream's wire format)
# ----------------------------------------------------------------------

RECORDS_SCHEMA_VERSION = 1
"""Bump when the JSONL record line layout changes shape."""


def _open_text(path: _PathLike, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _finite_or_none(value: float):
    return float(value) if math.isfinite(value) else None


def _record_line(record) -> Dict[str, object]:
    if isinstance(record, TracerouteRecord):
        return {
            "t": "trace",
            "src": record.src,
            "dst": record.dst,
            "v": record.version,
            "r": record.round_index,
            "h": record.time_hours,
            "rtt": _finite_or_none(record.rtt_ms),
            "o": record.outcome,
            "p": list(record.as_path) if record.as_path is not None else None,
        }
    if isinstance(record, PingRecord):
        return {
            "t": "ping",
            "src": record.src,
            "dst": record.dst,
            "v": record.version,
            "r": record.round_index,
            "h": record.time_hours,
            "rtt": _finite_or_none(record.rtt_ms),
        }
    raise TypeError(f"cannot serialize record of type {type(record).__name__}")


def _trace_column_lines(columns: TraceColumns) -> Iterator[Dict[str, object]]:
    """One unit's trace columns as line dicts, byte-equal to the record
    encoding (same key order, same shortest-repr floats)."""
    src, dst, version = columns.key
    times = columns.times_hours.tolist()
    rtts = columns.rtt_ms.tolist()
    outcomes = columns.outcome.tolist()
    path_ids = columns.path_id.tolist()
    paths = [list(path) for path in columns.paths]
    for index in range(len(times)):
        rtt = rtts[index]
        pid = path_ids[index]
        yield {
            "t": "trace",
            "src": src,
            "dst": dst,
            "v": version,
            "r": index,
            "h": times[index],
            "rtt": rtt if math.isfinite(rtt) else None,
            "o": outcomes[index],
            "p": paths[pid] if pid >= 0 else None,
        }


def _ping_column_lines(columns: PingColumns) -> Iterator[Dict[str, object]]:
    """One unit's ping columns as line dicts (see _trace_column_lines)."""
    src, dst, version = columns.key
    times = columns.times_hours.tolist()
    rtts = columns.rtt_ms.tolist()
    for index in range(len(times)):
        rtt = rtts[index]
        yield {
            "t": "ping",
            "src": src,
            "dst": dst,
            "v": version,
            "r": index,
            "h": times[index],
            "rtt": rtt if math.isfinite(rtt) else None,
        }


def _item_lines(item: object) -> Iterator[Dict[str, object]]:
    """Line dicts of one save_records item (a record or a column block)."""
    if isinstance(item, TraceColumns):
        yield from _trace_column_lines(item)
    elif isinstance(item, PingColumns):
        yield from _ping_column_lines(item)
    else:
        yield _record_line(item)


def save_records(records: Iterable[object], path: _PathLike) -> None:
    """Write measurement records as JSON Lines, one record per line.

    Items are written in iteration order with constant memory; the
    conventional order for campaign dumps is round-major (every pair's
    round ``r`` before any pair's round ``r+1``), mirroring a live
    collection pipeline's emission order.  A header line carries the
    schema version.  Floats round-trip exactly (shortest-repr JSON);
    NaN RTTs (losses / unreached destinations) are stored as ``null``.
    A ``.gz`` suffix transparently gzip-compresses.

    An item may also be a whole :class:`~repro.stream.columns.TraceColumns`
    / :class:`~repro.stream.columns.PingColumns` block: its rounds are
    encoded straight off the columns (pair-major, round order within the
    pair), producing byte-for-byte the lines the equivalent record
    objects would -- the schema is unchanged, columns are just the fast
    encoder.
    """
    with _open_text(path, "w") as handle:
        header = {"format": "repro-records", "schema": RECORDS_SCHEMA_VERSION}
        handle.write(json.dumps(header, allow_nan=False) + "\n")
        for item in records:
            for line in _item_lines(item):
                handle.write(json.dumps(line, allow_nan=False) + "\n")


def iter_records(path: _PathLike) -> Iterator[object]:
    """Yield records written by :func:`save_records`, in file order.

    A generator end to end: one line is parsed at a time, so the
    streaming operators can consume arbitrarily large dumps in bounded
    memory.

    Raises:
        ValueError: Not a record file, or an unknown schema version.
    """
    with _open_text(path, "r") as handle:
        header = json.loads(next(handle, "null"))
        if not isinstance(header, dict) or header.get("format") != "repro-records":
            raise ValueError(f"{path}: not a repro-records JSONL file")
        if header.get("schema") != RECORDS_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: records schema {header.get('schema')!r} unsupported "
                f"(expected {RECORDS_SCHEMA_VERSION})"
            )
        for line in handle:
            if not line.strip():
                continue
            entry = json.loads(line)
            rtt = entry["rtt"]
            rtt = float("nan") if rtt is None else float(rtt)
            if entry["t"] == "trace":
                as_path = entry["p"]
                yield TracerouteRecord(
                    src=int(entry["src"]),
                    dst=int(entry["dst"]),
                    version=int(entry["v"]),
                    round_index=int(entry["r"]),
                    time_hours=float(entry["h"]),
                    rtt_ms=rtt,
                    outcome=int(entry["o"]),
                    as_path=tuple(int(asn) for asn in as_path)
                    if as_path is not None
                    else None,
                )
            elif entry["t"] == "ping":
                yield PingRecord(
                    src=int(entry["src"]),
                    dst=int(entry["dst"]),
                    version=int(entry["v"]),
                    round_index=int(entry["r"]),
                    time_hours=float(entry["h"]),
                    rtt_ms=rtt,
                )
            else:
                raise ValueError(f"{path}: unknown record type {entry['t']!r}")


def _flush_column_block(
    kind: str,
    key: Tuple[int, int, int],
    times: List[float],
    rtts: List[Optional[float]],
    outcomes: List[int],
    paths: List[Optional[List[int]]],
) -> Union[TraceColumns, PingColumns]:
    """Assemble one decoded run of lines into a column block."""
    rtt_column = np.array(
        [math.nan if value is None else value for value in rtts], dtype=np.float32
    )
    times_column = np.array(times, dtype=np.float64)
    if kind == "ping":
        return PingColumns(key=key, times_hours=times_column, rtt_ms=rtt_column)
    # Re-intern paths in first-appearance order, the same order the
    # builders produce, so decoded blocks compare equal to built ones.
    table: Dict[Tuple[int, ...], int] = {}
    path_ids = np.empty(len(paths), dtype=np.int32)
    for index, path in enumerate(paths):
        if path is None:
            path_ids[index] = -1
            continue
        as_path = tuple(int(asn) for asn in path)
        path_ids[index] = table.setdefault(as_path, len(table))
    return TraceColumns(
        key=key,
        times_hours=times_column,
        rtt_ms=rtt_column,
        outcome=np.array(outcomes, dtype=np.uint8),
        path_id=path_ids,
        paths=tuple(table),
    )


def iter_record_columns(path: _PathLike) -> Iterator[Union[TraceColumns, PingColumns]]:
    """Yield column blocks from a :func:`save_records` file.

    The inverse codec of passing column blocks to :func:`save_records`:
    consecutive lines sharing a type and ``(src, dst, v)`` key become one
    :class:`~repro.stream.columns.TraceColumns` /
    :class:`~repro.stream.columns.PingColumns` block, with trace paths
    re-interned in first appearance order.  Pair-major dumps decode to
    one block per unit; round-major dumps still decode correctly, just
    into many short blocks.  Memory stays bounded by the largest single
    unit, never the file.

    Raises:
        ValueError: Not a record file, an unknown schema version, or a
            segment/unknown record type (segments have no JSONL codec).
    """
    run_kind: Optional[str] = None
    run_key: Optional[Tuple[int, int, int]] = None
    times: List[float] = []
    rtts: List[Optional[float]] = []
    outcomes: List[int] = []
    paths: List[Optional[List[int]]] = []

    with _open_text(path, "r") as handle:
        header = json.loads(next(handle, "null"))
        if not isinstance(header, dict) or header.get("format") != "repro-records":
            raise ValueError(f"{path}: not a repro-records JSONL file")
        if header.get("schema") != RECORDS_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: records schema {header.get('schema')!r} unsupported "
                f"(expected {RECORDS_SCHEMA_VERSION})"
            )
        for line in handle:
            if not line.strip():
                continue
            entry = json.loads(line)
            kind = entry["t"]
            if kind not in ("trace", "ping"):
                raise ValueError(f"{path}: unknown record type {kind!r}")
            key = (int(entry["src"]), int(entry["dst"]), int(entry["v"]))
            if kind != run_kind or key != run_key:
                if run_kind is not None:
                    yield _flush_column_block(
                        run_kind, run_key, times, rtts, outcomes, paths
                    )
                run_kind, run_key = kind, key
                times, rtts, outcomes, paths = [], [], [], []
            times.append(float(entry["h"]))
            rtts.append(entry["rtt"])
            if kind == "trace":
                outcomes.append(int(entry["o"]))
                paths.append(entry["p"])
        if run_kind is not None:
            yield _flush_column_block(run_kind, run_key, times, rtts, outcomes, paths)
